"""Profiling with the simulated memory hierarchy (mini Figure 5/6).

Runs one aggregation query through the five code versions of the
paper's Section VI-A, collecting the simulated hardware counters —
retired instructions, function calls, D1 accesses, prefetch
efficiencies, CPI — and the modelled execution-time breakdown.

Run with::

    python examples/profiling_hardware_model.py
"""

from repro.bench.experiments import fig6
from repro.memsim import costs


def main() -> None:
    print(
        "Modelled platform: Intel Core 2 Duo 6300 "
        f"({costs.CPU_FREQUENCY_HZ / 1e9:.2f} GHz, "
        f"D1 {costs.D1_SIZE // 1024} KB, L2 {costs.L2_SIZE // 1024 // 1024}"
        " MB, latencies 3/9/14/28/77 cycles)"
    )
    print()
    for result in fig6("small"):
        print(result.render())
        print()
    print(
        "Reading the tables: as the code becomes more query-specific\n"
        "(generic iterators -> HIQUE), retired instructions, function\n"
        "calls and data accesses collapse; the cost of memory stalls per\n"
        "instruction grows, so CPI rises on memory-bound aggregation —\n"
        "both effects the paper reports in Section VI-A."
    )


if __name__ == "__main__":
    main()
