"""Quickstart: create tables, load rows, run SQL through HIQUE.

Run with::

    python examples/quickstart.py
"""

from repro import Column, DOUBLE, Database, INT, char


def main() -> None:
    db = Database()

    # 1. Define a schema and load data (an NSM table: 4096-byte pages,
    #    fixed-length tuples, buffer-managed access).
    db.create_table(
        "sales",
        [
            Column("region", char(8)),
            Column("product", INT),
            Column("quantity", INT),
            Column("price", DOUBLE),
        ],
    )
    db.load_rows(
        "sales",
        (
            (f"r{i % 4}", i % 50, 1 + i % 9, round(9.99 + (i % 30), 2))
            for i in range(10_000)
        ),
    )
    # Gather optimizer statistics (exact distinct counts, min/max).
    db.analyze()

    # 2. Query through the holistic engine: the SQL is parsed, planned,
    #    turned into query-specific Python source, compiled, and run.
    sql = (
        "SELECT region, sum(quantity * price) AS revenue, count(*) AS n "
        "FROM sales WHERE product < 25 "
        "GROUP BY region ORDER BY revenue DESC"
    )
    print("Physical plan:")
    print(db.explain(sql))
    print()

    rows = db.execute(sql)
    print(f"{'region':8s} {'revenue':>12s} {'n':>6s}")
    for region, revenue, count in rows:
        print(f"{region:8s} {revenue:12.2f} {count:6d}")
    print()

    # 3. The same query runs identically on every comparison engine.
    for engine in ("volcano-generic", "volcano", "systemx", "vectorized"):
        assert db.execute(sql, engine=engine) == rows
    print("All five engines agree on the result.")

    # 4. Peek at the code HIQUE generated for this query.
    print()
    print("First lines of the generated query module:")
    for line in db.generated_source(sql).splitlines()[:25]:
        print("   ", line)


if __name__ == "__main__":
    main()
