"""Query server: serve a database over TCP and talk to it.

Starts an in-process server with :meth:`Database.serve`, then drives
it through the blocking :class:`repro.server.QueryClient` — one-shot
queries, per-connection prepared statements, typed error responses,
and the server/service stats surface.

Run with::

    python examples/query_server.py
"""

from repro import Column, DOUBLE, Database, INT, char
from repro.errors import BindError
from repro.server import QueryClient


def main() -> None:
    db = Database()
    db.create_table(
        "sales",
        [
            Column("region", char(8)),
            Column("product", INT),
            Column("quantity", INT),
            Column("price", DOUBLE),
        ],
    )
    db.load_rows(
        "sales",
        (
            (f"r{i % 4}", i % 50, 1 + i % 9, round(9.99 + (i % 30), 2))
            for i in range(10_000)
        ),
    )
    db.analyze()

    # Port 0 picks a free port; the handle knows the bound address.
    handle = db.serve()
    print(f"serving on {handle.host}:{handle.port}")

    with QueryClient(*handle.address) as client:
        # One-shot queries go through the shared plan cache.
        rows = client.query(
            "SELECT region, sum(quantity * price) AS revenue "
            "FROM sales WHERE product < ? "
            "GROUP BY region ORDER BY revenue DESC",
            params=[25],
        )
        print("revenue by region (over the wire):")
        for region, revenue in rows:
            print(f"  {region}  {revenue:12.2f}")

        # The same rows a direct in-process execution returns —
        # byte-identical, floats included.
        direct = db.execute(
            "SELECT region, sum(quantity * price) AS revenue "
            "FROM sales WHERE product < ? "
            "GROUP BY region ORDER BY revenue DESC",
            params=(25,),
        )
        assert rows == direct
        print("rows match Database.execute exactly")

        # Prepared statements: compiled once server-side, the handle
        # lives on this connection, executions just bind parameters.
        statement = client.prepare(
            "SELECT count(*) AS n FROM sales WHERE product = ?"
        )
        for product in (7, 21, 42):
            (count,) = client.execute(statement, [product])[0]
            print(f"product {product:2d}: {count} sales")

        # Errors come back typed, and the connection survives them.
        try:
            client.query("SELECT nope FROM sales")
        except BindError as exc:
            print(f"typed error, connection intact: {exc}")
        assert client.ping()

        stats = client.stats()
        print(
            "server stats: "
            f"{stats['server']['queries_ok']} ok, "
            f"{stats['server']['errors']} errors, "
            f"{stats['server']['connections_active']} connection(s)"
        )

    # Graceful drain: admitted queries finish, then sockets close.
    handle.stop()
    db.close()
    print("server drained and stopped")


if __name__ == "__main__":
    main()
