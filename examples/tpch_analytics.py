"""TPC-H analytics across the four comparison systems (mini Figure 8).

Generates a small TPC-H instance, then runs Q1, Q3 and Q10 on the
PostgreSQL/System X/MonetDB analogues and on HIQUE, reporting response
times with preparation excluded (as in the paper).

Run with::

    python examples/tpch_analytics.py [scale_factor]
"""

import sys
import time

from repro.bench.experiments import make_tpch_database
from repro.bench.systems import FIGURE8_SYSTEMS
from repro.bench.tpch import QUERIES


def main(scale_factor: float = 0.005) -> None:
    print(f"Generating TPC-H at scale factor {scale_factor}...")
    db = make_tpch_database(scale_factor)
    lineitem_rows = db.table("lineitem").num_rows
    print(f"lineitem: {lineitem_rows:,} rows\n")
    db.engine("vectorized").preload()

    header = f"{'System':14s}" + "".join(f"{q:>12s}" for q in QUERIES)
    print(header)
    print("-" * len(header))
    baseline: dict[str, float] = {}
    for system in FIGURE8_SYSTEMS:
        engine = db.engine(system.engine_kind)
        cells = []
        for name, sql in QUERIES.items():
            if system.engine_kind == "hique":
                prepared = engine.prepare(sql, use_cache=False)
                started = time.perf_counter()
                engine.execute_prepared(prepared)
                elapsed = time.perf_counter() - started
            else:
                started = time.perf_counter()
                engine.execute(sql)
                elapsed = time.perf_counter() - started
            baseline.setdefault(name, elapsed)
            cells.append(f"{elapsed:11.3f}s")
        print(f"{system.label:14s}" + "".join(cells))

    print()
    hique = db.engine("hique")
    for name, sql in QUERIES.items():
        prepared = hique.prepare(sql, use_cache=False)
        started = time.perf_counter()
        hique.execute_prepared(prepared)
        elapsed = time.perf_counter() - started
        factor = baseline[name] / elapsed if elapsed else float("inf")
        print(
            f"{name}: HIQUE is {factor:5.1f}x faster than the generic "
            f"iterator engine"
        )

    print()
    print("Sample of Q1 output:")
    for row in db.execute(QUERIES["Q1"]):
        flag, status, *aggregates = row
        print(f"  {flag} {status}  count={aggregates[-1]:,}")


if __name__ == "__main__":
    sf = float(sys.argv[1]) if len(sys.argv) > 1 else 0.005
    main(sf)
