"""Inspecting HIQUE's code generation: plans, templates, O0 vs O2.

Shows, for one join + aggregation query:

* the optimizer's operator-descriptor list (the paper's list O);
* the full generated Python module at O2 (inlined predicates, direct
  field unpacking) and the generic O0 variant;
* the per-stage preparation cost (the paper's Table III measurements).

Run with::

    python examples/codegen_inspection.py
"""

from repro import Column, DOUBLE, Database, INT, char
from repro.core import OPT_O0, OPT_O2


def main() -> None:
    db = Database()
    db.create_table(
        "orders_t",
        [Column("okey", INT), Column("ckey", INT), Column("total", DOUBLE)],
    )
    db.create_table(
        "customer_t",
        [Column("ckey", INT), Column("segment", char(10))],
    )
    db.load_rows(
        "orders_t", ((i, i % 500, float(i % 97)) for i in range(5_000))
    )
    db.load_rows(
        "customer_t", ((i, f"seg{i % 5}") for i in range(500))
    )
    db.analyze()

    sql = (
        "SELECT c.segment, sum(o.total) AS revenue, count(*) AS n "
        "FROM orders_t o, customer_t c "
        "WHERE o.ckey = c.ckey AND o.total > 10 "
        "GROUP BY c.segment ORDER BY revenue DESC"
    )

    print("=" * 70)
    print("Operator descriptors (the topologically sorted list O):")
    print("=" * 70)
    print(db.explain(sql))

    engine = db.engine("hique")
    print()
    print("=" * 70)
    print("Generated module at O2 (holistic: everything inlined):")
    print("=" * 70)
    print(engine.generate_source(sql, opt_level=OPT_O2))

    print("=" * 70)
    print("The same plan at O0 (generic helper calls left in):")
    print("=" * 70)
    print(engine.generate_source(sql, opt_level=OPT_O0))

    print("=" * 70)
    print("Preparation cost (Table III measurements):")
    print("=" * 70)
    prepared = engine.prepare(sql, use_cache=False)
    timings = prepared.timings
    print(f"parse     {timings.parse_seconds * 1000:8.3f} ms")
    print(f"optimize  {timings.optimize_seconds * 1000:8.3f} ms")
    print(f"generate  {timings.generate_seconds * 1000:8.3f} ms")
    print(f"compile   {timings.compile_seconds * 1000:8.3f} ms")
    print(f"source    {prepared.compiled.source_bytes:8d} bytes")
    print(f"compiled  {prepared.compiled.compiled_bytes:8d} bytes")
    print(f"module    {prepared.compiled.source_path}")

    rows = engine.execute_prepared(prepared)
    print()
    print(f"Result ({len(rows)} groups): {rows[:3]} ...")


if __name__ == "__main__":
    main()
