"""Concurrency stress tests: N threads × M mixed queries, all engines.

The contract under test: with the storage spine latched and the query
service admitting concurrent readers, any interleaving of sessions
produces rows identical to serial execution, and the buffer pool's
invariants hold afterwards (every pin released, no pinned page was ever
evicted — eviction of a pinned frame raises ``BufferPoolError`` inside
the pool, so a clean run is itself the invariant check).
"""

from __future__ import annotations

import random
import threading

import pytest

from repro import Database
from repro.api import ENGINE_KINDS
from repro.parallel import ParallelConfig
from repro.storage import Catalog, Column, DOUBLE, INT, Schema, char
from repro.storage.buffer import BufferManager
from repro.storage.heapfile import DiskFile
from repro.storage.table import Table

N_THREADS = 6
ROUNDS = 4

#: Mixed point/aggregate/join workload; every statement is served by
#: all six engine configurations.  Float aggregates use int arguments
#: so results are exact and comparable with ``==`` across any execution
#: order; join and ORDER BY keys include DOUBLE columns, which stay
#: byte-identical under parallelism because staging, joins and sorts
#: compare floats without reassociating additions (the workload runs
#: with the default ``allow_float_reorder=False``).
WORKLOAD = [
    ("SELECT id, balance FROM accounts WHERE id = ?", lambda rng: (rng.randrange(512),)),
    ("SELECT id, region FROM accounts WHERE id = ?", lambda rng: (rng.randrange(512),)),
    ("SELECT count(*) AS n FROM accounts WHERE region = ?", lambda rng: (rng.randrange(8),)),
    (
        "SELECT region, count(*) AS n, sum(flag) AS s, min(id) AS mn, "
        "max(id) AS mx FROM accounts GROUP BY region",
        lambda rng: None,
    ),
    (
        "SELECT region, count(*) AS n FROM accounts WHERE flag = ? "
        "GROUP BY region ORDER BY n DESC, region",
        lambda rng: (rng.randrange(2),),
    ),
    ("SELECT sum(id) AS s, count(*) AS n FROM accounts", lambda rng: None),
    # Join + ORDER BY: INT join key, fully determined sort keys.
    (
        "SELECT accounts.id AS id, branches.name AS bname "
        "FROM accounts, branches "
        "WHERE accounts.region = branches.region AND accounts.flag = ? "
        "ORDER BY id, bname",
        lambda rng: (rng.randrange(2),),
    ),
    # Join on a DOUBLE key, ORDER BY a DOUBLE key descending.
    (
        "SELECT accounts.id AS id, accounts.balance AS bal, "
        "tiers.tier AS tier FROM accounts, tiers "
        "WHERE accounts.scale = tiers.scale "
        "ORDER BY bal DESC, id, tier",
        lambda rng: None,
    ),
    # Join feeding grouped aggregation and a final sort.
    (
        "SELECT branches.name AS bname, count(*) AS n, "
        "sum(accounts.flag) AS s FROM accounts, branches "
        "WHERE accounts.region = branches.region "
        "GROUP BY branches.name ORDER BY n DESC, bname",
        lambda rng: None,
    ),
]


def _build_db(**kwargs) -> Database:
    rng = random.Random(99)
    db = Database(**kwargs)
    db.create_table(
        "accounts",
        [
            Column("id", INT),
            Column("balance", DOUBLE),
            Column("region", INT),
            Column("flag", INT),
            Column("tag", char(8)),
            Column("scale", DOUBLE),
        ],
    )
    db.load_rows(
        "accounts",
        [
            (
                i,
                float(rng.randrange(100_000)) / 100,
                i % 8,
                i % 2,
                f"t{i % 11}",
                float(i % 4) / 2,  # exact binary fractions: DOUBLE keys
            )
            for i in range(512)
        ],
    )
    db.create_table(
        "branches",
        [Column("region", INT), Column("name", char(8))],
    )
    db.load_rows(
        "branches", [(j % 8, f"b{j:02d}") for j in range(24)]
    )
    db.create_table(
        "tiers", [Column("scale", DOUBLE), Column("tier", INT)]
    )
    db.load_rows(
        "tiers", [(float(j % 4) / 2, j) for j in range(8)]
    )
    db.analyze()
    return db


@pytest.fixture(scope="module")
def stress_db() -> Database:
    db = _build_db(max_workers=N_THREADS, workers=4)
    db.set_parallel(min_pages=2, morsel_pages=2, min_rows=64)
    yield db
    db.close()


@pytest.fixture(scope="module")
def expected(stress_db):
    """Serial reference results per (engine, statement) pair."""
    serial = _build_db(parallel=False, max_workers=1)
    results = {}
    for kind in ENGINE_KINDS:
        for index, (sql, make_params) in enumerate(WORKLOAD):
            rng = random.Random(index)
            params = make_params(rng)
            results[(kind, index)] = serial.execute(
                sql, engine=kind, params=params
            )
    serial.close()
    return results


def _run_threads(target, count=N_THREADS, timeout=120):
    errors: list[BaseException] = []

    def guarded(k):
        try:
            target(k)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=guarded, args=(k,)) for k in range(count)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
        assert not t.is_alive(), "stress thread wedged"
    if errors:
        raise errors[0]


def test_mixed_queries_identical_to_serial_all_engines(stress_db, expected):
    """Six engines × N threads × M statements: rows match serial runs."""

    def session(thread_id: int):
        rng = random.Random(thread_id)
        for _ in range(ROUNDS):
            for kind in ENGINE_KINDS:
                index = rng.randrange(len(WORKLOAD))
                sql, make_params = WORKLOAD[index]
                params = make_params(random.Random(index))
                rows = stress_db.execute(sql, engine=kind, params=params)
                assert rows == expected[(kind, index)], (kind, sql)

    _run_threads(session)
    assert stress_db.buffer.num_pinned == 0


def test_service_submit_concurrent_sessions(stress_db, expected):
    """The pooled front-end agrees with serial results under load."""
    futures = []
    for k in range(N_THREADS * 4):
        index = k % len(WORKLOAD)
        sql, make_params = WORKLOAD[index]
        params = make_params(random.Random(index))
        futures.append(
            (index, stress_db.service.submit(sql, params=params))
        )
    for index, future in futures:
        assert future.result(timeout=60) == expected[("hique", index)]
    stats = stress_db.service.stats()
    assert stats.pending == 0
    assert stats.failed == 0
    assert stress_db.buffer.num_pinned == 0


def test_tiny_buffer_pool_under_concurrency(expected):
    """Evictions under concurrent scans: correctness and invariants.

    A pool far smaller than the table forces constant miss/evict
    traffic from every thread; a pinned-page eviction would raise
    ``BufferPoolError`` and fail the run.
    """
    db = _build_db(buffer_capacity=2, workers=4)
    db.set_parallel(min_pages=2, morsel_pages=2, min_rows=64)
    try:

        def session(thread_id: int):
            rng = random.Random(thread_id)
            for _ in range(ROUNDS):
                index = rng.randrange(len(WORKLOAD))
                sql, make_params = WORKLOAD[index]
                params = make_params(random.Random(index))
                rows = db.execute(sql, params=params)
                assert rows == expected[("hique", index)]

        _run_threads(session)
        assert db.buffer.num_pinned == 0
        assert db.buffer.num_resident <= 2
        assert db.buffer.stats.evictions > 0
    finally:
        db.close()


def test_concurrent_scans_over_disk_file(tmp_path):
    """Positioned reads: many threads scanning one DiskFile agree."""
    schema = Schema([Column("a", INT), Column("b", INT)])
    buffer = BufferManager(capacity=16)
    file = DiskFile(str(tmp_path / "t.pages"))
    catalog = Catalog(buffer)
    table = Table("t", schema, file=file, buffer=buffer)
    table.load_rows([(i, i * 3) for i in range(50_000)])
    catalog.register(table)
    catalog.analyze()
    db = Database(catalog=catalog, workers=4)
    db.set_parallel(min_pages=2)
    try:
        want = sum(i * 3 for i in range(50_000))

        def session(thread_id: int):
            for _ in range(ROUNDS):
                rows = db.execute("SELECT sum(b) AS s FROM t")
                assert rows == [(want,)]

        _run_threads(session)
        assert buffer.num_pinned == 0
    finally:
        db.close()


def test_ddl_excludes_readers_without_breaking_them(stress_db, expected):
    """analyze() (a writer) interleaves safely with running readers."""
    stop = threading.Event()

    def churn_statistics():
        while not stop.is_set():
            stress_db.analyze("accounts")

    churner = threading.Thread(target=churn_statistics)
    churner.start()
    try:

        def session(thread_id: int):
            rng = random.Random(thread_id)
            for _ in range(ROUNDS):
                index = rng.randrange(len(WORKLOAD))
                sql, make_params = WORKLOAD[index]
                params = make_params(random.Random(index))
                rows = stress_db.execute(sql, params=params)
                assert rows == expected[("hique", index)]

        _run_threads(session)
    finally:
        stop.set()
        churner.join(timeout=30)
    assert stress_db.buffer.num_pinned == 0


def test_readers_see_consistent_snapshots_during_writes():
    """Concurrent readers interleaving with multi-row DML only ever
    observe a pre- or post-statement snapshot, never a partial write.

    The writer alternates one multi-row INSERT with one DELETE of the
    same rows, each a single statement under the catalog's write gate;
    any reader-visible count other than ``base`` or ``base + batch``
    would mean a statement's effects leaked mid-flight.
    """
    db = _build_db(workers=4)
    db.set_parallel(min_pages=2, morsel_pages=2, min_rows=64)
    batch = 16
    base = db.table("accounts").num_rows
    stop = threading.Event()

    def writer():
        values = ", ".join(
            f"({10_000 + j}, 1.0, 0, 0, 'wx', 0.0)" for j in range(batch)
        )
        while not stop.is_set():
            db.execute(f"INSERT INTO accounts VALUES {values}")
            db.execute("DELETE FROM accounts WHERE id >= 10000")

    churner = threading.Thread(target=writer)
    churner.start()
    try:

        def session(thread_id: int):
            rng = random.Random(thread_id)
            for _ in range(ROUNDS * 3):
                kind = ENGINE_KINDS[rng.randrange(len(ENGINE_KINDS))]
                rows = db.execute(
                    "SELECT count(*) AS n FROM accounts", engine=kind
                )
                assert rows[0][0] in (base, base + batch), (kind, rows)

        _run_threads(session)
    finally:
        stop.set()
        churner.join(timeout=60)
        assert not churner.is_alive(), "writer wedged"
    # The final DELETE restores the base row count exactly.
    assert db.execute("SELECT count(*) AS n FROM accounts") == [(base,)]
    assert db.buffer.num_pinned == 0
    db.close()


def test_parallel_config_is_visible_in_stats(stress_db):
    stress_db.execute(
        "SELECT region, count(*) AS n FROM accounts GROUP BY region"
    )
    stats = stress_db.last_exec_stats("hique")
    assert stats is not None
    if stats.parallel:
        # ``workers`` reports threads actually used, capped by morsels.
        assert 1 <= stats.workers <= stress_db.parallel_config.workers
        assert stats.morsels >= 2


def test_join_workload_actually_parallelizes(stress_db, expected):
    """The join + ORDER BY statements exercise the join phase for both
    code-generating engines, with rows byte-identical to serial."""
    join_indexes = [
        index for index, (sql, _) in enumerate(WORKLOAD) if "branches" in sql or "tiers" in sql
    ]
    assert join_indexes
    for kind in ("hique", "hique-o0"):
        saw_parallel_join = False
        for index in join_indexes:
            sql, make_params = WORKLOAD[index]
            params = make_params(random.Random(index))
            rows = stress_db.execute(sql, engine=kind, params=params)
            assert rows == expected[(kind, index)], (kind, sql)
            stats = stress_db.last_exec_stats(kind)
            if stats is not None and stats.parallel and any(
                phase.name == "join" and phase.workers > 1
                for phase in stats.phases
            ):
                saw_parallel_join = True
        assert saw_parallel_join, kind
