"""Unit tests for the type system and value codecs."""

import datetime

import pytest
from hypothesis import given, strategies as st

from repro.errors import StorageError
from repro.storage.types import (
    BOOL,
    DATE,
    DOUBLE,
    INT,
    char,
    date_to_ordinal,
    ordinal_to_date,
    type_from_sql,
    varchar,
)


class TestScalarTypes:
    def test_int_properties(self):
        assert INT.size == 8
        assert INT.struct_char == "q"
        assert INT.is_numeric and not INT.is_string

    def test_double_properties(self):
        assert DOUBLE.size == 8
        assert DOUBLE.is_numeric

    def test_date_is_four_bytes(self):
        assert DATE.size == 4

    def test_bool_is_one_byte(self):
        assert BOOL.size == 1

    def test_int_storage_roundtrip(self):
        assert INT.from_storage(INT.to_storage(42)) == 42

    def test_int_coerces_floats(self):
        assert INT.to_storage(41.9) == 41

    def test_double_coerces_ints(self):
        assert DOUBLE.to_storage(3) == 3.0

    def test_bool_storage(self):
        assert BOOL.to_storage(1) is True
        assert BOOL.to_storage(0) is False


class TestCharTypes:
    def test_char_pads_with_spaces(self):
        ct = char(6)
        assert ct.to_storage("ab") == b"ab    "

    def test_char_strip_on_decode(self):
        ct = char(6)
        assert ct.from_storage(b"ab    ") == "ab"

    def test_char_accepts_bytes(self):
        assert char(4).to_storage(b"xy") == b"xy  "

    def test_char_overflow_raises(self):
        with pytest.raises(StorageError):
            char(2).to_storage("abc")

    def test_char_zero_length_rejected(self):
        with pytest.raises(StorageError):
            char(0)

    def test_varchar_fixed_slot(self):
        vt = varchar(10)
        assert vt.size == 10
        assert vt.to_storage("hi") == b"hi        "

    def test_varchar_requires_length(self):
        with pytest.raises(StorageError):
            type_from_sql("VARCHAR")

    def test_strings_comparable_with_each_other(self):
        assert char(3).comparable_with(varchar(9))

    def test_string_not_comparable_with_int(self):
        assert not char(3).comparable_with(INT)


class TestDates:
    def test_epoch_is_zero(self):
        assert date_to_ordinal("1970-01-01") == 0

    def test_ordinal_roundtrip(self):
        day = date_to_ordinal("1998-09-02")
        assert ordinal_to_date(day) == datetime.date(1998, 9, 2)

    def test_date_object_accepted(self):
        assert date_to_ordinal(datetime.date(1970, 1, 2)) == 1

    def test_date_storage_accepts_dates_and_ints(self):
        day = date_to_ordinal("1995-03-15")
        assert DATE.to_storage(datetime.date(1995, 3, 15)) == day
        assert DATE.to_storage(day) == day

    def test_date_comparable_with_int(self):
        assert DATE.comparable_with(INT)
        assert INT.comparable_with(DATE)

    def test_date_not_comparable_with_string(self):
        assert not DATE.comparable_with(char(10))

    @given(st.integers(min_value=0, max_value=100_000))
    def test_ordinal_roundtrip_property(self, day):
        assert date_to_ordinal(ordinal_to_date(day)) == day


class TestSqlTypeNames:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("INT", INT),
            ("integer", INT),
            ("BIGINT", INT),
            ("DOUBLE", DOUBLE),
            ("decimal", DOUBLE),
            ("REAL", DOUBLE),
            ("DATE", DATE),
            ("boolean", BOOL),
        ],
    )
    def test_resolution(self, name, expected):
        assert type_from_sql(name) == expected

    def test_char_with_length(self):
        assert type_from_sql("CHAR", 12) == char(12)

    def test_unknown_type_raises(self):
        with pytest.raises(StorageError):
            type_from_sql("BLOB")
