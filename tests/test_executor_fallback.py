"""Fallback and failure paths of the process execution backend.

The process backend must never change results or hang: ineligible work
(O0 closure plans, tiny inputs, unpicklable payloads) silently rides
the thread backend or the serial entry point with a stats note, and a
dead or wedged worker surfaces a clean :class:`ExecutionError` while
the pool is replaced for subsequent queries.
"""

from __future__ import annotations

import random
import textwrap
import threading
import time

import pytest

from repro.api import Database
from repro.core.engine import HiqueEngine
from repro.errors import ExecutionError, ReproError
from repro.parallel.backend import (
    ProcessBackend,
    TaskNotPicklable,
    ThreadBackend,
)
from repro.parallel.proc import CallTask
from repro.parallel.stats import EXECUTOR_PROCESS, EXECUTOR_THREAD, ParallelConfig
from repro.storage import Catalog, Column, DOUBLE, INT, Schema, char
from repro.storage.table import table_from_rows


@pytest.fixture()
def fuzz_catalog() -> Catalog:
    rng = random.Random(5)
    catalog = Catalog()
    schema = Schema(
        [Column("a", INT), Column("b", DOUBLE), Column("c", char(6))]
    )
    rows = [
        (i, float(rng.randrange(1000)) / 4, f"s{i % 7}")
        for i in range(6_000)
    ]
    catalog.register(
        table_from_rows("t", schema, rows, buffer=catalog.buffer)
    )
    catalog.analyze()
    return catalog


PROCESS = ParallelConfig(
    workers=2, morsel_pages=4, min_pages=2, min_rows=64,
    executor=EXECUTOR_PROCESS,
    # Pinned so a REPRO_PLACEMENT=auto environment leg cannot reroute
    # these backend-specific tests onto the thread backend.
    placement=EXECUTOR_PROCESS,
)


# -- eligibility fallbacks ---------------------------------------------------------------


def test_o0_plan_falls_back_to_thread_backend(fuzz_catalog):
    serial = HiqueEngine(fuzz_catalog, opt_level="O0")
    engine = HiqueEngine(fuzz_catalog, opt_level="O0", parallel=PROCESS)
    sql = "SELECT c, count(*) AS n, sum(a) AS s FROM t GROUP BY c"
    try:
        assert engine.execute(sql) == serial.execute(sql)
        stats = engine.last_exec_stats
        assert stats is not None and stats.parallel
        assert stats.backend == EXECUTOR_THREAD
        assert any("O0 closure plan" in note for note in stats.notes)
        assert all(
            phase.backend == EXECUTOR_THREAD for phase in stats.phases
        )
    finally:
        engine.close()
        serial.close()


def test_process_backend_runs_o2_out_of_process(fuzz_catalog):
    serial = HiqueEngine(fuzz_catalog)
    engine = HiqueEngine(fuzz_catalog, parallel=PROCESS)
    sql = "SELECT a, b, c FROM t WHERE a < 5000 ORDER BY c DESC, a"
    try:
        assert engine.execute(sql) == serial.execute(sql)
        stats = engine.last_exec_stats
        assert stats is not None and stats.parallel
        assert stats.backend == EXECUTOR_PROCESS
        assert any(
            phase.backend == EXECUTOR_PROCESS for phase in stats.phases
        )
        assert any("shipped" in note for note in stats.notes)
    finally:
        engine.close()
        serial.close()


def test_tiny_inputs_stay_serial_under_process_executor():
    catalog = Catalog()
    schema = Schema([Column("a", INT), Column("b", INT)])
    catalog.register(
        table_from_rows(
            "small", schema, [(i, i * 2) for i in range(50)],
            buffer=catalog.buffer,
        )
    )
    catalog.analyze()
    engine = HiqueEngine(catalog, parallel=PROCESS)
    try:
        rows = engine.execute("SELECT a, b FROM small WHERE a < 30")
        assert len(rows) == 30
        stats = engine.last_exec_stats
        assert stats is not None and not stats.parallel
        # Below min_pages: no task ever reached a worker process.
        assert stats.backend == EXECUTOR_THREAD
    finally:
        engine.close()


def test_unpicklable_params_fall_back_to_thread(fuzz_catalog):
    class Threshold:
        """Comparable against ints but deliberately unpicklable."""

        def __init__(self, value):
            self.value = value

        def __reduce__(self):
            raise TypeError("Threshold refuses to pickle")

        def __lt__(self, other):
            return self.value < other

        def __le__(self, other):
            return self.value <= other

        def __gt__(self, other):
            return self.value > other

        def __ge__(self, other):
            return self.value >= other

    engine = HiqueEngine(fuzz_catalog, parallel=PROCESS)
    try:
        prepared = engine.prepare(
            "SELECT a, c FROM t WHERE a < ?", name="fallback"
        )
        want = engine.execute_prepared(prepared, params=(4000,))
        got = engine.execute_prepared(prepared, params=(Threshold(4000),))
        assert got == want
        stats = engine.last_exec_stats
        assert stats is not None and stats.parallel
        assert stats.backend == EXECUTOR_THREAD
        assert any("unpicklable" in note for note in stats.notes)
    finally:
        engine.close()


# -- crash / timeout surfacing ------------------------------------------------------------


def _write_module(tmp_path, body: str) -> tuple[str, str]:
    path = tmp_path / "crash_module.py"
    path.write_text(
        textwrap.dedent(
            """
            HIQUE_QUERY = "crash"
            HIQUE_OPT_LEVEL = "O2"
            HIQUE_TRACED = False
            """
        )
        + textwrap.dedent(body),
        encoding="utf-8",
    )
    return "crash_module", str(path)


def test_worker_crash_surfaces_clean_error_and_pool_recovers(tmp_path):
    spec = _write_module(
        tmp_path,
        """
        import os

        def boom(ctx):
            os._exit(13)

        def fine(ctx, value):
            return value * 2
        """,
    )
    backend = ProcessBackend(workers=2)
    try:
        with pytest.raises(ExecutionError, match="worker process died"):
            backend.run_batch(spec, (), [CallTask(func="boom")])
        # The broken pool was retired; the next batch gets a fresh one.
        results, workers, _ = backend.run_batch(
            spec, (), [CallTask(func="fine", args=(21,))]
        )
        assert results == [42]
        assert workers == 1
    finally:
        backend.close()


def test_worker_timeout_surfaces_clean_error(tmp_path):
    spec = _write_module(
        tmp_path,
        """
        import time

        def sleepy(ctx):
            time.sleep(60)
        """,
    )
    backend = ProcessBackend(workers=1, task_timeout=0.5)
    try:
        with pytest.raises(ExecutionError, match="task_timeout"):
            backend.run_batch(spec, (), [CallTask(func="sleepy")])
    finally:
        backend.close()


def test_thread_backend_enforces_task_timeout():
    """Regression: ``task_timeout`` used to be silently ignored under
    ``executor="thread"`` — ``drain_futures`` awaited worker futures
    with no deadline while the process backend enforced one."""
    stall = threading.Event()
    backend = ThreadBackend(workers=2, task_timeout=0.3)
    try:
        started = time.perf_counter()
        with pytest.raises(ExecutionError, match="task_timeout"):
            backend.run_thunks([lambda: stall.wait(30)], workers=2)
        # The watchdog fired near the bound, not after the 30s sleep.
        assert time.perf_counter() - started < 5.0
        # The stalled pool was abandoned; the backend still serves new
        # batches on a fresh pool.
        results, workers = backend.run_thunks(
            [lambda: 21, lambda: 2], workers=2
        )
        assert results == [21, 2]
    finally:
        stall.set()
        backend.close()


def test_thread_backend_timeout_spares_slow_but_progressing_batches():
    """Many short tasks must not trip the watchdog just because the
    whole batch takes longer than ``task_timeout``."""
    backend = ThreadBackend(workers=2, task_timeout=0.25)
    try:
        thunks = [lambda: time.sleep(0.05) for _ in range(20)]
        results, workers = backend.run_thunks(thunks, workers=2)
        assert len(results) == 20 and workers == 2
    finally:
        backend.close()


def test_thread_backend_timeout_spares_batches_queued_behind_others():
    """A batch merely waiting for pool slots behind a concurrent slow
    batch has no running worker of its own — queue time must not count
    toward its stall deadline."""
    backend = ThreadBackend(workers=1, task_timeout=0.3)
    results: dict[str, object] = {}
    errors: list[BaseException] = []

    def run(name: str, thunks) -> None:
        try:
            results[name] = backend.run_thunks(thunks, workers=1)
        except BaseException as exc:  # noqa: BLE001 - asserted below
            errors.append(exc)

    # The single pool slot runs batch A (healthy but longer than the
    # timeout); batch B queues behind it the whole time.
    a = threading.Thread(
        target=run, args=("a", [lambda: time.sleep(0.12)] * 5)
    )
    b = threading.Thread(target=run, args=("b", [lambda: 7]))
    a.start()
    time.sleep(0.05)  # ensure A owns the slot before B submits
    b.start()
    a.join()
    b.join()
    backend.close()
    assert not errors, errors
    assert results["b"][0] == [7]


def test_thread_backend_timeout_poisons_rest_of_batch():
    """After a timeout abandons the pool, surviving claim workers must
    stop claiming — the batch's remaining tasks never execute against
    state the caller already unwound.  (Both workers wedge: with any
    healthy worker the stall watchdog by design waits for it to drain
    the rest of the batch first.)"""
    stall = threading.Event()
    executed: list[int] = []

    def make(index: int):
        def thunk():
            if index < 2:
                stall.wait(30)
            executed.append(index)
        return thunk

    backend = ThreadBackend(workers=2, task_timeout=0.3)
    try:
        with pytest.raises(ExecutionError, match="task_timeout"):
            backend.run_thunks([make(i) for i in range(40)], workers=2)
        stall.set()
        time.sleep(0.3)  # let the detached wedged tasks finish
        # Only the two wedged tasks ever ran: the poisoned dispatcher
        # kept their claim loops from touching the other 38.
        assert sorted(executed) == [0, 1], executed
    finally:
        stall.set()
        backend.close()


def test_thread_backend_timeout_fires_for_batch_queued_behind_wedge():
    """A batch queued behind *wedged* work (no completion anywhere on
    the backend) must time out like a wedged batch — not hang forever
    waiting for pool slots that will never free up."""
    stall = threading.Event()
    backend = ThreadBackend(workers=1, task_timeout=0.3)
    errors: list[BaseException] = []

    def run(thunks) -> None:
        try:
            backend.run_thunks(thunks, workers=1)
        except BaseException as exc:  # noqa: BLE001 - asserted below
            errors.append(exc)

    a = threading.Thread(target=run, args=([lambda: stall.wait(30)],))
    b = threading.Thread(target=run, args=([lambda: 7],))
    a.start()
    time.sleep(0.05)  # the wedged batch owns the only slot
    b.start()
    a.join(timeout=10)
    b.join(timeout=10)
    alive = a.is_alive() or b.is_alive()
    stall.set()
    backend.close()
    assert not alive, "a batch hung past its task_timeout"
    # Both batches failed with the library's error type: the wedged
    # one with the timeout, the queued one with timeout or abandonment.
    assert len(errors) == 2 and all(
        isinstance(exc, ExecutionError) for exc in errors
    ), errors


def test_process_backend_timeout_spares_progressing_batches(tmp_path):
    """A pool that keeps completing results is healthy: per-result
    waits must restart their deadline on progress instead of killing
    workers that are merely busy with queued neighbours."""
    spec = _write_module(
        tmp_path,
        """
        import time

        def slow(ctx, value):
            time.sleep(0.1)
            return value
        """,
    )
    backend = ProcessBackend(workers=1, task_timeout=0.35)
    try:
        # 8 × 0.1s through one worker: total far exceeds the timeout,
        # but every individual wait observes completions.
        results, workers, _ = backend.run_batch(
            spec, (), [CallTask(func="slow", args=(i,)) for i in range(8)]
        )
        assert results == list(range(8))
        assert workers == 1
    finally:
        backend.close()


def test_thread_executor_timeout_surfaces_through_engine(fuzz_catalog):
    """End to end: a wedged generated task under ``executor="thread"``
    raises the same clean ExecutionError the process backend gives."""
    stall = threading.Event()
    engine = HiqueEngine(
        fuzz_catalog,
        parallel=ParallelConfig(
            workers=2, morsel_pages=4, min_pages=2, min_rows=64,
            executor=EXECUTOR_THREAD, task_timeout=0.3,
        ),
    )
    try:
        prepared = engine.prepare(
            "SELECT a, c FROM t WHERE a < 4000", name="stalled"
        )
        scan_name = next(iter(prepared.generated.function_names.values()))
        real = prepared.compiled.namespace[scan_name]

        def wedged(ctx, _lo=0, _hi=None):
            if _lo > 0:  # first morsel proceeds; a later one wedges
                stall.wait(30)
            return real(ctx, _lo, _hi)

        prepared.compiled.namespace[scan_name] = wedged
        with pytest.raises(ExecutionError, match="task_timeout"):
            engine.execute_prepared(prepared)
    finally:
        stall.set()
        engine.close()


def test_worker_exception_propagates_not_swallowed(tmp_path):
    spec = _write_module(
        tmp_path,
        """
        def divide(ctx, denominator):
            return 1 / denominator
        """,
    )
    backend = ProcessBackend(workers=1)
    try:
        with pytest.raises(ZeroDivisionError):
            backend.run_batch(spec, (), [CallTask(func="divide", args=(0,))])
    finally:
        backend.close()


def test_retired_backend_refuses_new_pools(tmp_path):
    """A reconfigure-retired backend must not resurrect worker pools;
    it signals the thread-fallback path instead."""
    spec = _write_module(
        tmp_path,
        """
        def fine(ctx, value):
            return value
        """,
    )
    backend = ProcessBackend(workers=1)
    backend.close()
    with pytest.raises(TaskNotPicklable, match="retired"):
        backend.run_batch(spec, (), [CallTask(func="fine", args=(1,))])


def test_unpicklable_payload_raises_task_not_picklable(tmp_path):
    spec = _write_module(
        tmp_path,
        """
        def identity(ctx, value):
            return value
        """,
    )
    backend = ProcessBackend(workers=1)
    try:
        with pytest.raises(TaskNotPicklable):
            backend.run_batch(
                spec,
                (),
                [CallTask(func="identity", args=(lambda: None,))],
            )
    finally:
        backend.close()


# -- knob plumbing -------------------------------------------------------------------------


def test_database_executor_knob_and_env(monkeypatch, fuzz_catalog):
    with Database(catalog=fuzz_catalog, executor="process") as db:
        assert db.parallel_config.executor == EXECUTOR_PROCESS
        config = db.set_parallel(executor="thread")
        assert config.executor == EXECUTOR_THREAD
        with pytest.raises(ReproError):
            db.set_parallel(executor="gpu")
    with pytest.raises(ReproError):
        Database(catalog=fuzz_catalog, executor="gpu")
    monkeypatch.setenv("REPRO_EXECUTOR", "process")
    with Database(catalog=fuzz_catalog) as db:
        assert db.parallel_config.executor == EXECUTOR_PROCESS
    monkeypatch.setenv("REPRO_EXECUTOR", "")
    with Database(catalog=fuzz_catalog) as db:
        assert db.parallel_config.executor == EXECUTOR_THREAD


def test_service_stats_report_executor(fuzz_catalog):
    with Database(catalog=fuzz_catalog, executor="process") as db:
        db.execute("SELECT count(*) AS n FROM t")
        assert db.service.stats().executor == EXECUTOR_PROCESS


def test_config_rejects_unknown_executor():
    with pytest.raises(ValueError):
        ParallelConfig(executor="gpu")
    with pytest.raises(ValueError):
        ParallelConfig(task_timeout=0.0)
