"""Unit and property tests for schemas, the tuple codec, and NSM pages."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CatalogError, PageFullError, StorageError
from repro.storage.page import HEADER_SIZE, PAGE_SIZE, Page
from repro.storage.schema import Column, Schema
from repro.storage.types import DOUBLE, INT, char


@pytest.fixture()
def schema() -> Schema:
    return Schema(
        [Column("a", INT), Column("b", DOUBLE), Column("c", char(8))]
    )


class TestSchema:
    def test_tuple_size_is_sum_of_field_sizes(self, schema):
        assert schema.tuple_size == 8 + 8 + 8

    def test_offsets_are_cumulative(self, schema):
        assert [schema.offset_of(i) for i in range(3)] == [0, 8, 16]

    def test_encode_decode_roundtrip(self, schema):
        row = (7, 2.5, "hello")
        assert schema.decode(schema.encode(row)) == row

    def test_decode_single_field(self, schema):
        buf = schema.encode((1, 9.5, "zz"))
        assert schema.decode_field(buf, 0, 1) == 9.5
        assert schema.decode_field(buf, 0, 2) == "zz"

    def test_index_of_bare_and_qualified(self, schema):
        qualified = schema.qualify("t")
        assert qualified.index_of("b") == 1
        assert qualified.index_of("t.b") == 1

    def test_unknown_column_raises(self, schema):
        with pytest.raises(CatalogError):
            schema.index_of("zzz")

    def test_wrong_arity_raises(self, schema):
        with pytest.raises(StorageError):
            schema.encode((1, 2.0))

    def test_project_keeps_order(self, schema):
        projected = schema.project([2, 0])
        assert [c.name for c in projected] == ["c", "a"]

    def test_concat(self, schema):
        left = schema.qualify("l")
        right = Schema([Column("x", INT)]).qualify("r")
        combined = left.concat(right)
        assert len(combined) == 4
        assert combined.index_of("r.x") == 3

    def test_empty_schema_rejected(self):
        with pytest.raises(StorageError):
            Schema([])

    def test_duplicate_qualified_columns_rejected(self):
        with pytest.raises(CatalogError):
            Schema([Column("a", INT, "t"), Column("a", INT, "t")])

    def test_duplicate_bare_names_allowed_with_tables(self):
        schema = Schema([Column("a", INT, "t"), Column("a", INT, "u")])
        assert schema.index_of("t.a") == 0
        assert schema.index_of("u.a") == 1

    @given(
        st.lists(
            st.tuples(
                st.integers(-(2**62), 2**62),
                st.floats(allow_nan=False, allow_infinity=False,
                          width=64),
                st.text(
                    alphabet=st.characters(
                        codec="ascii", exclude_characters=" ",
                        min_codepoint=33,
                    ),
                    max_size=8,
                ),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, rows):
        schema = Schema(
            [Column("a", INT), Column("b", DOUBLE), Column("c", char(8))]
        )
        for row in rows:
            assert schema.decode(schema.encode(row)) == row


class TestPage:
    def test_new_page_is_empty(self, schema):
        page = Page(schema)
        assert page.num_tuples == 0
        assert len(page.data) == PAGE_SIZE

    def test_capacity_formula(self, schema):
        page = Page(schema)
        assert page.capacity == (PAGE_SIZE - HEADER_SIZE) // schema.tuple_size

    def test_insert_and_read(self, schema):
        page = Page(schema)
        slot = page.insert_row((5, 1.25, "abc"))
        assert slot == 0
        assert page.read(0) == (5, 1.25, "abc")

    def test_slot_offsets_match_paper_layout(self, schema):
        page = Page(schema)
        assert page.slot_offset(0) == HEADER_SIZE
        assert page.slot_offset(3) == HEADER_SIZE + 3 * schema.tuple_size

    def test_read_field_direct(self, schema):
        page = Page(schema)
        page.insert_row((1, 2.0, "x"))
        page.insert_row((3, 4.0, "y"))
        assert page.read_field(1, 0) == 3
        assert page.read_field(1, 2) == "y"

    def test_full_page_raises(self, schema):
        page = Page(schema)
        for i in range(page.capacity):
            page.insert_row((i, 0.0, ""))
        assert page.is_full
        with pytest.raises(PageFullError):
            page.insert_row((0, 0.0, ""))

    def test_rows_iteration_order(self, schema):
        page = Page(schema)
        rows = [(i, float(i), f"r{i}") for i in range(10)]
        for row in rows:
            page.insert_row(row)
        assert list(page.rows()) == rows

    def test_out_of_range_read_raises(self, schema):
        page = Page(schema)
        with pytest.raises(StorageError):
            page.read(0)

    def test_clear_resets_count(self, schema):
        page = Page(schema)
        page.insert_row((1, 1.0, "a"))
        page.clear()
        assert page.num_tuples == 0

    def test_wrong_sized_tuple_rejected(self, schema):
        page = Page(schema)
        with pytest.raises(StorageError):
            page.insert(b"short")

    def test_oversized_tuple_schema_rejected(self):
        big = Schema([Column("c", char(PAGE_SIZE))])
        with pytest.raises(StorageError):
            Page(big)

    def test_page_from_existing_buffer(self, schema):
        original = Page(schema)
        original.insert_row((9, 9.0, "nine"))
        clone = Page(schema, bytearray(original.data))
        assert clone.read(0) == (9, 9.0, "nine")

    def test_bad_buffer_size_rejected(self, schema):
        with pytest.raises(StorageError):
            Page(schema, bytearray(100))

    @given(st.lists(st.integers(-(2**31), 2**31), min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_insert_read_property(self, values):
        schema = Schema([Column("v", INT)])
        page = Page(schema)
        inserted = []
        for value in values:
            if page.is_full:
                break
            page.insert_row((value,))
            inserted.append((value,))
        assert list(page.rows()) == inserted
