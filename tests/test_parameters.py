"""Literal parameterization, ``?`` placeholders, and normalization."""

import pytest

from repro.errors import BindError, LexerError
from repro.sql import ast
from repro.sql.binder import Binder
from repro.sql.lexer import tokenize
from repro.sql.parameters import (
    count_parameters,
    extract_parameters,
    parameterize,
    render_query,
    substitute_parameters,
)
from repro.sql.parser import parse
from repro.storage.types import DOUBLE, INT


# -- lexer / parser ---------------------------------------------------------------


def test_lexer_emits_question_mark_op():
    kinds = [(t.kind, t.text) for t in tokenize("a = ?")]
    assert ("op", "?") in kinds


def test_parser_numbers_placeholders_left_to_right():
    query = parse("SELECT a FROM t WHERE a = ? AND b < ? AND c > ?")
    params = [c.right for c in query.where]
    assert [p.index for p in params] == [0, 1, 2]
    assert all(isinstance(p, ast.Parameter) for p in params)
    assert count_parameters(query) == 3


def test_parser_placeholder_in_arithmetic_and_select():
    query = parse("SELECT a + ? AS ap FROM t WHERE b < ? * 2")
    assert count_parameters(query) == 2


# -- extraction -------------------------------------------------------------------


def test_extraction_rewrites_where_literals():
    query = parse("SELECT a, b FROM t WHERE a = 5 AND b < 2.5")
    rewritten, values = extract_parameters(query)
    assert values == (5, 2.5)
    assert all(
        isinstance(c.right, ast.Parameter) for c in rewritten.where
    )
    # The original query object is untouched.
    assert all(isinstance(c.right, ast.Literal) for c in query.where)


def test_extraction_leaves_select_list_literals_inline():
    query = parse("SELECT sum(b * (1 - b)) AS s FROM t WHERE a > 3")
    rewritten, values = extract_parameters(query)
    assert values == (3,)
    assert count_parameters(rewritten) == 1  # only the WHERE literal


def test_extraction_skips_queries_with_explicit_placeholders():
    query = parse("SELECT a FROM t WHERE a = ? AND b < 9")
    rewritten, values = extract_parameters(query)
    assert values == ()
    assert rewritten is query


def test_extraction_handles_nested_where_arithmetic():
    query = parse("SELECT a FROM t WHERE a < 2 + 3")
    rewritten, values = extract_parameters(query)
    assert values == (2, 3)


# -- normalization ----------------------------------------------------------------


def test_literal_varying_queries_share_a_key():
    a = parameterize(parse("SELECT a, b FROM t WHERE a = 1"))
    b = parameterize(parse("select  A, b from T where a=2"))
    # Identifiers keep their spelling but keywords/whitespace normalize;
    # the WHERE constants become placeholders either way.
    assert a.key == "SELECT a, b FROM t WHERE a = ?"
    assert a.values == (1,)
    assert b.values == (2,)


def test_placeholder_and_literal_forms_share_a_key():
    lit = parameterize(parse("SELECT a FROM t WHERE a = 7"))
    ph = parameterize(parse("SELECT a FROM t WHERE a = ?"))
    assert lit.key == ph.key
    assert ph.values == ()
    assert ph.num_params == 1


def test_render_round_trips_through_the_parser():
    sql = (
        "SELECT c, sum(b) AS s FROM t WHERE a < 10 AND c = 'x1' "
        "GROUP BY c ORDER BY s DESC LIMIT 3"
    )
    key = parameterize(parse(sql)).key
    # The canonical form is itself parseable and re-normalizes to itself.
    assert parameterize(parse(key)).key == key


def test_render_preserves_date_literals():
    sql = "SELECT a FROM t WHERE a <= DATE '1998-09-02'"
    rendered = render_query(parse(sql))
    assert "DATE '1998-09-02'" in rendered


# -- substitution -----------------------------------------------------------------


def test_substitution_restores_literals():
    query = parse("SELECT a FROM t WHERE a = ? AND b < ?")
    substituted = substitute_parameters(query, (4, 1.5))
    assert [c.right.value for c in substituted.where] == [4, 1.5]
    assert count_parameters(substituted) == 0


def test_substitution_checks_arity():
    query = parse("SELECT a FROM t WHERE a = ?")
    with pytest.raises(BindError):
        substitute_parameters(query, ())
    with pytest.raises(BindError):
        substitute_parameters(query, (1, 2))


# -- binder inference --------------------------------------------------------------


def test_binder_infers_parameter_type_from_column(simple_catalog):
    bound = Binder(simple_catalog).bind(
        parse("SELECT a FROM t WHERE a = ? AND b < ?")
    )
    params = [c.right for c in bound.filters["t"]]
    assert params[0].dtype == INT
    assert params[1].dtype == DOUBLE
    assert bound.num_params == 2


def test_binder_infers_string_parameter_from_char_column(simple_catalog):
    bound = Binder(simple_catalog).bind(parse("SELECT a FROM t WHERE c = ?"))
    (comparison,) = bound.filters["t"]
    assert comparison.right.dtype.is_string


def test_binder_rejects_uninferable_parameters(simple_catalog):
    with pytest.raises(BindError):
        Binder(simple_catalog).bind(parse("SELECT a FROM t WHERE ? = ?"))


def test_binder_defaults_arithmetic_parameters_to_double(simple_catalog):
    bound = Binder(simple_catalog).bind(
        parse("SELECT sum(b * ?) AS s FROM t")
    )
    assert bound.num_params == 1


def test_binder_accepts_supplied_parameter_dtypes(simple_catalog):
    bound = Binder(simple_catalog).bind(
        parse("SELECT a FROM t WHERE a = ?"), param_dtypes={0: DOUBLE}
    )
    (comparison,) = bound.filters["t"]
    assert comparison.right.dtype == DOUBLE
