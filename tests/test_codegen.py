"""Tests for the code generator, compiler, and generated-code behaviour."""

import pytest

from repro.core.compiler import QueryCompiler
from repro.core.emitter import Emitter, GenContext, OPT_O0, OPT_O2
from repro.core.engine import HiqueEngine
from repro.core.generator import CodeGenerator
from repro.errors import CodegenError
from repro.plan.optimizer import Optimizer, PlannerConfig
from repro.sql.binder import Binder
from repro.sql.parser import parse


def generate(catalog, sql, opt_level=OPT_O2, traced=False, **config):
    bound = Binder(catalog).bind(parse(sql))
    plan = Optimizer(catalog, PlannerConfig(**config)).plan(bound)
    return CodeGenerator().generate(
        plan, name="test", opt_level=opt_level, traced=traced
    ), plan


class TestEmitter:
    def test_indentation_blocks(self):
        em = Emitter()
        with em.block("def f():"):
            em.emit("x = 1")
            with em.block("if x:"):
                em.emit("return x")
        source = em.source()
        assert "def f():\n    x = 1\n    if x:\n        return x" in source

    def test_unpacker_registry_dedupes(self):
        gen = GenContext()
        first = gen.unpacker("q")
        second = gen.unpacker("q")
        assert first == second
        assert len(gen.preamble_lines()) == 1

    def test_field_decode_string_strips(self):
        gen = GenContext()
        from repro.storage.types import char

        source = gen.field_decode(char(8), "data", "off + 4")
        assert "rstrip(_SP)" in source

    def test_bad_opt_level_rejected(self):
        with pytest.raises(CodegenError):
            GenContext(opt_level="O3")


class TestGeneratedSource:
    def test_source_compiles(self, simple_catalog):
        generated, _ = generate(
            simple_catalog, "SELECT a, b FROM t WHERE a < 10"
        )
        compile(generated.source, "<gen>", "exec")  # should not raise

    def test_function_per_operator(self, simple_catalog):
        generated, plan = generate(
            simple_catalog,
            "SELECT t.c, sum(u.d) AS s FROM t, u WHERE t.k = u.k "
            "GROUP BY t.c ORDER BY s",
        )
        for op_id, name in generated.function_names.items():
            assert f"def {name}(" in generated.source
        assert "def run_query(ctx):" in generated.source

    def test_o2_inlines_predicates(self, simple_catalog):
        generated, _ = generate(
            simple_catalog, "SELECT a FROM t WHERE a < 10 AND k = 3"
        )
        # Inline comparisons over decoded field variables, no runtime
        # predicate call.
        assert "ctx.predicates" not in generated.source
        assert "< 10" in generated.source

    def test_o0_delegates_to_runtime(self, simple_catalog):
        generated, _ = generate(
            simple_catalog, "SELECT a FROM t WHERE a < 10", opt_level=OPT_O0
        )
        assert "_rt.scan_filter_project" in generated.source
        assert "ctx.predicates" in generated.source

    def test_traced_source_references_probe(self, simple_catalog):
        generated, _ = generate(
            simple_catalog, "SELECT a FROM t WHERE a < 10", traced=True
        )
        assert "_probe.load" in generated.source
        assert "_probe.instr" in generated.source

    def test_untraced_source_has_no_probe(self, simple_catalog):
        generated, _ = generate(simple_catalog, "SELECT a FROM t")
        assert "_probe" not in generated.source

    def test_map_aggregation_uses_offset_formula(self, simple_catalog):
        generated, _ = generate(
            simple_catalog,
            "SELECT c, k, count(*) AS n FROM t GROUP BY c, k",
            force_agg="map",
        )
        # Two directories and a scalar offset combination (Fig. 4).
        assert "dir0" in generated.source
        assert "dir1" in generated.source
        assert "_g = i0 *" in generated.source

    def test_join_team_emits_nested_loops(self):
        from repro.storage import Catalog, Column, INT, Schema

        catalog = Catalog()
        for name in ("r", "s", "w"):
            table = catalog.create_table(
                name, Schema([Column("k", INT), Column("v", INT)])
            )
            table.load_rows((i % 5, i) for i in range(50))
        catalog.analyze()
        generated, _ = generate(
            catalog,
            "SELECT r.v, s.v, w.v FROM r, s, w WHERE r.k = s.k "
            "AND s.k = w.k",
        )
        assert "def team_join_o" in generated.source
        # One loop level per input inside the group product.
        assert "for a0 in range(i0, e0):" in generated.source
        assert "for a2 in range(i2, e2):" in generated.source

    def test_plan_embedded_in_docstring(self, simple_catalog):
        generated, plan = generate(simple_catalog, "SELECT a FROM t")
        assert "ScanStage" in generated.source.split('"""')[1]

    def test_source_size_counts_bytes(self, simple_catalog):
        generated, _ = generate(simple_catalog, "SELECT a FROM t")
        assert generated.source_size == len(
            generated.source.encode("utf-8")
        )


class TestCompiler:
    def test_compile_produces_entry(self, simple_catalog, tmp_path):
        generated, plan = generate(simple_catalog, "SELECT a, b FROM t")
        compiled = QueryCompiler(str(tmp_path)).compile(generated)
        assert callable(compiled.entry)
        assert compiled.compile_seconds > 0
        assert compiled.compiled_bytes > 0

    def test_source_written_to_file(self, simple_catalog, tmp_path):
        generated, _ = generate(simple_catalog, "SELECT a FROM t")
        compiled = QueryCompiler(str(tmp_path)).compile(generated)
        with open(compiled.source_path) as handle:
            assert handle.read() == generated.source

    def test_bad_source_raises_codegen_error(self, tmp_path):
        from repro.core.generator import GeneratedQuery

        broken = GeneratedQuery(
            name="broken",
            source="def run_query(ctx:\n    pass\n",
            entry_name="run_query",
            opt_level=OPT_O2,
            traced=False,
        )
        with pytest.raises(CodegenError):
            QueryCompiler(str(tmp_path)).compile(broken)

    def test_missing_entry_raises(self, tmp_path):
        from repro.core.generator import GeneratedQuery

        missing = GeneratedQuery(
            name="missing",
            source="x = 1\n",
            entry_name="run_query",
            opt_level=OPT_O2,
            traced=False,
        )
        with pytest.raises(CodegenError):
            QueryCompiler(str(tmp_path)).compile(missing)


class TestEngineFacade:
    def test_prepare_reports_timings_and_sizes(self, simple_catalog):
        engine = HiqueEngine(simple_catalog)
        prepared = engine.prepare("SELECT a FROM t WHERE a < 5")
        timings = prepared.timings
        assert timings.parse_seconds > 0
        assert timings.optimize_seconds > 0
        assert timings.generate_seconds > 0
        assert timings.compile_seconds > 0
        assert timings.total_seconds < 1.0  # preparation is milliseconds
        assert prepared.compiled.source_bytes > 0

    def test_prepared_cache_hit(self, simple_catalog):
        engine = HiqueEngine(simple_catalog)
        first = engine.prepare("SELECT a FROM t")
        second = engine.prepare("SELECT a FROM t")
        assert first is second
        engine.clear_cache()
        assert engine.prepare("SELECT a FROM t") is not first

    def test_cache_distinguishes_opt_levels(self, simple_catalog):
        engine = HiqueEngine(simple_catalog)
        o2 = engine.prepare("SELECT a FROM t", opt_level=OPT_O2)
        o0 = engine.prepare("SELECT a FROM t", opt_level=OPT_O0)
        assert o2 is not o0

    def test_generate_source_inspection(self, simple_catalog):
        engine = HiqueEngine(simple_catalog)
        source = engine.generate_source("SELECT a FROM t")
        assert "def run_query" in source

    def test_explain(self, simple_catalog):
        engine = HiqueEngine(simple_catalog)
        assert "ScanStage" in engine.explain("SELECT a FROM t")

    def test_output_names(self, simple_catalog):
        engine = HiqueEngine(simple_catalog)
        prepared = engine.prepare(
            "SELECT c, sum(b) AS total FROM t GROUP BY c"
        )
        assert prepared.output_names == ["c", "total"]

    def test_traced_execution_requires_probe(self, simple_catalog):
        from repro.errors import ExecutionError

        engine = HiqueEngine(simple_catalog)
        prepared = engine.prepare("SELECT a FROM t", traced=True,
                                  use_cache=False)
        with pytest.raises(ExecutionError):
            engine.execute_prepared(prepared)

    def test_map_overflow_falls_back(self, simple_catalog):
        # Corrupt the statistics so the map directories are undersized.
        simple_catalog.stats("t").columns["c"].distinct = 1
        engine = HiqueEngine(simple_catalog)
        rows = engine.execute(
            "SELECT c, count(*) AS n FROM t GROUP BY c",
            planner_config=PlannerConfig(force_agg="map"),
        )
        assert len(rows) == 3  # all three groups despite the bad estimate
