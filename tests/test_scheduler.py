"""Cost-aware adaptive scheduler: placement, affinity, hand-off.

Covers the compute-per-byte :class:`CostModel` (seed routing, the ship
floor, tie-breaks, cold-pool penalties, online refinement from measured
latencies and from cross-query profiles), the sticky/work-stealing
:class:`AffinityDispatcher`, the incremental
:class:`PartitionHandoff` (byte-identity against the barrier merges,
incremental publication order, error propagation), row identity across
every placement policy × scheduling mode, the mid-query
process-pool-retired fallback, and the knob plumbing
(``Database(placement=)`` / ``set_parallel`` / shell ``.placement`` /
``REPRO_PLACEMENT``) plus the observability surfaces (stats describe,
explain annotations, per-backend digest splits).
"""

from __future__ import annotations

import copy
import io
import random
import threading
from types import SimpleNamespace

import pytest

from repro.api import Database
from repro.cli import Shell
from repro.core.engine import HiqueEngine
from repro.errors import ReproError
from repro.obs.insights import DigestStore
from repro.parallel.backend import BackendRetired, ProcessBackend
from repro.parallel.cost import (
    CostModel,
    batch_payload_bytes,
    cost_kind,
)
from repro.parallel.executor import PartitionHandoff
from repro.parallel.merge import (
    merge_fine_partition_runs,
    merge_partition_runs,
)
from repro.parallel.morsel import AffinityDispatcher
from repro.parallel.proc import ScanTask, shipped_bytes
from repro.parallel.stats import (
    EXECUTOR_MIXED,
    EXECUTOR_PROCESS,
    EXECUTOR_THREAD,
    PLACEMENT_AUTO,
    ExecutionStats,
    ParallelConfig,
    PhaseStats,
    default_placement,
)
from repro.plan.optimizer import PlannerConfig
from repro.storage import Catalog, Column, DOUBLE, INT, Schema, char

#: Thresholds low enough that small test tables genuinely fan out.
_PARALLEL = dict(workers=3, morsel_pages=1, min_pages=1, min_rows=8)

BIG = 4 * 1024 * 1024  # comfortably above the ship floor


# -- cost model -------------------------------------------------------------------------


def test_seeds_route_stage_to_threads_and_join_to_processes():
    model = CostModel()
    stage = model.choose("stage", BIG, tasks=8)
    assert stage.backend == EXECUTOR_THREAD
    assert "est thread" in stage.reason
    join = model.choose("join", BIG, tasks=8)
    assert join.backend == EXECUTOR_PROCESS
    assert join.thread_seconds > join.process_seconds
    for kind in ("aggregate", "sort", "restage", "call"):
        assert model.choose(kind, BIG, tasks=8).backend == EXECUTOR_PROCESS


def test_small_batches_never_ship():
    model = CostModel()
    decision = model.choose("join", 4 * 1024, tasks=2)
    assert decision.backend == EXECUTOR_THREAD
    assert "ship floor" in decision.reason


def test_threads_win_ties():
    model = CostModel()
    # Force identical rates on both backends; the remaining difference
    # is pure per-task overhead, which favors threads — and even with
    # zero tasks the tie itself must fall to the thread backend.
    model._rates[("join", EXECUTOR_THREAD)] = 1e-8
    model._rates[("join", EXECUTOR_PROCESS)] = 1e-8
    assert model.choose("join", BIG, tasks=1).backend == EXECUTOR_THREAD
    assert model.choose("join", BIG, tasks=0).backend == EXECUTOR_THREAD


def test_cold_pool_spinup_flips_marginal_wins():
    model = CostModel()
    payload = 1024 * 1024  # process saves ~24ms warm, loses cold
    assert (
        model.choose("join", payload, tasks=1, warm=True).backend
        == EXECUTOR_PROCESS
    )
    cold = model.choose("join", payload, tasks=1, warm=False)
    assert cold.backend == EXECUTOR_THREAD
    assert cold.process_seconds > model.POOL_SPINUP_SECONDS


def test_first_observation_replaces_seed_then_ema():
    model = CostModel()
    seeded = model.rate("join", EXECUTOR_THREAD)
    model.observe("join", EXECUTOR_THREAD, BIG, tasks=1, seconds=0.42)
    first = model.rate("join", EXECUTOR_THREAD)
    expected = (0.42 - model.THREAD_TASK_SECONDS) / BIG
    assert first == pytest.approx(expected)
    assert first != seeded
    assert model.samples("join", EXECUTOR_THREAD) == 1
    model.observe("join", EXECUTOR_THREAD, BIG, tasks=1, seconds=0.84)
    second = model.rate("join", EXECUTOR_THREAD)
    # EMA: strictly between the two observations, weighted by ALPHA.
    assert first < second < (0.84 - model.THREAD_TASK_SECONDS) / BIG
    assert model.samples("join", EXECUTOR_THREAD) == 2
    # Degenerate measurements never poison the model.
    model.observe("join", EXECUTOR_THREAD, 0, tasks=1, seconds=1.0)
    model.observe("join", EXECUTOR_THREAD, BIG, tasks=1, seconds=0.0)
    assert model.samples("join", EXECUTOR_THREAD) == 2


def test_observed_latencies_flip_routing():
    model = CostModel()
    assert model.choose("join", BIG, tasks=1).backend == EXECUTOR_PROCESS
    # This host's processes turn out to be slow, its threads fast
    # (say: 1 CPU, so shipping buys nothing and pays serialization).
    model.observe("join", EXECUTOR_PROCESS, BIG, tasks=1, seconds=2.0)
    model.observe("join", EXECUTOR_THREAD, BIG, tasks=1, seconds=0.02)
    assert model.choose("join", BIG, tasks=1).backend == EXECUTOR_THREAD


def test_profile_refinement_fills_only_unobserved_thread_rates():
    model = CostModel()
    totals = [
        SimpleNamespace(
            kind="ScanStage", rows=0, self_seconds=2.0,
            pages_hit=400, pages_missed=100,
        ),
        SimpleNamespace(
            kind="Join", rows=10_000, self_seconds=1.0,
            pages_hit=0, pages_missed=0,
        ),
        SimpleNamespace(  # unknown kinds are ignored
            kind="Limit", rows=5, self_seconds=9.9,
            pages_hit=0, pages_missed=0,
        ),
    ]
    model.observe("join", EXECUTOR_THREAD, BIG, tasks=1, seconds=0.1)
    observed_join = model.rate("join", EXECUTOR_THREAD)
    model.refine_from_profile(totals)
    # Scan rate re-seeded from the profile (pages × page bytes)...
    assert model.rate("stage", EXECUTOR_THREAD) == pytest.approx(
        2.0 / (500 * 4096)
    )
    # ...but the directly measured join rate always wins.
    assert model.rate("join", EXECUTOR_THREAD) == observed_join
    # Process rates are never profile-seeded (profiles don't attribute
    # time per backend).
    assert model.rate("join", EXECUTOR_PROCESS) == CostModel.SEEDS["join"][1]


def test_cost_kind_and_batch_payload():
    assert cost_kind("stage:o1") == "stage"
    assert cost_kind("join:o3") == "join"
    assert cost_kind("join-team:o5") == "join"
    assert cost_kind("weird:o7") == "call"
    assert cost_kind(None) == "call"
    materialized = ScanTask(
        "f", "t", 0, 2, pages=(b"x" * 100, b"y" * 50)
    )
    unread = ScanTask("f", "t", 4, 7)  # pages read at submission time
    call = SimpleNamespace(args=[[1] * 10, {"k": [1, 2, 3]}])
    assert batch_payload_bytes([materialized]) == 150
    assert batch_payload_bytes([unread]) == 3 * 4096
    assert batch_payload_bytes([call]) == shipped_bytes(call)
    assert batch_payload_bytes([]) == 0


# -- page-range affinity ----------------------------------------------------------------


def test_affinity_workers_drain_their_own_partition_first():
    dispatcher = AffinityDispatcher(6, [0, 0, 0, 1, 1, 1], workers=2)
    assert [dispatcher.next(0) for _ in range(3)] == [0, 1, 2]
    assert [dispatcher.next(1) for _ in range(3)] == [3, 4, 5]
    assert dispatcher.steals == 0
    assert dispatcher.next(0) is None and dispatcher.next(1) is None


def test_affinity_steals_from_the_longest_queue_tail():
    # Every task lands in worker 0's stripe: worker 1 must steal, and
    # from the *tail*, so worker 0 keeps walking its stripe in order.
    dispatcher = AffinityDispatcher(4, [0, 0, 0, 0], workers=2)
    assert dispatcher.next(1) == 3
    assert dispatcher.steals == 1
    assert dispatcher.next(0) == 0
    assert dispatcher.next(1) == 2
    assert dispatcher.next(0) == 1
    assert dispatcher.steals == 2
    assert dispatcher.next(1) is None


def test_affinity_claims_cover_every_task_exactly_once():
    rng = random.Random(7)
    partitions = [rng.randrange(5) for _ in range(40)]
    dispatcher = AffinityDispatcher(40, partitions, workers=3)
    claimed = []
    slot = 0
    while True:
        index = dispatcher.next(slot)
        if index is None:
            break
        claimed.append(index)
        slot = (slot + 1) % 3
    assert sorted(claimed) == list(range(40))


def test_affinity_cancel_and_validation():
    dispatcher = AffinityDispatcher(2, [0, 1], workers=2)
    dispatcher.cancel()
    assert dispatcher.next(0) is None
    with pytest.raises(ValueError):
        AffinityDispatcher(3, [0, 1], workers=2)
    with pytest.raises(ValueError):
        AffinityDispatcher(1, [0], workers=0)


# -- incremental partition hand-off -----------------------------------------------------


def _fine_partials(rng: random.Random) -> list[dict]:
    keys = list(range(12))
    partials = []
    for run in range(5):
        rng.shuffle(keys)
        partials.append(
            {
                key: [(key, run, i) for i in range(rng.randrange(1, 4))]
                for key in keys[: rng.randrange(3, 10)]
            }
        )
    return partials


def test_fine_handoff_matches_barrier_merge():
    rng = random.Random(23)
    partials = _fine_partials(rng)
    expected = merge_fine_partition_runs(copy.deepcopy(partials))
    handoff = PartitionHandoff(copy.deepcopy(partials), fine=True)
    handoff.start()
    got = handoff.result()
    # Identical contents *and* identical key insertion order — the
    # serial directory's first-seen-across-runs order.
    assert got == expected
    assert list(got) == list(expected)
    assert handoff.keys == list(expected)
    assert handoff.result() is got  # cached


def test_coarse_handoff_matches_barrier_merge():
    rng = random.Random(29)
    partials = [
        [
            [(bucket, run, i) for i in range(rng.randrange(0, 4))]
            for bucket in range(6)
        ]
        for run in range(4)
    ]
    expected = merge_partition_runs(copy.deepcopy(partials))
    handoff = PartitionHandoff(copy.deepcopy(partials), fine=False)
    handoff.start()
    assert handoff.result() == expected
    assert handoff.keys == list(range(6))


def test_handoff_publishes_buckets_incrementally():
    partials = [
        {"a": [1], "b": [2], "c": [3]},
        {"a": [4], "c": [5]},
    ]
    release = {key: threading.Event() for key in ("a", "b", "c")}
    handoff = PartitionHandoff(
        copy.deepcopy(partials),
        fine=True,
        pace=lambda key: release[key].wait(timeout=5),
    )
    handoff.start()
    # "a" publishes before its pace gate; "b" is still unmerged.
    assert handoff.bucket("a") == [1, 4]
    assert handoff.merged_count() == 1

    got_b: list = []
    waiter = threading.Thread(
        target=lambda: got_b.append(handoff.bucket("b")), daemon=True
    )
    waiter.start()
    waiter.join(timeout=0.2)
    assert waiter.is_alive()  # bucket("b") genuinely blocks
    release["a"].set()
    waiter.join(timeout=5)
    assert not waiter.is_alive() and got_b == [[2]]
    for event in release.values():
        event.set()
    assert handoff.result() == merge_fine_partition_runs(partials)


def test_handoff_without_start_merges_inline():
    partials = [{"k": [1, 2]}, {"k": [3]}]
    handoff = PartitionHandoff(copy.deepcopy(partials), fine=True)
    assert handoff.result() == {"k": [1, 2, 3]}
    assert handoff.total_rows() == 3


def test_handoff_merge_errors_reach_consumers():
    # A poisoned first run: the adopted bucket is a tuple, so merging
    # the second run into it raises on the merge thread — and both
    # consumer entry points must see that error, not hang.
    handoff = PartitionHandoff([{"k": (1,)}, {"k": [2]}], fine=True)
    handoff.start()
    with pytest.raises(AttributeError):
        handoff.bucket("k")
    with pytest.raises(AttributeError):
        handoff.result()


# -- placement × scheduling row identity ------------------------------------------------


@pytest.fixture(scope="module")
def catalog() -> Catalog:
    rng = random.Random(53)
    catalog = Catalog()
    t = catalog.create_table(
        "t",
        Schema(
            [
                Column("x", INT),
                Column("y", INT),
                Column("v", DOUBLE),
                Column("c", char(6)),
            ]
        ),
    )
    t.load_rows(
        (
            rng.randrange(200),
            rng.randrange(150),
            float(rng.randrange(-2000, 2000)) / 8,
            f"s{rng.randrange(5)}",
        )
        for _ in range(1600)
    )
    u = catalog.create_table(
        "u", Schema([Column("x", INT), Column("w", INT)])
    )
    u.load_rows(
        (rng.randrange(200), rng.randrange(100)) for _ in range(500)
    )
    catalog.analyze()
    return catalog


QUERIES = [
    "SELECT c AS c, count(*) AS n, sum(x) AS s FROM t "
    "WHERE x < 120 GROUP BY c ORDER BY c",
    "SELECT t.x AS x, u.w AS w FROM t, u WHERE t.x = u.x "
    "ORDER BY x DESC, w LIMIT 200",
    "SELECT t.c AS c, count(*) AS n, min(u.w) AS lo FROM t, u "
    "WHERE t.x = u.x GROUP BY t.c ORDER BY c",
]


@pytest.mark.parametrize("pipeline", [False, True])
def test_rows_identical_under_every_placement(catalog, pipeline):
    serial = HiqueEngine(catalog)
    engines = {
        placement: HiqueEngine(
            catalog,
            parallel=ParallelConfig(
                placement=placement, pipeline=pipeline, **_PARALLEL
            ),
        )
        for placement in ("thread", "process", "auto")
    }
    try:
        for sql in QUERIES:
            want = serial.execute(sql)
            for placement, engine in engines.items():
                assert engine.execute(sql) == want, (placement, sql)
                stats = engine.last_exec_stats
                assert stats is not None, (placement, sql)
                if stats.parallel:
                    assert stats.placement == placement, (placement, sql)
        stats = engines["auto"].last_exec_stats
        assert stats is not None and stats.parallel
        assert "adaptive" in stats.describe()
        # The chooser recorded where every batch went.
        assert any(
            note.startswith("adaptive placement routed")
            for note in stats.notes
        ), stats.notes
    finally:
        serial.close()
        for engine in engines.values():
            engine.close()


@pytest.mark.parametrize(
    "config",
    [
        PlannerConfig(force_join="hash"),
        PlannerConfig(force_join="hybrid", force_partitions=8),
    ],
    ids=["fine-hash", "coarse-hybrid"],
)
def test_pipelined_partition_joins_hand_off(catalog, config):
    serial = HiqueEngine(catalog)
    engine = HiqueEngine(
        catalog,
        # Hand-off is a thread-placement pipelined feature: pin the
        # placement so a REPRO_PLACEMENT=auto environment leg (which
        # opens a process backend) cannot disable it underneath us.
        parallel=ParallelConfig(
            pipeline=True, placement="thread", **_PARALLEL
        ),
    )
    sql = QUERIES[1]
    try:
        want = serial.execute(sql, planner_config=config)
        assert engine.execute(sql, planner_config=config) == want
        stats = engine.last_exec_stats
        assert stats is not None and stats.parallel and stats.pipelined
        assert any(
            "incremental partition hand-off" in note
            for note in stats.notes
        ), stats.notes
    finally:
        serial.close()
        engine.close()


def test_self_join_hands_off_both_bindings(catalog):
    """``FROM t t1, t t2`` stages each binding separately, so *both*
    stagings may hand off — and rows must still match the serial run."""
    serial = HiqueEngine(catalog)
    engine = HiqueEngine(
        catalog,
        # Hand-off is a thread-placement pipelined feature: pin the
        # placement so a REPRO_PLACEMENT=auto environment leg (which
        # opens a process backend) cannot disable it underneath us.
        parallel=ParallelConfig(
            pipeline=True, placement="thread", **_PARALLEL
        ),
    )
    config = PlannerConfig(force_join="hash")
    sql = (
        "SELECT t1.x AS x, t2.y AS y FROM t t1, t t2 "
        "WHERE t1.x = t2.x AND t2.y < 20 ORDER BY x, y LIMIT 150"
    )
    try:
        want = serial.execute(sql, planner_config=config)
        assert engine.execute(sql, planner_config=config) == want
        stats = engine.last_exec_stats
        assert stats is not None and stats.parallel
        assert any(
            "hand-off on 2 staging node(s)" in note
            for note in stats.notes
        ), stats.notes
    finally:
        serial.close()
        engine.close()


def test_non_join_consumers_never_hand_off(catalog):
    """The gate admits only partition stagings feeding one pairwise
    join: an aggregation consumer needs the whole directory at once."""
    serial = HiqueEngine(catalog)
    engine = HiqueEngine(
        catalog,
        # Hand-off is a thread-placement pipelined feature: pin the
        # placement so a REPRO_PLACEMENT=auto environment leg (which
        # opens a process backend) cannot disable it underneath us.
        parallel=ParallelConfig(
            pipeline=True, placement="thread", **_PARALLEL
        ),
    )
    config = PlannerConfig(force_agg="hybrid", force_partitions=8)
    sql = (
        "SELECT c AS c, count(*) AS n FROM t GROUP BY c ORDER BY c"
    )
    try:
        want = serial.execute(sql, planner_config=config)
        assert engine.execute(sql, planner_config=config) == want
        stats = engine.last_exec_stats
        assert stats is not None
        assert not any(
            "incremental partition hand-off" in note
            for note in stats.notes
        ), stats.notes
    finally:
        serial.close()
        engine.close()


def test_barrier_runs_never_hand_off(catalog):
    engine = HiqueEngine(
        catalog,
        parallel=ParallelConfig(
            pipeline=False, placement="thread", **_PARALLEL
        ),
    )
    try:
        engine.execute(QUERIES[1], planner_config=PlannerConfig(
            force_join="hash"
        ))
        stats = engine.last_exec_stats
        assert stats is not None
        assert not any(
            "incremental partition hand-off" in note
            for note in stats.notes
        ), stats.notes
    finally:
        engine.close()


def test_retired_process_pool_falls_back_to_threads(
    catalog, monkeypatch
):
    serial = HiqueEngine(catalog)
    engine = HiqueEngine(
        catalog,
        parallel=ParallelConfig(
            executor="process", placement="process", **_PARALLEL
        ),
    )

    def retired(self, *args, **kwargs):
        raise BackendRetired("process pool was retired by a reconfigure")

    monkeypatch.setattr(ProcessBackend, "run_batch", retired)
    try:
        want = serial.execute(QUERIES[2])
        assert engine.execute(QUERIES[2]) == want
        stats = engine.last_exec_stats
        assert stats is not None and stats.parallel
        assert stats.backend == EXECUTOR_THREAD, stats
        assert any(
            "process pool retired mid-query" in note
            for note in stats.notes
        ), stats.notes
    finally:
        serial.close()
        engine.close()


# -- knob plumbing ----------------------------------------------------------------------


def test_default_placement_env(monkeypatch):
    monkeypatch.delenv("REPRO_PLACEMENT", raising=False)
    assert default_placement() == ""
    assert ParallelConfig().placement == ""
    monkeypatch.setenv("REPRO_PLACEMENT", "auto")
    assert default_placement() == PLACEMENT_AUTO
    assert ParallelConfig().placement == PLACEMENT_AUTO
    monkeypatch.setenv("REPRO_PLACEMENT", "sideways")
    with pytest.raises(ValueError):
        default_placement()


def test_database_placement_knob(catalog, monkeypatch):
    monkeypatch.delenv("REPRO_PLACEMENT", raising=False)
    with Database(catalog=catalog, placement="auto") as db:
        assert db.parallel_config.placement == PLACEMENT_AUTO
        config = db.set_parallel(placement="thread")
        assert config.placement == "thread"
        # Other knobs survive a placement change and vice versa.
        config = db.set_parallel(workers=2)
        assert config.placement == "thread" and config.workers == 2
        config = db.set_parallel(placement="")
        assert config.placement == ""
        with pytest.raises(ReproError):
            db.set_parallel(placement="sideways")
    with Database(catalog=catalog, placement="auto") as db:
        rows = db.execute(
            "SELECT x AS x, count(*) AS n FROM t GROUP BY x ORDER BY x"
        )
        assert rows
    with pytest.raises(ReproError):
        Database(catalog=catalog, placement="bogus")
    monkeypatch.setenv("REPRO_PLACEMENT", "auto")
    with Database(catalog=catalog) as db:
        assert db.parallel_config.placement == PLACEMENT_AUTO


def test_shell_placement_command(monkeypatch):
    monkeypatch.delenv("REPRO_PLACEMENT", raising=False)
    out = io.StringIO()
    shell = Shell(stdout=out)
    try:
        shell.handle(".placement")
        shell.handle(".placement auto")
        assert shell.db.parallel_config.placement == PLACEMENT_AUTO
        shell.handle(".placement thread")
        assert shell.db.parallel_config.placement == "thread"
        shell.handle(".placement sideways")
        text = out.getvalue()
        assert "follows executor" in text
        assert "adaptive cost-model routing" in text
        assert "batch placement set to thread" in text
        assert "usage: .placement" in text
    finally:
        shell.db.close()


# -- observability ----------------------------------------------------------------------


def test_stats_describe_mixed_and_adaptive():
    stats = ExecutionStats(
        parallel=True,
        backend=EXECUTOR_MIXED,
        placement=PLACEMENT_AUTO,
        workers=4,
    )
    assert "(mixed, adaptive)" in stats.describe()
    assert PhaseStats("join", backend=EXECUTOR_MIXED).describe().endswith(
        "1wm"
    )
    assert PhaseStats("join", backend=EXECUTOR_PROCESS).describe().endswith(
        "1wp"
    )


def test_explain_analyze_shows_placement_decisions(catalog):
    with Database(catalog=catalog, placement="auto") as db:
        db.set_parallel(**_PARALLEL)
        text = db.explain_analyze(QUERIES[2])
    assert "placement=" in text
    # Every decision carries its reason (floor or estimate comparison).
    assert "ship floor" in text or "est thread" in text


def test_digest_records_per_backend_split():
    store = DigestStore()
    for backend in ("thread", "thread", "process", "mixed"):
        digest = store.record(
            "hique", "SELECT 1", seconds=0.01, rows=1, backend=backend
        )
    assert digest.backend_split() == "t2/p1/m1"
    payload = digest.to_dict()
    assert payload["backends"]["thread"]["calls"] == 2
    assert payload["backends"]["mixed"]["calls"] == 1
    single = DigestStore().record(
        "hique", "SELECT 2", seconds=0.01, backend="thread"
    )
    assert single.backend_split() == "thread"
    serial_only = DigestStore().record("hique", "SELECT 3", seconds=0.01)
    assert serial_only.backend_split() == "-"


def test_insights_render_per_backend_split(catalog):
    """One statement run under both placements shows its split in the
    ``.insights`` digest table."""
    with Database(catalog=catalog) as db:
        db.set_parallel(**_PARALLEL)
        sql = QUERIES[2]
        db.set_parallel(placement="thread")
        db.execute(sql)
        db.set_parallel(placement="process")
        db.execute(sql)
        text = db.insights_text()
    assert "t1/p1" in text
