"""Operator-level tests for the Volcano iterator engine."""

import pytest

from repro.core.executor import build_agg_helpers
from repro.engines.volcano.aggregates import (
    HashAggregate,
    HybridAggregate,
    SortAggregate,
)
from repro.engines.volcano.base import drain, iterate
from repro.engines.volcano.joins import (
    FineHashJoin,
    HybridJoin,
    MergeJoin,
    NestedLoopsJoin,
)
from repro.engines.volcano.operators import (
    Buffer,
    Filter,
    FunctionScan,
    Identity,
    LimitOperator,
    Materialize,
    OrderBy,
    Project,
    SortOperator,
    TableScan,
)
from repro.memsim.probe import Probe
from repro.storage import Column, INT, Schema, table_from_rows


def scan_of(rows):
    return FunctionScan(list(rows))


class TestScanFilterProject:
    def test_table_scan_generic_and_optimized(self, simple_catalog):
        table = simple_catalog.table("t")
        for generic in (True, False):
            rows = drain(TableScan(table, generic=generic))
            assert len(rows) == 200
            assert rows[0] == (0, 0.0, "x0", rows[0][3])

    def test_filter_fused(self):
        node = Filter(scan_of([(i,) for i in range(10)]), [],
                      fused=lambda r: r[0] % 2 == 0)
        assert drain(node) == [(i,) for i in range(0, 10, 2)]

    def test_filter_conjunct_list(self):
        node = Filter(
            scan_of([(i,) for i in range(10)]),
            [lambda r: r[0] > 2, lambda r: r[0] < 7],
        )
        assert drain(node) == [(i,) for i in range(3, 7)]

    def test_project(self):
        node = Project(scan_of([(1, 2), (3, 4)]), lambda r: (r[1],))
        assert drain(node) == [(2,), (4,)]

    def test_iterate_generator(self):
        got = list(iterate(scan_of([(1,), (2,)])))
        assert got == [(1,), (2,)]


class TestBlockingOperators:
    def test_materialize_replays(self):
        node = Materialize(scan_of([(1,), (2,)]))
        node.open()
        assert node.next() == (1,)
        assert node.next() == (2,)
        assert node.next() is None

    def test_sort_operator(self):
        node = SortOperator(scan_of([(3,), (1,), (2,)]), (0,))
        assert drain(node) == [(1,), (2,), (3,)]

    def test_order_by_mixed(self):
        node = OrderBy(
            scan_of([(1, "b"), (2, "a"), (1, "a")]),
            [(1, True), (0, False)],
        )
        assert drain(node) == [(2, "a"), (1, "a"), (1, "b")]

    def test_limit(self):
        node = LimitOperator(scan_of([(i,) for i in range(10)]), 3)
        assert drain(node) == [(0,), (1,), (2,)]

    def test_buffer_preserves_stream(self):
        node = Buffer(scan_of([(i,) for i in range(100)]), block_size=7)
        assert drain(node) == [(i,) for i in range(100)]

    def test_identity_passthrough(self):
        node = Identity(scan_of([(1,), (2,)]))
        assert drain(node) == [(1,), (2,)]


class TestJoinOperators:
    def test_merge_join_duplicates(self):
        left = scan_of([(1, "a"), (1, "b"), (2, "c")])
        right = scan_of([(1, "x"), (1, "y"), (3, "z")])
        rows = drain(MergeJoin(left, right, 0, 0))
        assert sorted(rows) == sorted(
            [
                (1, "a", 1, "x"), (1, "a", 1, "y"),
                (1, "b", 1, "x"), (1, "b", 1, "y"),
            ]
        )

    def test_merge_join_empty_side(self):
        assert drain(MergeJoin(scan_of([]), scan_of([(1, 1)]), 0, 0)) == []

    def test_hybrid_join(self):
        left = scan_of([(i % 3, i) for i in range(30)])
        right = scan_of([(i % 3, i * 10) for i in range(15)])
        rows = drain(HybridJoin(left, right, 0, 0, num_partitions=4))
        assert len(rows) == sum(
            1 for i in range(30) for j in range(15) if i % 3 == j % 3
        )

    def test_fine_hash_join(self):
        left = scan_of([(1, "a"), (2, "b")])
        right = scan_of([(2, "x"), (2, "y")])
        rows = drain(FineHashJoin(left, right, 0, 0))
        assert sorted(rows) == [(2, "b", 2, "x"), (2, "b", 2, "y")]

    def test_nested_loops_cartesian(self):
        rows = drain(
            NestedLoopsJoin(scan_of([(1,), (2,)]), scan_of([(9,)]))
        )
        assert rows == [(1, 9), (2, 9)]


class TestAggregateOperators:
    def _helpers(self, group_positions=(0,)):
        from repro.plan.descriptors import Aggregate
        from repro.plan.layout import ColumnLayout, ColumnSlot
        from repro.sql.bound import BoundAggregate, BoundColumn, BoundOutput
        from repro.storage.types import INT

        layout = ColumnLayout(
            [ColumnSlot("t", "g", INT), ColumnSlot("t", "v", INT)]
        )
        value = BoundColumn("t", "v", INT)
        group = BoundColumn("t", "g", INT)
        outputs = []
        if group_positions:
            outputs.append(BoundOutput("g", group, INT, "group"))
        outputs.append(
            BoundOutput(
                "s", BoundAggregate("sum", value, INT), INT, "aggregate"
            )
        )
        op = Aggregate(
            op_id=1,
            output_layout=layout,
            input_op=0,
            group_positions=group_positions,
            outputs=tuple(outputs),
        )
        return op, build_agg_helpers(op, layout)

    def test_sort_aggregate(self):
        op, helpers = self._helpers()
        rows = sorted((i % 3, i) for i in range(30))
        node = SortAggregate(scan_of(rows), (0,), helpers)
        got = dict(drain(node))
        assert got == {
            g: sum(i for i in range(30) if i % 3 == g) for g in range(3)
        }

    def test_hash_aggregate(self):
        op, helpers = self._helpers()
        rows = [(i % 3, i) for i in range(30)]
        got = dict(drain(HashAggregate(scan_of(rows), helpers)))
        assert got == {
            g: sum(i for i in range(30) if i % 3 == g) for g in range(3)
        }

    def test_hybrid_aggregate(self):
        op, helpers = self._helpers()
        rows = [(i % 5, i) for i in range(50)]
        node = HybridAggregate(scan_of(rows), (0,), helpers,
                               num_partitions=4)
        got = dict(drain(node))
        assert got == {
            g: sum(i for i in range(50) if i % 5 == g) for g in range(5)
        }

    def test_global_aggregate_empty_input(self):
        op, helpers = self._helpers(group_positions=())
        got = drain(SortAggregate(scan_of([]), (), helpers))
        assert got == [(0,)]  # SUM over empty input


class TestProbeAccounting:
    def test_iterator_calls_counted(self, simple_catalog):
        from repro.engines.volcano import VolcanoEngine

        probe = Probe()
        engine = VolcanoEngine(simple_catalog, generic=True)
        engine.execute("SELECT a FROM t WHERE a < 50", probe=probe)
        # At least two calls per scanned tuple plus per-field accessors.
        assert probe.function_calls > 200 * 2
        assert probe.data_accesses > 0
        assert probe.instructions > probe.function_calls

    def test_generic_costs_more_calls_than_optimized(self, simple_catalog):
        from repro.engines.volcano import VolcanoEngine

        sql = "SELECT a FROM t WHERE a < 50"
        generic_probe = Probe()
        VolcanoEngine(simple_catalog, generic=True).execute(
            sql, probe=generic_probe
        )
        optimized_probe = Probe()
        VolcanoEngine(simple_catalog).execute(sql, probe=optimized_probe)
        assert generic_probe.function_calls > optimized_probe.function_calls

    def test_buffering_reduces_calls(self, simple_catalog):
        from repro.engines.volcano import VolcanoEngine

        sql = "SELECT a FROM t"
        plain = Probe()
        VolcanoEngine(simple_catalog).execute(sql, probe=plain)
        buffered = Probe()
        VolcanoEngine(simple_catalog, buffered=True).execute(
            sql, probe=buffered
        )
        assert buffered.function_calls < plain.function_calls

    def test_hique_nearly_call_free(self, simple_catalog):
        from repro.core.engine import HiqueEngine
        from repro.engines.volcano import VolcanoEngine

        sql = "SELECT a FROM t WHERE a < 50"
        iterator_probe = Probe()
        VolcanoEngine(simple_catalog, generic=True).execute(
            sql, probe=iterator_probe
        )
        hique_probe = Probe()
        engine = HiqueEngine(simple_catalog)
        prepared = engine.prepare(sql, traced=True, use_cache=False)
        engine.execute_prepared(prepared, probe=hique_probe)
        assert hique_probe.function_calls < (
            iterator_probe.function_calls * 0.05
        )
