"""The version-keyed intermediate cache: unit and end-to-end behavior.

Unit level: LRU accounting, copy-on-put/get safety (generated merge
templates sort staged structures in place), byte-budget eviction and
table-scoped invalidation.  End to end: a warm repeated query reuses
staged scan output (visible in stats, EXPLAIN ANALYZE and Prometheus
metrics), DML on one table drops only that table's entries, and DDL
clears everything (a recreated table restarts its version epoch, which
would otherwise alias stale keys).
"""

from __future__ import annotations

from repro import Column, Database, INT
from repro.parallel.intermediates import IntermediateCache


def _rows(n, start=0):
    return [(start + i, i % 7) for i in range(n)]


class TestIntermediateCacheUnit:
    def test_hit_and_miss_accounting(self):
        cache = IntermediateCache()
        sig = ("b", "sort", ("k",), 1, False, (), "()", ())
        assert cache.get("t", 1, sig) is None
        cache.put("t", 1, sig, [(1, 2), (3, 4)])
        assert cache.get("t", 1, sig) == [(1, 2), (3, 4)]
        # A different version of the same table never matches.
        assert cache.get("t", 2, sig) is None
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 2
        assert 0 < stats.hit_rate < 1

    def test_get_and_put_return_private_copies(self):
        cache = IntermediateCache()
        sig = ("b", "none", (), 1, False, (), "()", ())
        original = [(1,), (2,), (3,)]
        cache.put("t", 1, sig, original)
        original.append((4,))  # caller keeps mutating its list
        first = cache.get("t", 1, sig)
        assert first == [(1,), (2,), (3,)]
        first.sort(reverse=True)  # consumers sort staged rows in place
        assert cache.get("t", 1, sig) == [(1,), (2,), (3,)]

    def test_partitioned_shapes_copy_buckets(self):
        cache = IntermediateCache()
        sig = ("b", "partition", ("k",), 2, False, (), "()", ())
        staged = [[(1,), (2,)], [(3,)]]
        cache.put("t", 1, sig, staged)
        got = cache.get("t", 1, sig)
        got[0].clear()
        assert cache.get("t", 1, sig) == [[(1,), (2,)], [(3,)]]
        fine_sig = ("b", "partition", ("k",), 2, True, (), "()", ())
        cache.put("t", 1, fine_sig, {0: [(1,)], 1: [(2,)]})
        fine = cache.get("t", 1, fine_sig)
        fine[0].append((9,))
        assert cache.get("t", 1, fine_sig) == {0: [(1,)], 1: [(2,)]}

    def test_byte_budget_evicts_lru(self):
        cache = IntermediateCache(capacity_bytes=4096)
        big = [(i, i) for i in range(30)]  # ~2.6 KiB each
        cache.put("t", 1, ("a",), big)
        cache.put("t", 1, ("b",), big)  # over budget: "a" evicted
        assert cache.get("t", 1, ("a",)) is None
        assert cache.get("t", 1, ("b",)) is not None
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.bytes <= stats.capacity_bytes

    def test_value_larger_than_budget_not_admitted(self):
        cache = IntermediateCache(capacity_bytes=512)
        cache.put("t", 1, ("a",), [(i, i) for i in range(100)])
        assert len(cache) == 0

    def test_invalidate_is_table_scoped(self):
        cache = IntermediateCache()
        cache.put("t", 1, ("a",), [(1,)])
        cache.put("t", 2, ("a",), [(2,)])
        cache.put("u", 1, ("a",), [(3,)])
        assert cache.invalidate_table("t") == 2
        assert cache.get("u", 1, ("a",)) is not None
        assert cache.stats().invalidations == 2
        assert cache.clear() == 1


class TestIntermediateCacheEndToEnd:
    def _db(self) -> Database:
        db = Database()
        db.create_table("t", [Column("a", INT), Column("b", INT)])
        db.load_rows("t", _rows(20_000))
        db.create_table("u", [Column("k", INT), Column("v", INT)])
        db.load_rows("u", _rows(20_000))
        db.analyze()
        return db

    _JOIN = (
        "SELECT t.b AS g, count(u.v) AS n FROM t, u "
        "WHERE t.a = u.k GROUP BY t.b"
    )

    def test_warm_query_reuses_staged_intermediates(self):
        db = self._db()
        try:
            cold = db.execute(self._JOIN)
            assert db.intermediates.stats().entries > 0
            warm = db.execute(self._JOIN)
            assert warm == cold
            stats = db.intermediates.stats()
            assert stats.hits >= 2  # both join inputs reused
        finally:
            db.close()

    def test_dml_invalidates_only_the_mutated_table(self):
        db = self._db()
        try:
            db.execute(self._JOIN)
            entries_before = db.intermediates.stats().entries
            assert entries_before >= 2
            db.execute("INSERT INTO u VALUES (99999, 1)")
            stats = db.intermediates.stats()
            assert stats.invalidations >= 1
            assert stats.entries < entries_before  # u dropped, t kept
            assert stats.entries >= 1
            # Re-running stages u afresh and reuses t.
            hits_before = stats.hits
            db.execute(self._JOIN)
            assert db.intermediates.stats().hits > hits_before
        finally:
            db.close()

    def test_ddl_clears_everything(self):
        db = self._db()
        try:
            db.execute(self._JOIN)
            assert db.intermediates.stats().entries > 0
            db.create_table("w", [Column("x", INT)])
            assert db.intermediates.stats().entries == 0
        finally:
            db.close()

    def test_results_stay_correct_after_reuse_and_mutation(self):
        db = self._db()
        try:
            sql = "SELECT count(a) AS n FROM t WHERE b = 3"
            first = db.execute(sql)
            assert db.execute(sql) == first  # warm, possibly cached
            db.execute("INSERT INTO t VALUES (90001, 3)")
            after = db.execute(sql)
            assert after == [(first[0][0] + 1,)]
        finally:
            db.close()

    def test_parameter_vector_is_part_of_the_key(self):
        db = self._db()
        try:
            sql = (
                "SELECT t.b AS g, count(u.v) AS n FROM t, u "
                "WHERE t.a = u.k AND t.b = ? GROUP BY t.b"
            )
            three = db.execute(sql, params=(3,))
            four = db.execute(sql, params=(4,))
            assert three != four
            # Repeat with the original parameter: still the first rows.
            assert db.execute(sql, params=(3,)) == three
        finally:
            db.close()

    def test_explain_analyze_reports_reuse(self):
        db = self._db()
        try:
            db.execute(self._JOIN)
            text = db.explain_analyze(self._JOIN)
            assert "staging: reused cached intermediate" in text
            assert "serial-fallback" not in text
        finally:
            db.close()

    def test_stats_surface_in_metrics_and_insights(self):
        db = self._db()
        try:
            db.execute(self._JOIN)
            db.execute(self._JOIN)
            metrics = db.metrics_text()
            assert "repro_intermediate_cache_hits_total" in metrics
            snapshot = db.insights().snapshot()
            assert snapshot["intermediate_cache"]["hits"] >= 2
            assert "intermediate cache:" in db.insights_text()
        finally:
            db.close()
