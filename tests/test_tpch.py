"""Tests for the TPC-H substrate and the Figure 8 queries."""

import pytest

from repro.bench.tpch import Q1, Q10, Q3, QUERIES
from repro.bench.tpch.dbgen import SEGMENTS
from repro.plan.reference import evaluate as reference_evaluate
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.storage.types import date_to_ordinal


def canonical(rows):
    return sorted(
        repr([round(v, 4) if isinstance(v, float) else v for v in row])
        for row in rows
    )


class TestDbgen:
    def test_all_tables_present(self, tpch_db):
        for name in (
            "region", "nation", "supplier", "customer", "part",
            "partsupp", "orders", "lineitem",
        ):
            assert tpch_db.catalog.has_table(name)

    def test_population_ratios(self, tpch_db):
        customers = tpch_db.table("customer").num_rows
        orders = tpch_db.table("orders").num_rows
        lineitems = tpch_db.table("lineitem").num_rows
        assert orders == 10 * customers
        assert 1 * orders <= lineitems <= 7 * orders

    def test_fixed_small_tables(self, tpch_db):
        assert tpch_db.table("region").num_rows == 5
        assert tpch_db.table("nation").num_rows == 25

    def test_value_domains(self, tpch_db):
        lineitem = tpch_db.table("lineitem")
        schema = lineitem.schema
        qty = schema.index_of("l_quantity")
        disc = schema.index_of("l_discount")
        flag = schema.index_of("l_returnflag")
        ship = schema.index_of("l_shipdate")
        low = date_to_ordinal("1992-01-01")
        high = date_to_ordinal("1998-12-31")
        for row in lineitem.scan_rows():
            assert 1 <= row[qty] <= 50
            assert 0.0 <= row[disc] <= 0.10
            assert row[flag] in ("R", "A", "N")
            assert low <= row[ship] <= high

    def test_customer_segments(self, tpch_db):
        segment = tpch_db.table("customer").schema.index_of("c_mktsegment")
        seen = {row[segment] for row in tpch_db.table("customer").scan_rows()}
        assert seen <= set(SEGMENTS)

    def test_q1_predicate_selectivity(self, tpch_db):
        """Q1 keeps the vast majority of lineitem (paper: ~97–98%)."""
        lineitem = tpch_db.table("lineitem")
        ship = lineitem.schema.index_of("l_shipdate")
        cutoff = date_to_ordinal("1998-09-02")
        kept = sum(
            1 for row in lineitem.scan_rows() if row[ship] <= cutoff
        )
        assert kept / lineitem.num_rows > 0.9

    def test_determinism(self):
        from repro.bench.tpch import generate_tpch
        from repro.storage import Catalog

        first = Catalog()
        generate_tpch(first, scale_factor=0.0005, seed=1)
        second = Catalog()
        generate_tpch(second, scale_factor=0.0005, seed=1)
        assert (
            first.table("lineitem").all_rows()
            == second.table("lineitem").all_rows()
        )

    def test_statistics_gathered(self, tpch_db):
        stats = tpch_db.catalog.stats("lineitem")
        assert stats.row_count == tpch_db.table("lineitem").num_rows
        assert stats.columns["l_returnflag"].distinct <= 3


class TestTpchQueries:
    def test_q1_shape(self, tpch_db):
        rows = tpch_db.execute(Q1)
        # At most 2 return flags x 2 line statuses.
        assert 1 <= len(rows) <= 4
        # Ordered by (returnflag, linestatus).
        keys = [(row[0], row[1]) for row in rows]
        assert keys == sorted(keys)
        # Aggregate sanity: sum_disc_price <= sum_base_price.
        for row in rows:
            assert row[4] <= row[3]
            assert row[9] > 0  # count_order

    def test_q3_shape(self, tpch_db):
        rows = tpch_db.execute(Q3)
        assert len(rows) <= 10
        revenues = [row[1] for row in rows]
        assert revenues == sorted(revenues, reverse=True)

    def test_q10_shape(self, tpch_db):
        rows = tpch_db.execute(Q10)
        assert len(rows) <= 20
        revenues = [row[2] for row in rows]
        assert revenues == sorted(revenues, reverse=True)

    @pytest.mark.parametrize("name", list(QUERIES))
    def test_all_engines_agree_with_reference(self, tpch_db, name):
        sql = QUERIES[name]
        expected = canonical(
            reference_evaluate(Binder(tpch_db.catalog).bind(parse(sql)))
        )
        for kind in (
            "hique", "hique-o0", "volcano", "volcano-generic", "systemx",
            "vectorized",
        ):
            got = canonical(tpch_db.engine(kind).execute(sql))
            assert got == expected, f"{kind} disagrees on {name}"

    def test_q1_aggregates_consistent(self, tpch_db):
        rows = tpch_db.execute(Q1)
        for row in rows:
            # avg_qty == sum_qty / count_order
            assert row[6] == pytest.approx(row[2] / row[9])
            assert row[7] == pytest.approx(row[3] / row[9])

    def test_q1_plan_uses_map_aggregation(self, tpch_db):
        explanation = tpch_db.explain(Q1)
        assert "Aggregate map" in explanation

    def test_q10_plan_uses_hybrid_aggregation(self, tpch_db):
        explanation = tpch_db.explain(Q10)
        assert "Aggregate hybrid" in explanation
