"""Tests for the fractal B+-tree index and the DSM column store."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.btree import (
    BPlusTree,
    INTERNAL_FANOUT,
    LEAF_CAPACITY,
    NODES_PER_PAGE,
    NodeAllocator,
    build_index,
)
from repro.storage.dsm import from_rows, from_table
from repro.storage.schema import Column, Schema
from repro.storage.table import table_from_rows
from repro.storage.types import DOUBLE, INT, char


class TestNodeAllocator:
    def test_four_nodes_per_page(self):
        allocator = NodeAllocator()
        ids = [allocator.allocate() for _ in range(9)]
        assert [NodeAllocator.page_of(i) for i in ids] == [
            0, 0, 0, 0, 1, 1, 1, 1, 2,
        ]
        assert allocator.num_pages == 3

    def test_quarters(self):
        assert NodeAllocator.quarter_of(5) == 1
        assert NodeAllocator.quarter_of(8) == 0

    def test_geometry_from_byte_budget(self):
        # 1024-byte nodes with 8-byte keys/pointers and a 16-byte header.
        assert INTERNAL_FANOUT == 63
        assert LEAF_CAPACITY == 63
        assert NODES_PER_PAGE == 4


class TestBPlusTree:
    def test_insert_and_search(self):
        tree = BPlusTree()
        tree.insert(5, (0, 1))
        tree.insert(3, (0, 2))
        assert tree.search(5) == [(0, 1)]
        assert tree.search(99) == []

    def test_duplicates_accumulate(self):
        tree = BPlusTree()
        tree.insert(7, (0, 0))
        tree.insert(7, (1, 1))
        assert tree.search(7) == [(0, 0), (1, 1)]
        assert len(tree) == 2
        assert tree.num_keys == 1

    def test_splits_preserve_order(self):
        tree = BPlusTree(leaf_capacity=4, internal_fanout=4)
        keys = list(range(100))
        import random

        random.Random(3).shuffle(keys)
        for key in keys:
            tree.insert(key, (0, key))
        assert [k for k, _ in tree.items()] == list(range(100))
        assert tree.height > 1
        tree.check_invariants()

    def test_range_scan_bounds(self):
        tree = BPlusTree(leaf_capacity=4, internal_fanout=4)
        for key in range(50):
            tree.insert(key, (0, key))
        got = [k for k, _ in tree.range_scan(10, 20)]
        assert got == list(range(10, 21))

    def test_range_scan_open_ends(self):
        tree = BPlusTree(leaf_capacity=4, internal_fanout=4)
        for key in range(20):
            tree.insert(key, (0, key))
        assert len(list(tree.range_scan(None, 5))) == 6
        assert len(list(tree.range_scan(15, None))) == 5

    def test_fractal_page_accounting(self):
        tree = BPlusTree(leaf_capacity=4, internal_fanout=4)
        for key in range(200):
            tree.insert(key, (0, key))
        assert tree.num_pages == -(-tree.allocator.num_nodes // 4)

    def test_degenerate_geometry_rejected(self):
        import repro.errors as errors

        with pytest.raises(errors.StorageError):
            BPlusTree(leaf_capacity=1)

    @given(
        st.lists(
            st.integers(min_value=-1000, max_value=1000),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants_property(self, keys):
        tree = BPlusTree(leaf_capacity=4, internal_fanout=5)
        for slot, key in enumerate(keys):
            tree.insert(key, (0, slot))
        tree.check_invariants()
        assert len(tree) == len(keys)
        assert tree.num_keys == len(set(keys))
        # Every inserted rid is findable under its key.
        for slot, key in enumerate(keys):
            assert (0, slot) in tree.search(key)
        # Ordered iteration: keys non-decreasing, one entry per rid,
        # distinct keys match the input's.
        iterated = [k for k, _ in tree.items()]
        assert iterated == sorted(iterated)
        assert len(iterated) == len(keys)
        assert sorted(set(iterated)) == sorted(set(keys))

    def test_build_index_over_table(self):
        schema = Schema([Column("k", INT), Column("v", INT)])
        table = table_from_rows(
            "t", schema, [(i % 7, i) for i in range(700)]
        )
        tree = build_index(table, "k")
        rids = tree.search(3)
        assert len(rids) == 100
        for page_no, slot in rids:
            assert table.row_at(page_no, slot)[0] == 3


class TestDsm:
    def test_from_table_roundtrip(self):
        schema = Schema(
            [Column("a", INT), Column("b", DOUBLE), Column("c", char(6))]
        )
        rows = [(i, i * 0.5, f"s{i % 4}") for i in range(50)]
        table = table_from_rows("t", schema, rows)
        columnar = from_table(table)
        assert columnar.num_rows == 50
        assert columnar.column("a").dtype == np.int64
        assert columnar.column("b").dtype == np.float64
        assert columnar.column("c").dtype == np.dtype("S6")
        for i in (0, 13, 49):
            assert columnar.row(i) == rows[i]

    def test_from_rows(self):
        schema = Schema([Column("x", INT)])
        columnar = from_rows("t", schema, [(1,), (2,), (3,)])
        assert columnar.column("x").tolist() == [1, 2, 3]

    def test_qualified_column_access(self):
        schema = Schema([Column("a", INT)]).qualify("t")
        columnar = from_rows("t", schema, [(9,)])
        assert columnar.column("t.a").tolist() == [9]

    def test_gather_order(self):
        schema = Schema([Column("a", INT), Column("b", INT)])
        columnar = from_rows("t", schema, [(1, 2)])
        b_col, a_col = columnar.gather(["b", "a"])
        assert b_col.tolist() == [2]
        assert a_col.tolist() == [1]
