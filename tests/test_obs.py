"""Observability: metrics registry, span tracing, EXPLAIN ANALYZE.

Covers the histogram percentile math against an exact reference, span
nesting under every scheduler/backend combination, result invariance
with tracing on, Chrome trace export validity, the watchdog's
structured abandonment event, and the Prometheus text rendering.
"""

import json
import os
import random
import threading
import time

import pytest

from repro import Column, Database, INT, DOUBLE, char
from repro.errors import ExecutionError
from repro.obs import Observability, Tracer
from repro.obs.metrics import MetricsRegistry, default_latency_buckets
from repro.parallel.backend import ThreadBackend

ALL_ENGINES = (
    "hique", "hique-o0", "volcano", "volcano-generic",
    "systemx", "vectorized",
)

JOIN_AGG_SQL = (
    "SELECT t.a, sum(u.c) AS s FROM t, u WHERE t.a = u.a "
    "GROUP BY t.a ORDER BY t.a"
)


def _make_db(**kwargs):
    db = Database(**kwargs)
    db.create_table(
        "t", [Column("a", INT), Column("b", DOUBLE), Column("c", char(4))]
    )
    db.create_table("u", [Column("a", INT), Column("c", DOUBLE)])
    db.load_rows(
        "t", [(i % 40, i * 0.5, f"g{i % 3}") for i in range(4000)]
    )
    db.load_rows("u", [(i % 40, float(i)) for i in range(1000)])
    db.analyze()
    return db


# -- histograms -----------------------------------------------------------------


class TestHistogram:
    def test_buckets_are_increasing(self):
        buckets = list(default_latency_buckets())
        assert buckets == sorted(buckets)
        assert len(buckets) == len(set(buckets))

    def test_percentiles_against_reference(self):
        """Interpolated percentiles land within one bucket of exact.

        The buckets step by 2–2.5x, so the guarantee is bucket
        resolution, not tight relative error: the estimate must fall
        between the exact value's bucket bounds.
        """
        rng = random.Random(1234)
        registry = MetricsRegistry()
        hist = registry.histogram("repro_test_seconds")
        samples = [rng.lognormvariate(-7.0, 1.5) for _ in range(5000)]
        for value in samples:
            hist.observe(value)
        samples.sort()
        buckets = default_latency_buckets()
        for q in (0.5, 0.95, 0.99):
            exact = samples[min(int(q * len(samples)), len(samples) - 1)]
            estimate = hist.percentile(q)
            lower = max(
                [b for b in buckets if b <= exact], default=0.0
            )
            upper = min(
                [b for b in buckets if b > exact],
                default=float("inf"),
            )
            # One bucket of slack either side covers boundary samples.
            idx_low = max(buckets.index(lower) - 1, 0) if lower else 0
            floor = buckets[idx_low - 1] if idx_low > 0 else 0.0
            assert floor <= estimate, (q, exact, estimate)
            if upper != float("inf"):
                above = [b for b in buckets if b > upper]
                ceil = above[0] if above else float("inf")
                assert estimate <= ceil, (q, exact, estimate)

    def test_histogram_tracks_extremes_and_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_test_seconds")
        for value in (0.001, 0.002, 0.004):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(0.007)
        assert hist._min == pytest.approx(0.001)
        assert hist._max == pytest.approx(0.004)
        assert hist.percentile(0.0) >= 0.0
        assert hist.percentile(1.0) == pytest.approx(0.004)

    def test_render_text_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_test_total", statement='SELECT "x"\nFROM t\\'
        ).inc()
        text = registry.render_text()
        assert '\\"x\\"' in text
        assert "\\n" in text
        assert "\\\\" in text


# -- span nesting across scheduler/backend combinations -------------------------


class TestSpanNesting:
    @pytest.mark.parametrize(
        "executor,pipeline",
        [
            ("thread", False),
            ("thread", True),
            ("process", False),
            ("process", True),
        ],
    )
    def test_nodes_nest_under_query(self, executor, pipeline):
        db = _make_db(
            workers=2, executor=executor, pipeline=pipeline, trace=True
        )
        try:
            db.execute(JOIN_AGG_SQL)
            trace = db.last_trace()
            assert trace is not None
            root = trace.root
            query = root if root.category == "query" else root.find("query")
            assert query is not None
            execute = root.find("execute")
            assert execute is not None
            nodes = root.find_all(category="node")
            assert nodes, "no scheduler node spans recorded"
            # Every node span sits beneath the execute span.
            execute_spans = set(id(s) for s in execute.walk())
            for node in nodes:
                assert id(node) in execute_spans
            # Parallel nodes carry morsel task children with timing.
            tasks = root.find_all(category="task")
            for task in tasks:
                assert task.end is not None and task.end >= task.start
                assert task.attrs.get("queue_seconds", 0.0) >= 0.0
            if executor == "process" and tasks:
                assert any(t.pid != os.getpid() for t in tasks)
        finally:
            db.close()

    def test_serial_database_still_traces_engine_spans(self):
        db = _make_db(parallel=False, trace=True)
        try:
            db.execute(JOIN_AGG_SQL)
            trace = db.last_trace()
            execute = trace.root.find("execute")
            assert execute is not None
            assert execute.attrs.get("rows") == 40
        finally:
            db.close()


# -- result invariance ----------------------------------------------------------


class TestTracingInvariance:
    def test_rows_identical_with_tracing_on(self):
        """Tracing must observe, never perturb: every engine returns
        byte-identical rows with spans on and off."""
        plain = _make_db(workers=2, trace=False)
        traced = _make_db(workers=2, trace=True)
        try:
            for engine in ALL_ENGINES:
                base = plain.execute(JOIN_AGG_SQL, engine=engine)
                seen = traced.execute(JOIN_AGG_SQL, engine=engine)
                assert base == seen, engine
                assert repr(base) == repr(seen), engine
        finally:
            plain.close()
            traced.close()

    def test_each_engine_records_an_execute_span(self):
        db = _make_db(workers=2, trace=True)
        try:
            for engine in ALL_ENGINES:
                db.execute(JOIN_AGG_SQL, engine=engine)
                trace = db.last_trace()
                execute = trace.root.find("execute")
                assert execute is not None, engine
                assert execute.attrs.get("engine") == engine
        finally:
            db.close()


# -- exports --------------------------------------------------------------------


class TestExports:
    def test_chrome_trace_is_valid_and_ordered(self):
        db = _make_db(workers=2, trace=True)
        try:
            db.execute(JOIN_AGG_SQL)
            trace = db.last_trace()
            payload = json.loads(trace.to_chrome_trace())
            events = payload["traceEvents"]
            assert events
            stamps = [event["ts"] for event in events]
            assert stamps == sorted(stamps)
            for event in events:
                assert event["ph"] == "X"
                assert event["ts"] >= 0
                assert event["dur"] >= 0
                assert isinstance(event["pid"], int)
                assert isinstance(event["tid"], int)
        finally:
            db.close()

    def test_trace_json_roundtrips(self):
        db = _make_db(trace=True)
        try:
            db.execute("SELECT a FROM t WHERE a = 1")
            trace = db.last_trace()
            decoded = json.loads(trace.to_json())
            assert decoded["root"]["name"] == trace.root.name
            assert decoded["dropped_spans"] == 0
        finally:
            db.close()

    def test_metrics_text_covers_all_sources(self):
        db = _make_db(workers=2)
        try:
            db.execute(JOIN_AGG_SQL)
            db.execute(JOIN_AGG_SQL)
            text = db.metrics_text()
            assert "repro_query_seconds" in text
            assert "repro_plan_cache_hits_total 1" in text
            assert "repro_buffer_hits_total" in text
            assert "repro_service_queries_total 2" in text
            assert "repro_plan_cache_entry_hits" in text
        finally:
            db.close()

    def test_registries_are_per_database(self):
        one = _make_db()
        two = _make_db()
        try:
            two.service  # build it, so its collector is registered
            one.execute("SELECT a FROM t WHERE a = 1")
            assert "repro_service_queries_total 1" in one.metrics_text()
            assert "repro_service_queries_total 0" in two.metrics_text()
        finally:
            one.close()
            two.close()


# -- EXPLAIN ANALYZE ------------------------------------------------------------


class TestExplainAnalyze:
    def test_annotates_every_operator(self):
        db = _make_db(workers=2)
        try:
            text = db.explain_analyze(JOIN_AGG_SQL)
            assert "EXPLAIN ANALYZE" in text
            assert "ScanStage" in text
            assert "Aggregate" in text
            assert "rows=40" in text
            assert "execution:" in text
            assert "preparation:" in text
        finally:
            db.close()

    def test_operator_times_within_wall_clock(self):
        db = _make_db(workers=2, trace=True)
        try:
            started = time.perf_counter()
            db.explain_analyze(JOIN_AGG_SQL)
            wall = time.perf_counter() - started
            trace = db.last_trace()
            execute = trace.root.find("execute")
            assert execute.duration <= wall
            for node in trace.root.find_all(category="node"):
                assert node.duration <= execute.duration * 1.05
        finally:
            db.close()

    def test_execute_intercepts_explain_analyze(self):
        db = _make_db(workers=2)
        try:
            rows = db.execute("EXPLAIN ANALYZE " + JOIN_AGG_SQL)
            assert rows and all(len(row) == 1 for row in rows)
            assert rows[0][0].startswith("EXPLAIN ANALYZE")
        finally:
            db.close()

    def test_tracing_stays_off_after_explain_analyze(self):
        db = _make_db(workers=2, trace=False)
        try:
            db.explain_analyze(JOIN_AGG_SQL)
            assert db.trace_enabled is False
            db.execute(JOIN_AGG_SQL)
            # The EXPLAIN ANALYZE trace is still the last one recorded.
            assert db.last_trace().root.name == "explain_analyze"
        finally:
            db.close()


# -- watchdog structured events --------------------------------------------------


class TestWatchdogEvents:
    def test_abandonment_emits_metric_and_event(self):
        registry = MetricsRegistry()
        stall = threading.Event()
        backend = ThreadBackend(
            workers=2, task_timeout=0.3, registry=registry
        )
        try:
            with pytest.raises(ExecutionError, match="task_timeout"):
                backend.run_thunks(
                    [lambda: stall.wait(30)], workers=2,
                    label="join:o3",
                )
            events = registry.recent_events("watchdog_abandonment")
            assert len(events) == 1
            event = events[0]
            assert event["backend"] == "thread"
            assert event["node"] == "join:o3"
            assert event["elapsed_seconds"] >= 0.3
            assert event["wedged_tasks"] == [0]
            text = registry.render_text()
            assert "repro_watchdog_abandonments_total" in text
        finally:
            stall.set()
            backend.close()

    def test_abandonment_attaches_trace_event(self):
        obs = Observability(tracer=Tracer(enabled=True))
        stall = threading.Event()
        backend = ThreadBackend(
            workers=2, task_timeout=0.3, registry=obs.registry
        )
        try:
            with obs.tracer.span("query", "service") as span:
                with pytest.raises(ExecutionError):
                    with span.activate():
                        backend.run_thunks(
                            [lambda: stall.wait(30)], workers=2,
                            label="stage:o0",
                        )
            trace = obs.tracer.last_trace()
            marks = trace.root.find_all(category="watchdog")
            assert len(marks) == 1
            assert marks[0].attrs.get("node") == "stage:o0"
        finally:
            stall.set()
            backend.close()
