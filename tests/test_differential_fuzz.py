"""Grammar-driven randomized differential testing across every backend.

A seeded generator builds random schemas/data sets and random queries —
filters, joins, self-joins, group-by, order-by, ``?`` parameters — and
asserts that every engine agrees with the naive reference evaluator,
and that the HIQUE engine's serial, thread-parallel,
process-parallel and adaptive-placement executions (pipelined too,
under ``REPRO_PIPELINE=1``) return *identical* row sequences (the
parallel subsystem's byte-identity guarantee) at both optimization
levels.

The grammar deliberately stresses the degenerate regimes: a third
table ``v`` is empty, one-row or three rows; filters are occasionally
impossible (outside every column's value range), so global aggregates
run over empty inputs — the NULL-producing min/max/avg path — and
joins/sorts see empty sides; and self-joins (``FROM t t1, t t2``) bind
one physical table under two bindings.

This is litmus-style differential testing: the query surface is narrow
enough that any disagreement is a real bug in exactly one layer, and
the failing seed plus SQL are printed so a mismatch reproduces with a
two-line script.  The corpus is bounded (4 seeds × 50 queries) to keep
tier-1 fast; the thresholds are tuned way down (single-page morsels,
``min_rows=8``) so even these small tables genuinely exercise the
parallel scan/join/aggregate/sort paths on both task backends.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import pytest

from repro.core.emitter import OPT_O0, OPT_O2
from repro.core.engine import HiqueEngine
from repro.engines.vectorized import VectorizedEngine
from repro.engines.volcano import VolcanoEngine
from repro.parallel.stats import ParallelConfig
from repro.plan.reference import evaluate as reference_evaluate
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.storage import Catalog, Column, DOUBLE, INT, Schema, char

SEEDS = [101, 202, 303, 404]
QUERIES_PER_SEED = 50

#: Thresholds low enough that the fuzz tables' few pages still fan out.
_PARALLEL = dict(workers=3, morsel_pages=1, min_pages=1, min_rows=8)


def canonical(rows):
    return sorted(repr([_norm(v) for v in row]) for row in rows)


def _norm(value):
    # Engines legitimately differ on int-vs-float for degenerate cases
    # (e.g. sum over an empty DOUBLE input), so numerics normalize to a
    # rounded float; the serial/thread/process byte-identity assertion
    # below stays exact.
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return round(float(value), 6)
    return value


def _build_catalog(rng: random.Random) -> Catalog:
    """A random two-table schema with join-friendly key overlap."""
    catalog = Catalog()
    num_keys = rng.choice([4, 7, 12])
    num_strings = rng.choice([3, 5])
    n_t = rng.randrange(150, 400)
    n_u = rng.randrange(40, 120)
    t = catalog.create_table(
        "t",
        Schema(
            [
                Column("a", INT),
                Column("b", DOUBLE),
                Column("c", char(rng.choice([4, 8]))),
                Column("k", INT),
            ]
        ),
    )
    t.load_rows(
        (
            rng.randrange(-50, 200),
            float(rng.randrange(-4_000, 4_000)) / 8,
            f"s{rng.randrange(num_strings)}",
            rng.randrange(num_keys),
        )
        for _ in range(n_t)
    )
    u = catalog.create_table(
        "u", Schema([Column("k", INT), Column("d", INT)])
    )
    u.load_rows(
        (rng.randrange(num_keys), rng.randrange(-100, 100))
        for _ in range(n_u)
    )
    # A degenerate third table: empty, one row, or three rows — the
    # edge every operator (scans, joins, sorts, global aggregates)
    # must survive without diverging from the reference.
    v = catalog.create_table(
        "v", Schema([Column("k", INT), Column("e", INT)])
    )
    v.load_rows(
        (rng.randrange(num_keys), rng.randrange(-20, 20))
        for _ in range(rng.choice([0, 1, 3]))
    )
    catalog.analyze()
    return catalog


@dataclass(frozen=True)
class _Shape:
    """One FROM-clause shape: tables plus its per-role column pools."""

    tables: str
    joins: tuple[str, ...]
    #: Columns usable in a plain select list.
    columns: tuple[str, ...]
    #: Columns usable as GROUP BY keys.
    groupable: tuple[str, ...]
    #: Numeric columns usable as aggregate arguments.
    numeric: tuple[str, ...]
    #: ``(column, kind)`` pools for filters; kind is "int", "double"
    #: or "string".
    filterable: tuple[tuple[str, str], ...]


_SHAPES = {
    "t": _Shape(
        tables="t",
        joins=(),
        columns=("t.a", "t.b", "t.c", "t.k"),
        groupable=("t.c", "t.k"),
        numeric=("t.a", "t.b"),
        filterable=(("t.a", "int"), ("t.k", "int"), ("t.b", "double"),
                    ("t.c", "string")),
    ),
    "tu": _Shape(
        tables="t, u",
        joins=("t.k = u.k",),
        columns=("t.a", "t.b", "t.c", "t.k", "u.k", "u.d"),
        groupable=("t.c", "t.k", "u.d"),
        numeric=("t.a", "t.b", "u.d"),
        filterable=(("t.a", "int"), ("t.k", "int"), ("t.b", "double"),
                    ("t.c", "string")),
    ),
    # Self-join: one physical table under two bindings — staging,
    # codegen and the interpreters must keep the bindings apart.
    "self": _Shape(
        tables="t t1, t t2",
        joins=("t1.k = t2.k",),
        columns=("t1.a", "t1.b", "t1.c", "t2.a", "t2.c", "t2.k"),
        groupable=("t1.c", "t2.c", "t1.k"),
        numeric=("t1.a", "t1.b", "t2.a"),
        filterable=(("t1.a", "int"), ("t2.a", "int"), ("t1.b", "double"),
                    ("t2.c", "string")),
    ),
    # The degenerate table, alone and joined: empty/one-row inputs.
    "v": _Shape(
        tables="v",
        joins=(),
        columns=("v.k", "v.e"),
        groupable=("v.k",),
        numeric=("v.e", "v.k"),
        filterable=(("v.k", "int"), ("v.e", "int")),
    ),
    "tv": _Shape(
        tables="t, v",
        joins=("t.k = v.k",),
        columns=("t.a", "t.c", "t.k", "v.e"),
        groupable=("t.c", "v.e"),
        numeric=("t.a", "t.b", "v.e"),
        filterable=(("t.a", "int"), ("t.b", "double"), ("t.c", "string")),
    ),
}


class _QueryGen:
    """Random queries over the fixed t/u/v shapes, with literal twins.

    ``generate()`` returns ``(sql, literal_sql, params)``: ``sql`` may
    contain one ``?`` placeholder with ``params`` holding its value,
    while ``literal_sql`` inlines the value — the interpreting engines
    and the reference evaluator run the literal twin, the codegen
    engines run both.
    """

    def __init__(self, rng: random.Random):
        self.rng = rng

    def _pick_shape(self) -> _Shape:
        roll = self.rng.random()
        if roll < 0.30:
            return _SHAPES["t"]
        if roll < 0.60:
            return _SHAPES["tu"]
        if roll < 0.75:
            return _SHAPES["self"]
        if roll < 0.87:
            return _SHAPES["tv"]
        return _SHAPES["v"]

    def generate(self) -> tuple[str, str, tuple]:
        rng = self.rng
        shape = self._pick_shape()
        aggregate = rng.random() < 0.40
        where, literal_where, params = self._where(shape)
        if aggregate:
            select, aliases, group = self._aggregate_select(shape)
            tail = f" GROUP BY {', '.join(group)}" if group else ""
        else:
            select, aliases = self._plain_select(shape)
            tail = ""
        order, total_order = self._order_by(aliases)
        # LIMIT only under a *total* order (every output column is a
        # sort key): with a partial order, engines may legitimately
        # keep different rows among ties at the cutoff, whereas under
        # a total order tied rows are identical in every projected
        # column, so any tie choice yields the same multiset.
        limit = (
            f" LIMIT {rng.randrange(1, 25)}"
            if total_order and rng.random() < 0.35
            else ""
        )
        sql = (
            f"SELECT {select} FROM {shape.tables}{where}{tail}"
            f"{order}{limit}"
        )
        literal = (
            f"SELECT {select} FROM {shape.tables}{literal_where}{tail}"
            f"{order}{limit}"
        )
        return sql, literal, params

    # -- pieces -------------------------------------------------------------------
    def _plain_select(self, shape: _Shape) -> tuple[str, list[str]]:
        rng = self.rng
        pool = list(shape.columns)
        chosen = rng.sample(pool, rng.randrange(1, min(4, len(pool)) + 1))
        items, aliases = [], []
        for i, column in enumerate(chosen):
            alias = f"c{i}"
            items.append(f"{column} AS {alias}")
            aliases.append(alias)
        if len(shape.numeric) >= 2 and rng.random() < 0.3:
            left, right = rng.sample(list(shape.numeric), 2)
            if rng.random() < 0.5:
                right = "2"
            op = rng.choice(["+", "-", "*"])
            alias = f"x{len(items)}"
            items.append(f"{left} {op} {right} AS {alias}")
            aliases.append(alias)
        return ", ".join(items), aliases

    def _aggregate_select(
        self, shape: _Shape
    ) -> tuple[str, list[str], list[str]]:
        rng = self.rng
        group_cols = rng.sample(
            list(shape.groupable),
            rng.randrange(0, min(3, len(shape.groupable) + 1)),
        )
        items, aliases = [], []
        for i, column in enumerate(group_cols):
            alias = f"g{i}"
            items.append(f"{column} AS {alias}")
            aliases.append(alias)
        for i in range(rng.randrange(1, 4)):
            func = rng.choice(["count", "sum", "min", "max", "avg"])
            alias = f"a{i}"
            arg = "*" if func == "count" else rng.choice(shape.numeric)
            items.append(f"{func}({arg}) AS {alias}")
            aliases.append(alias)
        return ", ".join(items), aliases, group_cols

    def _filter_value(self, kind: str):
        """A comparison literal; occasionally far outside the stored
        range, so the predicate is unsatisfiable and every downstream
        operator sees an empty input (the NULL-producing aggregate
        regime)."""
        rng = self.rng
        impossible = rng.random() < 0.15
        if kind == "double":
            if impossible:
                return float(rng.randrange(40_000, 90_000)) / 8
            return float(rng.randrange(-3_000, 3_000)) / 8
        if impossible:
            return rng.choice([-1, 1]) * rng.randrange(5_000, 9_000)
        return rng.randrange(-40, 180)

    def _where(self, shape: _Shape) -> tuple[str, str, tuple]:
        rng = self.rng
        conjuncts = list(shape.joins)
        literal_conjuncts = list(shape.joins)
        params: tuple = ()
        for _ in range(rng.randrange(0, 3)):
            column, kind = rng.choice(shape.filterable)
            if kind == "string":
                value = f"s{rng.randrange(5)}"
                conjuncts.append(f"{column} = '{value}'")
                literal_conjuncts.append(f"{column} = '{value}'")
                continue
            op = rng.choice(["<", "<=", ">", ">=", "="])
            value = self._filter_value(kind)
            if not params and rng.random() < 0.30:
                conjuncts.append(f"{column} {op} ?")
                params = (value,)
            else:
                conjuncts.append(f"{column} {op} {value}")
            literal_conjuncts.append(f"{column} {op} {value}")
        if not conjuncts:
            return "", "", params
        return (
            " WHERE " + " AND ".join(conjuncts),
            " WHERE " + " AND ".join(literal_conjuncts),
            params,
        )

    def _order_by(self, aliases: list[str]) -> tuple[str, bool]:
        """Returns ``(clause, total)`` — ``total`` when every output
        column is a sort key."""
        rng = self.rng
        if not aliases or rng.random() >= 0.40:
            return "", False
        keys = rng.sample(aliases, rng.randrange(1, len(aliases) + 1))
        rendered = [
            key + (" DESC" if rng.random() < 0.4 else "") for key in keys
        ]
        return " ORDER BY " + ", ".join(rendered), len(keys) == len(aliases)


def _engines(catalog: Catalog) -> dict:
    """Every engine configuration under test, keyed by display name."""
    return {
        "hique-o2": HiqueEngine(catalog, opt_level=OPT_O2),
        "hique-o0": HiqueEngine(catalog, opt_level=OPT_O0),
        "hique-o2-thread": HiqueEngine(
            catalog,
            opt_level=OPT_O2,
            parallel=ParallelConfig(executor="thread", **_PARALLEL),
        ),
        "hique-o0-thread": HiqueEngine(
            catalog,
            opt_level=OPT_O0,
            parallel=ParallelConfig(executor="thread", **_PARALLEL),
        ),
        "hique-o2-process": HiqueEngine(
            catalog,
            opt_level=OPT_O2,
            parallel=ParallelConfig(executor="process", **_PARALLEL),
        ),
        "hique-o0-process": HiqueEngine(
            catalog,
            opt_level=OPT_O0,
            parallel=ParallelConfig(executor="process", **_PARALLEL),
        ),
        # Adaptive placement: the cost model routes each batch to the
        # thread or process backend mid-query (mixed placement).
        "hique-o2-auto": HiqueEngine(
            catalog,
            opt_level=OPT_O2,
            parallel=ParallelConfig(placement="auto", **_PARALLEL),
        ),
        "hique-o0-auto": HiqueEngine(
            catalog,
            opt_level=OPT_O0,
            parallel=ParallelConfig(placement="auto", **_PARALLEL),
        ),
        "volcano-generic": VolcanoEngine(catalog, generic=True),
        "volcano-optimized": VolcanoEngine(catalog),
        "systemx": VolcanoEngine(catalog, buffered=True),
        "vectorized": VectorizedEngine(catalog),
    }


class _DmlGen:
    """Seeded INSERT/UPDATE/DELETE statements over the fuzz schema,
    each paired with an equivalent mutation of a plain-Python mirror.

    The mirror is the oracle for the write path: after every statement
    the stored rows must equal the mirror exactly, independent of pages
    rewritten, indexes maintained or caches invalidated along the way.
    Values reuse the generator's distributions (exact binary-fraction
    doubles), so mirror comparisons stay ``==``-exact.
    """

    _OPS = {"<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b, ">=": lambda a, b: a >= b,
            "=": lambda a, b: a == b}

    def __init__(self, rng: random.Random):
        self.rng = rng

    def generate(self):
        """Returns ``(sql, params, table, apply)`` where ``apply``
        mutates ``mirror[table]`` (a list of row tuples) in place."""
        roll = self.rng.random()
        if roll < 0.40:
            return self._insert()
        if roll < 0.70:
            return self._update()
        return self._delete()

    def _insert(self):
        rng = self.rng
        if rng.random() < 0.5:
            rows = [
                (
                    rng.randrange(-50, 200),
                    float(rng.randrange(-4_000, 4_000)) / 8,
                    f"s{rng.randrange(5)}",
                    rng.randrange(12),
                )
                for _ in range(rng.randrange(1, 4))
            ]
            values = ", ".join(
                f"({a}, {b}, '{c}', {k})" for a, b, c, k in rows
            )
            sql = f"INSERT INTO t VALUES {values}"
            params = ()
            if rng.random() < 0.5 and len(rows) == 1:
                sql = "INSERT INTO t VALUES (?, ?, ?, ?)"
                params = rows[0]
            table = "t"
        else:
            rows = [
                (rng.randrange(12), rng.randrange(-100, 100))
                for _ in range(rng.randrange(1, 4))
            ]
            values = ", ".join(f"({k}, {d})" for k, d in rows)
            sql = f"INSERT INTO u VALUES {values}"
            params = ()
            table = "u"

        def apply(mirror_rows):
            mirror_rows.extend(rows)

        return sql, params, table, apply

    def _update(self):
        rng = self.rng
        if rng.random() < 0.5:
            value = float(rng.randrange(-4_000, 4_000)) / 8
            key = rng.randrange(12)
            sql = f"UPDATE t SET b = {value} WHERE k = {key}"

            def apply(mirror_rows):
                for i, row in enumerate(mirror_rows):
                    if row[3] == key:
                        mirror_rows[i] = (row[0], value, row[2], row[3])

            return sql, (), "t", apply
        delta = rng.randrange(1, 9)
        op = rng.choice(list(self._OPS))
        key = rng.randrange(12)
        compare = self._OPS[op]
        sql = f"UPDATE u SET d = d + {delta} WHERE k {op} {key}"

        def apply(mirror_rows):
            for i, row in enumerate(mirror_rows):
                if compare(row[0], key):
                    mirror_rows[i] = (row[0], row[1] + delta)

        return sql, (), "u", apply

    def _delete(self):
        rng = self.rng
        if rng.random() < 0.5:
            value = rng.randrange(-50, 200)
            sql = f"DELETE FROM t WHERE a = {value}"

            def apply(mirror_rows):
                mirror_rows[:] = [r for r in mirror_rows if r[0] != value]

            return sql, (), "t", apply
        value = rng.randrange(-100, 100)
        op = rng.choice(["<", ">"])
        bound = value - 60 if op == "<" else value + 60
        compare = self._OPS[op]
        sql = f"DELETE FROM u WHERE d {op} {bound}"

        def apply(mirror_rows):
            mirror_rows[:] = [
                r for r in mirror_rows if not compare(r[1], bound)
            ]

        return sql, (), "u", apply


def _strip(value):
    return value.rstrip() if isinstance(value, str) else value


def _table_rows(db, name):
    width = len(db.table(name).schema)
    columns = ", ".join(
        f"{name}.{c.name} AS c{i}"
        for i, c in enumerate(db.table(name).schema.columns)
    )
    rows = db.execute(f"SELECT {columns} FROM {name}")
    assert all(len(r) == width for r in rows)
    return rows


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_differential_fuzz_dml(seed: int):
    """Seeded DML interleavings against a plain-Python mirror oracle.

    Runs through the Database facade so the full write path fires:
    catalogue write gate, version bumps, fine-grained plan-cache and
    intermediate invalidation, DSM snapshot invalidation.  After every
    statement the stored rows must equal the mirror, and a sampled
    read query must agree across engines and the reference evaluator.
    """
    from repro.api import Database

    rng = random.Random(seed * 7 + 1)
    catalog = _build_catalog(rng)
    db = Database(catalog=catalog)
    try:
        mirror = {
            "t": [tuple(map(_strip, r)) for r in _table_rows(db, "t")],
            "u": [tuple(r) for r in _table_rows(db, "u")],
        }
        dml_gen = _DmlGen(rng)
        query_gen = _QueryGen(rng)
        for index in range(25):
            sql, params, table, apply = dml_gen.generate()
            where = f"seed={seed} dml#{index}: {sql} params={params}"
            affected = db.execute(sql, params=params or None)
            before = len(mirror[table])
            apply(mirror[table])
            if sql.startswith("INSERT"):
                expected_count = len(mirror[table]) - before
            elif sql.startswith("DELETE"):
                expected_count = before - len(mirror[table])
            else:
                expected_count = None  # updates may rewrite in place
            if expected_count is not None:
                assert affected == [(expected_count,)], where
            stored = [
                tuple(map(_strip, r)) for r in _table_rows(db, table)
            ]
            assert canonical(stored) == canonical(mirror[table]), where
            if index % 5 == 4:
                _, literal, _ = query_gen.generate()
                expected = canonical(
                    reference_evaluate(
                        Binder(catalog).bind(parse(literal))
                    )
                )
                for kind in (
                    "hique", "hique-o0", "volcano", "volcano-generic",
                    "systemx", "vectorized",
                ):
                    got = db.execute(literal, engine=kind)
                    assert canonical(got) == expected, (
                        f"{kind} @ seed={seed} after dml#{index}: "
                        f"{literal}"
                    )
    finally:
        db.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_differential_fuzz(seed: int):
    rng = random.Random(seed)
    catalog = _build_catalog(rng)
    engines = _engines(catalog)
    generator = _QueryGen(rng)
    hique_names = [name for name in engines if name.startswith("hique")]
    try:
        for index in range(QUERIES_PER_SEED):
            sql, literal, params = generator.generate()
            where = f"seed={seed} query#{index}: {literal}"
            expected = canonical(
                reference_evaluate(
                    Binder(catalog).bind(parse(literal))
                )
            )
            rows_by_name = {}
            for name, engine in engines.items():
                if name.startswith("hique") and params:
                    got = engine.execute(
                        sql, name=f"q{index}", params=params
                    )
                elif name.startswith("hique"):
                    got = engine.execute(literal, name=f"q{index}")
                else:
                    got = engine.execute(literal)
                rows_by_name[name] = got
                assert canonical(got) == expected, f"{name} @ {where}"
            # Byte-identity across serial/thread/process/auto, per
            # opt level: same engine, same plan, different execution
            # substrate (auto may mix substrates within one query).
            for level in ("o2", "o0"):
                base = rows_by_name[f"hique-{level}"]
                for suffix in ("thread", "process", "auto"):
                    name = f"hique-{level}-{suffix}"
                    assert rows_by_name[name] == base, f"{name} @ {where}"
            assert any(
                name in rows_by_name for name in hique_names
            )  # corpus sanity
    finally:
        for engine in engines.values():
            close = getattr(engine, "close", None)
            if callable(close):
                close()
