"""Grammar-driven randomized differential testing across every backend.

A seeded generator builds random schemas/data sets and random queries —
filters, joins, group-by, order-by, ``?`` parameters — and asserts that
every engine agrees with the naive reference evaluator, and that the
HIQUE engine's serial, thread-parallel and process-parallel executions
return *identical* row sequences (the parallel subsystem's byte-
identity guarantee) at both optimization levels.

This is litmus-style differential testing: the query surface is narrow
enough that any disagreement is a real bug in exactly one layer, and
the failing seed plus SQL are printed so a mismatch reproduces with a
two-line script.  The corpus is bounded (3 seeds × 50 queries) to keep
tier-1 fast; the thresholds are tuned way down (single-page morsels,
``min_rows=8``) so even these small tables genuinely exercise the
parallel scan/join/aggregate/sort paths on both task backends.
"""

from __future__ import annotations

import random

import pytest

from repro.core.emitter import OPT_O0, OPT_O2
from repro.core.engine import HiqueEngine
from repro.engines.vectorized import VectorizedEngine
from repro.engines.volcano import VolcanoEngine
from repro.parallel.stats import ParallelConfig
from repro.plan.reference import evaluate as reference_evaluate
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.storage import Catalog, Column, DOUBLE, INT, Schema, char

SEEDS = [101, 202, 303]
QUERIES_PER_SEED = 50

#: Thresholds low enough that the fuzz tables' few pages still fan out.
_PARALLEL = dict(workers=3, morsel_pages=1, min_pages=1, min_rows=8)


def canonical(rows):
    return sorted(repr([_norm(v) for v in row]) for row in rows)


def _norm(value):
    # Engines legitimately differ on int-vs-float for degenerate cases
    # (e.g. sum over an empty DOUBLE input), so numerics normalize to a
    # rounded float; the serial/thread/process byte-identity assertion
    # below stays exact.
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return round(float(value), 6)
    return value


def _build_catalog(rng: random.Random) -> Catalog:
    """A random two-table schema with join-friendly key overlap."""
    catalog = Catalog()
    num_keys = rng.choice([4, 7, 12])
    num_strings = rng.choice([3, 5])
    n_t = rng.randrange(150, 400)
    n_u = rng.randrange(40, 120)
    t = catalog.create_table(
        "t",
        Schema(
            [
                Column("a", INT),
                Column("b", DOUBLE),
                Column("c", char(rng.choice([4, 8]))),
                Column("k", INT),
            ]
        ),
    )
    t.load_rows(
        (
            rng.randrange(-50, 200),
            float(rng.randrange(-4_000, 4_000)) / 8,
            f"s{rng.randrange(num_strings)}",
            rng.randrange(num_keys),
        )
        for _ in range(n_t)
    )
    u = catalog.create_table(
        "u", Schema([Column("k", INT), Column("d", INT)])
    )
    u.load_rows(
        (rng.randrange(num_keys), rng.randrange(-100, 100))
        for _ in range(n_u)
    )
    catalog.analyze()
    return catalog


class _QueryGen:
    """Random queries over the fixed t/u shape, with literal twins.

    ``generate()`` returns ``(sql, literal_sql, params)``: ``sql`` may
    contain one ``?`` placeholder with ``params`` holding its value,
    while ``literal_sql`` inlines the value — the interpreting engines
    and the reference evaluator run the literal twin, the codegen
    engines run both.
    """

    NUMERIC_T = [("t.a", "a"), ("t.k", "k")]

    def __init__(self, rng: random.Random):
        self.rng = rng

    def generate(self) -> tuple[str, str, tuple]:
        rng = self.rng
        join = rng.random() < 0.45
        aggregate = rng.random() < 0.40
        where, literal_where, params = self._where(join)
        if aggregate:
            select, aliases, group = self._aggregate_select(join)
            tail = f" GROUP BY {', '.join(group)}" if group else ""
        else:
            select, aliases = self._plain_select(join)
            tail = ""
        order = self._order_by(aliases)
        limit = (
            f" LIMIT {rng.randrange(1, 25)}"
            if order and rng.random() < 0.35
            else ""
        )
        tables = "t, u" if join else "t"
        sql = f"SELECT {select} FROM {tables}{where}{tail}{order}{limit}"
        literal = (
            f"SELECT {select} FROM {tables}{literal_where}{tail}"
            f"{order}{limit}"
        )
        return sql, literal, params

    # -- pieces -------------------------------------------------------------------
    def _plain_select(self, join: bool) -> tuple[str, list[str]]:
        rng = self.rng
        pool = ["t.a", "t.b", "t.c", "t.k"]
        if join:
            pool += ["u.k", "u.d"]
        chosen = rng.sample(pool, rng.randrange(1, min(4, len(pool)) + 1))
        items, aliases = [], []
        for i, column in enumerate(chosen):
            alias = f"c{i}"
            items.append(f"{column} AS {alias}")
            aliases.append(alias)
        if rng.random() < 0.3:
            left, right = ("t.a", "t.k") if rng.random() < 0.5 else (
                "t.b", "2"
            )
            op = rng.choice(["+", "-", "*"])
            alias = f"x{len(items)}"
            items.append(f"{left} {op} {right} AS {alias}")
            aliases.append(alias)
        return ", ".join(items), aliases

    def _aggregate_select(
        self, join: bool
    ) -> tuple[str, list[str], list[str]]:
        rng = self.rng
        groupable = ["t.c", "t.k"] + (["u.d"] if join else [])
        group_cols = rng.sample(groupable, rng.randrange(0, 3))
        items, aliases = [], []
        for i, column in enumerate(group_cols):
            alias = f"g{i}"
            items.append(f"{column} AS {alias}")
            aliases.append(alias)
        numeric = ["t.a", "t.b"] + (["u.d"] if join else [])
        for i in range(rng.randrange(1, 4)):
            func = rng.choice(["count", "sum", "min", "max", "avg"])
            alias = f"a{i}"
            arg = "*" if func == "count" else rng.choice(numeric)
            items.append(f"{func}({arg}) AS {alias}")
            aliases.append(alias)
        return ", ".join(items), aliases, group_cols

    def _where(self, join: bool) -> tuple[str, str, tuple]:
        rng = self.rng
        conjuncts: list[str] = []
        literal_conjuncts: list[str] = []
        params: tuple = ()
        if join:
            conjuncts.append("t.k = u.k")
            literal_conjuncts.append("t.k = u.k")
        for _ in range(rng.randrange(0, 3)):
            kind = rng.random()
            if kind < 0.6:
                column = rng.choice(["t.a", "t.k", "t.b"])
                op = rng.choice(["<", "<=", ">", ">=", "="])
                value = (
                    rng.randrange(-40, 180)
                    if column != "t.b"
                    else float(rng.randrange(-3_000, 3_000)) / 8
                )
                if not params and rng.random() < 0.30:
                    conjuncts.append(f"{column} {op} ?")
                    params = (value,)
                else:
                    conjuncts.append(f"{column} {op} {value}")
                literal_conjuncts.append(f"{column} {op} {value}")
            else:
                value = f"s{rng.randrange(5)}"
                conjuncts.append(f"t.c = '{value}'")
                literal_conjuncts.append(f"t.c = '{value}'")
        if not conjuncts:
            return "", "", params
        return (
            " WHERE " + " AND ".join(conjuncts),
            " WHERE " + " AND ".join(literal_conjuncts),
            params,
        )

    def _order_by(self, aliases: list[str]) -> str:
        rng = self.rng
        if not aliases or rng.random() >= 0.40:
            return ""
        keys = rng.sample(aliases, rng.randrange(1, len(aliases) + 1))
        rendered = [
            key + (" DESC" if rng.random() < 0.4 else "") for key in keys
        ]
        return " ORDER BY " + ", ".join(rendered)


def _engines(catalog: Catalog) -> dict:
    """Every engine configuration under test, keyed by display name."""
    return {
        "hique-o2": HiqueEngine(catalog, opt_level=OPT_O2),
        "hique-o0": HiqueEngine(catalog, opt_level=OPT_O0),
        "hique-o2-thread": HiqueEngine(
            catalog,
            opt_level=OPT_O2,
            parallel=ParallelConfig(executor="thread", **_PARALLEL),
        ),
        "hique-o0-thread": HiqueEngine(
            catalog,
            opt_level=OPT_O0,
            parallel=ParallelConfig(executor="thread", **_PARALLEL),
        ),
        "hique-o2-process": HiqueEngine(
            catalog,
            opt_level=OPT_O2,
            parallel=ParallelConfig(executor="process", **_PARALLEL),
        ),
        "hique-o0-process": HiqueEngine(
            catalog,
            opt_level=OPT_O0,
            parallel=ParallelConfig(executor="process", **_PARALLEL),
        ),
        "volcano-generic": VolcanoEngine(catalog, generic=True),
        "volcano-optimized": VolcanoEngine(catalog),
        "systemx": VolcanoEngine(catalog, buffered=True),
        "vectorized": VectorizedEngine(catalog),
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_differential_fuzz(seed: int):
    rng = random.Random(seed)
    catalog = _build_catalog(rng)
    engines = _engines(catalog)
    generator = _QueryGen(rng)
    hique_names = [name for name in engines if name.startswith("hique")]
    try:
        for index in range(QUERIES_PER_SEED):
            sql, literal, params = generator.generate()
            where = f"seed={seed} query#{index}: {literal}"
            expected = canonical(
                reference_evaluate(
                    Binder(catalog).bind(parse(literal))
                )
            )
            rows_by_name = {}
            for name, engine in engines.items():
                if name.startswith("hique") and params:
                    got = engine.execute(
                        sql, name=f"q{index}", params=params
                    )
                elif name.startswith("hique"):
                    got = engine.execute(literal, name=f"q{index}")
                else:
                    got = engine.execute(literal)
                rows_by_name[name] = got
                assert canonical(got) == expected, f"{name} @ {where}"
            # Byte-identity across serial/thread/process, per opt level:
            # same engine, same plan, different execution substrate.
            for level in ("o2", "o0"):
                base = rows_by_name[f"hique-{level}"]
                for suffix in ("thread", "process"):
                    name = f"hique-{level}-{suffix}"
                    assert rows_by_name[name] == base, f"{name} @ {where}"
            assert any(
                name in rows_by_name for name in hique_names
            )  # corpus sanity
    finally:
        for engine in engines.values():
            close = getattr(engine, "close", None)
            if callable(close):
                close()
