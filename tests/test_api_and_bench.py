"""Tests for the public Database facade and the experiment harness."""

import pytest

from repro import Column, Database, INT, DOUBLE, ReproError, char
from repro.bench import (
    SCALES,
    fig7a,
    fig7b,
    fig7c,
    fig7d,
    get_scale,
    make_group_table,
    make_join_pair,
    make_team_tables,
    synth_schema,
)
from repro.bench.reporting import ExperimentResult, render_table, speedup
from repro.storage import Catalog


class TestDatabaseFacade:
    def _db(self):
        db = Database()
        db.create_table(
            "t", [Column("a", INT), Column("b", DOUBLE), Column("c", char(4))]
        )
        db.load_rows("t", [(i, i * 0.5, f"g{i % 2}") for i in range(50)])
        db.analyze()
        return db

    def test_execute_default_engine(self):
        db = self._db()
        rows = db.execute("SELECT c, sum(b) AS s FROM t GROUP BY c")
        assert len(rows) == 2

    def test_engine_kinds_all_work(self):
        db = self._db()
        sql = "SELECT c, count(*) AS n FROM t GROUP BY c ORDER BY c"
        results = {
            kind: db.execute(sql, engine=kind)
            for kind in (
                "hique", "hique-o0", "volcano", "volcano-generic",
                "systemx", "vectorized",
            )
        }
        baseline = results["hique"]
        assert all(r == baseline for r in results.values())

    def test_engines_are_cached(self):
        db = self._db()
        assert db.engine("hique") is db.engine("hique")

    def test_unknown_engine_raises(self):
        with pytest.raises(ReproError):
            self._db().engine("duckdb")

    def test_explain_and_source(self):
        db = self._db()
        assert "ScanStage" in db.explain("SELECT a FROM t")
        assert "def run_query" in db.generated_source("SELECT a FROM t")


class TestSynthGenerators:
    def test_synth_schema_is_72_bytes(self):
        assert synth_schema().tuple_size == 72

    def test_join_pair_match_counts(self):
        catalog = Catalog()
        outer, inner = make_join_pair(catalog, 100, 200, 10)
        inner_keys = {}
        for row in inner.scan_rows():
            inner_keys[row[0]] = inner_keys.get(row[0], 0) + 1
        assert all(count == 10 for count in inner_keys.values())
        assert len(inner_keys) == 20
        # Every outer key exists in the inner table.
        for row in outer.scan_rows():
            assert row[0] in inner_keys

    def test_join_pair_rejects_bad_multiple(self):
        with pytest.raises(ValueError):
            make_join_pair(Catalog(), 10, 10, 3)

    def test_group_table_distincts(self):
        catalog = Catalog()
        table = make_group_table(catalog, 500, 7)
        keys = {row[0] for row in table.scan_rows()}
        assert keys <= set(range(7))
        assert catalog.stats("events").columns["k"].distinct == len(keys)

    def test_team_tables_output_cardinality(self):
        catalog = Catalog()
        tables = make_team_tables(catalog, 200, 20, 3)
        assert len(tables) == 4
        # Each small table holds each key exactly once.
        for small in tables[1:]:
            keys = [row[0] for row in small.scan_rows()]
            assert sorted(keys) == list(range(20))

    def test_deterministic_for_seed(self):
        first = make_group_table(Catalog(), 50, 5, seed=9).all_rows()
        second = make_group_table(Catalog(), 50, 5, seed=9).all_rows()
        assert first == second


class TestReporting:
    def test_render_alignment(self):
        result = ExperimentResult("demo", ["Name", "Value"])
        result.add("short", 1.5)
        result.add("a-longer-label", 20000.0)
        text = result.render()
        lines = text.split("\n")
        assert lines[0] == "== demo =="
        assert len(set(len(line) for line in lines[1:3])) == 1

    def test_column_and_row_lookup(self):
        result = ExperimentResult("demo", ["Name", "Value"])
        result.add("x", 1)
        result.add("y", 2)
        assert result.column("Value") == [1, 2]
        assert result.row_by("Name", "y") == ("y", 2)

    def test_notes_rendered(self):
        result = ExperimentResult("demo", ["A"])
        result.note("scaled down")
        assert "note: scaled down" in result.render()

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(1.0, 0.0) == float("inf")

    def test_scales_registry(self):
        assert get_scale("tiny").name == "tiny"
        assert get_scale(SCALES["small"]) is SCALES["small"]


class TestExperimentShapes:
    """Fast shape checks on the tiny scale (full runs live in
    benchmarks/)."""

    def test_fig7a_columns_and_growth(self):
        result = fig7a("tiny")
        assert result.headers[0] == "Inner rows"
        assert len(result.rows) == 2
        # Inner cardinality strictly grows down the rows.
        inner = result.column("Inner rows")
        assert inner == sorted(inner)

    def test_fig7b_team_beats_binary_iterators(self):
        result = fig7b("tiny")
        for row in result.rows:
            iterators = row[1]
            team = row[3]
            assert team < iterators

    def test_fig7c_hique_beats_iterators(self):
        result = fig7c("tiny")
        for row in result.rows:
            assert row[3] < row[1]  # Merge-HIQUE < Merge-Iterators

    def test_fig7d_all_cells_positive(self):
        result = fig7d("tiny")
        for row in result.rows:
            assert all(value > 0 for value in row[1:])
