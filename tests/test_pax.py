"""Tests for the PAX page layout extension."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PageFullError, StorageError
from repro.memsim.probe import Probe
from repro.storage.pax import (
    PaxPage,
    PaxRelation,
    pax_from_table,
    trace_nsm_scan,
    trace_pax_scan,
)
from repro.storage.page import PAGE_SIZE, Page
from repro.storage.schema import Column, Schema
from repro.storage.table import table_from_rows
from repro.storage.types import DOUBLE, INT, char


@pytest.fixture()
def schema() -> Schema:
    return Schema(
        [Column("a", INT), Column("b", DOUBLE), Column("c", char(8))]
    )


class TestPaxPage:
    def test_same_capacity_as_nsm(self, schema):
        assert PaxPage(schema).capacity == Page(schema).capacity

    def test_roundtrip(self, schema):
        page = PaxPage(schema)
        rows = [(i, i * 0.5, f"s{i}") for i in range(20)]
        for row in rows:
            page.insert_row(row)
        assert list(page.rows()) == rows
        assert page.read(7) == rows[7]
        assert page.read_field(7, 2) == "s7"

    def test_minipages_do_not_overlap(self, schema):
        page = PaxPage(schema)
        boundaries = [
            (page.minipage_offset(i),
             page.minipage_offset(i) + schema[i].dtype.size * page.capacity)
            for i in range(len(schema))
        ]
        for (start_a, end_a), (start_b, _end_b) in zip(
            boundaries, boundaries[1:]
        ):
            assert end_a <= start_b
        assert boundaries[-1][1] <= PAGE_SIZE

    def test_column_values_single_sweep(self, schema):
        page = PaxPage(schema)
        for i in range(10):
            page.insert_row((i, 0.0, "x"))
        assert page.column_values(0) == list(range(10))

    def test_full_page_raises(self, schema):
        page = PaxPage(schema)
        for i in range(page.capacity):
            page.insert_row((i, 0.0, ""))
        with pytest.raises(PageFullError):
            page.insert_row((0, 0.0, ""))

    def test_arity_check(self, schema):
        with pytest.raises(StorageError):
            PaxPage(schema).insert_row((1, 2.0))

    def test_out_of_range_read(self, schema):
        with pytest.raises(StorageError):
            PaxPage(schema).read_field(0, 0)

    @given(
        st.lists(
            st.tuples(
                st.integers(-(2**31), 2**31),
                st.floats(allow_nan=False, allow_infinity=False),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_pax_equals_nsm_content(self, rows):
        schema = Schema([Column("a", INT), Column("b", DOUBLE)])
        nsm = Page(schema)
        pax = PaxPage(schema)
        for row in rows[: nsm.capacity]:
            nsm.insert_row(row)
            pax.insert_row(row)
        assert list(nsm.rows()) == list(pax.rows())


class TestPaxRelation:
    def test_conversion_preserves_rows(self, schema):
        table = table_from_rows(
            "t", schema, [(i, i * 1.5, f"v{i % 4}") for i in range(500)]
        )
        relation = pax_from_table(table)
        assert relation.num_rows == 500
        assert list(relation.scan_rows()) == table.all_rows()

    def test_scan_columns_projection(self, schema):
        table = table_from_rows(
            "t", schema, [(i, i * 1.5, "x") for i in range(300)]
        )
        relation = pax_from_table(table)
        got = list(relation.scan_columns([0, 1]))
        assert got == [(i, i * 1.5) for i in range(300)]


class TestPaxLocality:
    def test_pax_narrow_scan_touches_fewer_lines(self):
        """The PAX claim: a scan reading one narrow field of wide tuples
        misses far less than the NSM scan of the same field."""
        wide = Schema(
            [Column("k", INT)]
            + [Column(f"pad{i}", char(16)) for i in range(8)]
        )
        table = table_from_rows(
            "t", wide, [(i, *["x"] * 8) for i in range(4_000)]
        )
        relation = pax_from_table(table)

        nsm_probe = Probe()
        trace_nsm_scan(table, [0], nsm_probe)
        pax_probe = Probe()
        trace_pax_scan(relation, [0], pax_probe)

        nsm_misses = nsm_probe.hierarchy.d1.stats.misses
        pax_misses = pax_probe.hierarchy.d1.stats.misses
        # 8-byte keys in 136-byte tuples: NSM touches a new line nearly
        # every tuple; PAX packs 8 keys per line.
        assert pax_misses * 4 < nsm_misses

    def test_full_width_scan_similar_cost(self, schema):
        """Reading every field: PAX loses its advantage (same bytes)."""
        table = table_from_rows(
            "t", schema, [(i, 0.0, "x") for i in range(2_000)]
        )
        relation = pax_from_table(table)
        columns = list(range(len(schema)))
        nsm_probe = Probe()
        trace_nsm_scan(table, columns, nsm_probe)
        pax_probe = Probe()
        trace_pax_scan(relation, columns, pax_probe, file_id=998)
        ratio = (
            pax_probe.hierarchy.d1.stats.misses
            / max(nsm_probe.hierarchy.d1.stats.misses, 1)
        )
        assert 0.5 < ratio < 2.0
