"""Tests for heap files, the buffer manager, tables and the catalogue."""

import pytest

from repro.errors import BufferPoolError, CatalogError, StorageError
from repro.storage.buffer import BufferManager
from repro.storage.catalog import Catalog
from repro.storage.heapfile import DiskFile, MemoryFile
from repro.storage.page import PAGE_SIZE, Page
from repro.storage.schema import Column, Schema
from repro.storage.table import Table, table_from_rows
from repro.storage.types import DOUBLE, INT, char


@pytest.fixture()
def schema() -> Schema:
    return Schema([Column("a", INT), Column("b", DOUBLE)])


def _blank_page(schema) -> bytes:
    return bytes(Page(schema).data)


class TestMemoryFile:
    def test_append_and_read(self, schema):
        file = MemoryFile()
        page_no = file.append_page(_blank_page(schema))
        assert page_no == 0
        assert file.num_pages == 1
        assert len(file.read_page(0)) == PAGE_SIZE

    def test_read_returns_copy(self, schema):
        file = MemoryFile()
        file.append_page(_blank_page(schema))
        copy = file.read_page(0)
        copy[100] = 255
        assert file.read_page(0)[100] == 0

    def test_raw_page_is_shared(self, schema):
        file = MemoryFile()
        file.append_page(_blank_page(schema))
        raw = file.raw_page(0)
        raw[100] = 77
        assert file.raw_page(0)[100] == 77

    def test_out_of_range_raises(self, schema):
        file = MemoryFile()
        with pytest.raises(StorageError):
            file.read_page(0)

    def test_bad_page_size_rejected(self):
        file = MemoryFile()
        with pytest.raises(StorageError):
            file.append_page(b"tiny")

    def test_file_ids_are_unique(self):
        assert MemoryFile().file_id != MemoryFile().file_id


class TestDiskFile:
    def test_roundtrip(self, schema, tmp_path):
        path = str(tmp_path / "t.dat")
        file = DiskFile(path)
        file.append_page(_blank_page(schema))
        data = bytearray(_blank_page(schema))
        data[50] = 9
        file.write_page(0, bytes(data))
        assert file.read_page(0)[50] == 9
        file.close()

    def test_reopen_preserves_pages(self, schema, tmp_path):
        path = str(tmp_path / "t.dat")
        file = DiskFile(path)
        file.append_page(_blank_page(schema))
        file.append_page(_blank_page(schema))
        file.close()
        reopened = DiskFile(path, create=False)
        assert reopened.num_pages == 2
        reopened.close()

    def test_corrupt_size_rejected(self, tmp_path):
        path = tmp_path / "bad.dat"
        path.write_bytes(b"x" * 100)
        with pytest.raises(StorageError):
            DiskFile(str(path))


class TestBufferManager:
    def test_miss_then_hit(self, schema):
        buffer = BufferManager(capacity=4)
        file = MemoryFile()
        file.append_page(_blank_page(schema))
        buffer.scan_page(file, 0, schema)
        buffer.scan_page(file, 0, schema)
        assert buffer.stats.misses == 1
        assert buffer.stats.hits == 1

    def test_lru_eviction_order(self, schema):
        buffer = BufferManager(capacity=2)
        file = MemoryFile()
        for _ in range(3):
            file.append_page(_blank_page(schema))
        buffer.scan_page(file, 0, schema)
        buffer.scan_page(file, 1, schema)
        buffer.scan_page(file, 0, schema)  # page 0 becomes MRU
        buffer.scan_page(file, 2, schema)  # evicts page 1 (LRU)
        resident = {page_no for _fid, page_no in buffer.resident_keys()}
        assert resident == {0, 2}
        assert buffer.stats.evictions == 1

    def test_pinned_pages_survive_eviction(self, schema):
        buffer = BufferManager(capacity=2)
        file = MemoryFile()
        for _ in range(3):
            file.append_page(_blank_page(schema))
        buffer.get_page(file, 0, schema)  # pinned
        buffer.scan_page(file, 1, schema)
        buffer.scan_page(file, 2, schema)  # must evict page 1, not 0
        resident = {page_no for _fid, page_no in buffer.resident_keys()}
        assert 0 in resident

    def test_all_pinned_raises(self, schema):
        buffer = BufferManager(capacity=1)
        file = MemoryFile()
        file.append_page(_blank_page(schema))
        file.append_page(_blank_page(schema))
        buffer.get_page(file, 0, schema)
        with pytest.raises(BufferPoolError):
            buffer.scan_page(file, 1, schema)

    def test_unpin_unknown_raises(self, schema):
        buffer = BufferManager(capacity=2)
        file = MemoryFile()
        file.append_page(_blank_page(schema))
        with pytest.raises(BufferPoolError):
            buffer.unpin(file, 0)

    def test_dirty_writeback_on_eviction(self, schema, tmp_path):
        buffer = BufferManager(capacity=1)
        file = DiskFile(str(tmp_path / "d.dat"))
        file.append_page(_blank_page(schema))
        file.append_page(_blank_page(schema))
        page = buffer.get_page(file, 0, schema)
        page.insert_row((1, 2.0))
        buffer.unpin(file, 0, dirty=True)
        buffer.scan_page(file, 1, schema)  # evicts and writes back page 0
        assert buffer.stats.writebacks == 1
        fresh = Page(schema, file.read_page(0))
        assert fresh.read(0) == (1, 2.0)
        file.close()

    def test_shared_pins_for_block_then_releases(self, schema):
        buffer = BufferManager(capacity=1)
        file = MemoryFile()
        file.append_page(_blank_page(schema))
        file.append_page(_blank_page(schema))
        with buffer.shared(file, 0, schema):
            assert buffer.num_pinned == 1
            with pytest.raises(BufferPoolError):
                buffer.scan_page(file, 1, schema)  # frame 0 is protected
        assert buffer.num_pinned == 0
        buffer.scan_page(file, 1, schema)  # now evictable again

    def test_shared_unpins_on_exception(self, schema):
        buffer = BufferManager(capacity=2)
        file = MemoryFile()
        file.append_page(_blank_page(schema))
        with pytest.raises(RuntimeError):
            with buffer.shared(file, 0, schema):
                raise RuntimeError("reader failed")
        assert buffer.num_pinned == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(StorageError):
            BufferManager(capacity=0)

    def test_hit_ratio(self, schema):
        buffer = BufferManager(capacity=4)
        file = MemoryFile()
        file.append_page(_blank_page(schema))
        for _ in range(4):
            buffer.scan_page(file, 0, schema)
        assert buffer.stats.hit_ratio == 0.75


class TestTable:
    def test_append_and_scan(self, schema):
        table = Table("t", schema)
        for i in range(5):
            table.append((i, i * 2.0))
        assert table.num_rows == 5
        assert list(table.scan_rows()) == [(i, i * 2.0) for i in range(5)]

    def test_load_rows_spans_pages(self, schema):
        table = Table("t", schema)
        n = 1000
        table.load_rows((i, 0.0) for i in range(n))
        assert table.num_rows == n
        assert table.num_pages > 1
        assert sum(1 for _ in table.scan_rows()) == n

    def test_row_at(self, schema):
        table = table_from_rows("t", schema, [(i, 0.0) for i in range(600)])
        page = table.read_page(1)
        assert table.row_at(1, 0) == page.read(0)

    def test_truncate(self, schema):
        table = table_from_rows("t", schema, [(1, 1.0), (2, 2.0)])
        table.truncate()
        assert table.num_rows == 0
        assert list(table.scan_rows()) == []

    def test_schema_gets_qualified(self, schema):
        table = Table("orders", schema)
        assert table.schema.columns[0].table == "orders"


class TestCatalog:
    def test_create_and_lookup(self, schema):
        catalog = Catalog()
        catalog.create_table("t", schema)
        assert catalog.has_table("T")  # case-insensitive
        assert catalog.table("t").name == "t"

    def test_duplicate_rejected(self, schema):
        catalog = Catalog()
        catalog.create_table("t", schema)
        with pytest.raises(CatalogError):
            catalog.create_table("T", schema)

    def test_drop(self, schema):
        catalog = Catalog()
        catalog.create_table("t", schema)
        catalog.drop_table("t")
        assert not catalog.has_table("t")

    def test_unknown_table_raises(self):
        with pytest.raises(CatalogError):
            Catalog().table("nope")

    def test_resolve_column_qualified(self, schema):
        catalog = Catalog()
        catalog.create_table("t", schema)
        table, column = catalog.resolve_column("t.a")
        assert table.name == "t"
        assert column.name == "a"

    def test_resolve_ambiguous_raises(self, schema):
        catalog = Catalog()
        catalog.create_table("t", schema)
        catalog.create_table("u", schema)
        with pytest.raises(CatalogError):
            catalog.resolve_column("a")

    def test_analyze_collects_exact_stats(self):
        catalog = Catalog()
        schema = Schema([Column("g", INT), Column("s", char(4))])
        table = catalog.create_table("t", schema)
        table.load_rows((i % 5, f"v{i % 3}") for i in range(60))
        catalog.analyze()
        stats = catalog.stats("t")
        assert stats.row_count == 60
        assert stats.columns["g"].distinct == 5
        assert stats.columns["s"].distinct == 3
        assert stats.columns["g"].min_value == 0
        assert stats.columns["g"].max_value == 4

    def test_distinct_default_is_row_count(self):
        catalog = Catalog()
        schema = Schema([Column("g", INT)])
        table = catalog.create_table("t", schema)
        table.load_rows((i,) for i in range(10))
        stats = catalog.stats("t")  # no analyze
        assert stats.distinct_of("g", default=10) == 10
