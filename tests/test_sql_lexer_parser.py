"""Tests for the SQL lexer and parser."""

import pytest

from repro.errors import LexerError, ParseError, UnsupportedSqlError
from repro.sql.ast import (
    Aggregate,
    Arithmetic,
    ColumnRef,
    Comparison,
    Literal,
)
from repro.sql.lexer import tokenize
from repro.sql.parser import parse
from repro.storage.types import date_to_ordinal


class TestLexer:
    def test_keywords_lowercased(self):
        tokens = tokenize("SELECT a FROM t")
        assert tokens[0].kind == "keyword"
        assert tokens[0].text == "select"

    def test_identifiers_keep_case(self):
        tokens = tokenize("SELECT Foo FROM t")
        assert tokens[1].text == "Foo"

    def test_numbers(self):
        tokens = tokenize("1 23.5 0.1")
        assert [t.text for t in tokens[:-1]] == ["1", "23.5", "0.1"]

    def test_qualified_name_not_a_float(self):
        tokens = tokenize("t1.a")
        kinds = [t.kind for t in tokens[:-1]]
        assert kinds == ["ident", "op", "ident"]

    def test_string_literal(self):
        tokens = tokenize("'BUILDING'")
        assert tokens[0].kind == "string"
        assert tokens[0].text == "BUILDING"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexerError):
            tokenize("'oops")

    def test_comments_skipped(self):
        tokens = tokenize("SELECT a -- comment\nFROM t")
        assert [t.text for t in tokens[:-1]] == ["select", "a", "from", "t"]

    def test_multichar_operators(self):
        tokens = tokenize("a <= b >= c <> d != e")
        ops = [t.text for t in tokens if t.kind == "op"]
        assert ops == ["<=", ">=", "<>", "<>"]

    def test_unknown_character_raises(self):
        with pytest.raises(LexerError):
            tokenize("SELECT @")

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"


class TestParserBasics:
    def test_simple_select(self):
        query = parse("SELECT a, b FROM t")
        assert len(query.select_items) == 2
        assert query.tables[0].name == "t"

    def test_select_star(self):
        query = parse("SELECT * FROM t")
        assert isinstance(query.select_items[0].expr, ColumnRef)
        assert query.select_items[0].expr.name == "*"

    def test_alias_with_as(self):
        query = parse("SELECT a AS x FROM t")
        assert query.select_items[0].alias == "x"

    def test_alias_without_as(self):
        query = parse("SELECT a x FROM t")
        assert query.select_items[0].alias == "x"

    def test_table_alias(self):
        query = parse("SELECT a FROM orders o")
        assert query.tables[0].alias == "o"
        assert query.tables[0].binding_name == "o"

    def test_where_conjunction(self):
        query = parse("SELECT a FROM t WHERE a < 3 AND b = 'x'")
        assert len(query.where) == 2
        assert all(isinstance(c, Comparison) for c in query.where)

    def test_group_by(self):
        query = parse("SELECT a, count(*) FROM t GROUP BY a")
        assert [c.name for c in query.group_by] == ["a"]

    def test_order_by_directions(self):
        query = parse("SELECT a, b FROM t ORDER BY a DESC, b ASC, a")
        assert [o.ascending for o in query.order_by] == [False, True, True]

    def test_limit(self):
        assert parse("SELECT a FROM t LIMIT 10").limit == 10

    def test_trailing_semicolon_ok(self):
        assert parse("SELECT a FROM t;").tables[0].name == "t"

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t WHERE")

    def test_nested_select_unsupported(self):
        with pytest.raises((UnsupportedSqlError, ParseError)):
            parse("SELECT a FROM t; SELECT b FROM u")

    def test_missing_from_raises(self):
        with pytest.raises(ParseError):
            parse("SELECT a")


class TestExpressions:
    def test_precedence(self):
        query = parse("SELECT a + b * c FROM t")
        expr = query.select_items[0].expr
        assert isinstance(expr, Arithmetic)
        assert expr.op == "+"
        assert isinstance(expr.right, Arithmetic)
        assert expr.right.op == "*"

    def test_parentheses(self):
        query = parse("SELECT (a + b) * c FROM t")
        expr = query.select_items[0].expr
        assert expr.op == "*"
        assert isinstance(expr.left, Arithmetic)

    def test_unary_minus_literal(self):
        query = parse("SELECT -5 FROM t")
        assert query.select_items[0].expr == Literal(-5, "int")

    def test_unary_minus_column(self):
        query = parse("SELECT -a FROM t")
        expr = query.select_items[0].expr
        assert isinstance(expr, Arithmetic)
        assert expr.op == "-"

    def test_float_literal(self):
        assert parse("SELECT 1.5 FROM t").select_items[0].expr == Literal(
            1.5, "double"
        )

    def test_aggregates(self):
        query = parse(
            "SELECT sum(a), count(*), avg(b), min(c), max(c) FROM t"
        )
        funcs = [item.expr.func for item in query.select_items]
        assert funcs == ["sum", "count", "avg", "min", "max"]

    def test_count_star_has_no_argument(self):
        expr = parse("SELECT count(*) FROM t").select_items[0].expr
        assert isinstance(expr, Aggregate)
        assert expr.argument is None

    def test_aggregate_of_expression(self):
        expr = parse(
            "SELECT sum(price * (1 - discount)) FROM t"
        ).select_items[0].expr
        assert isinstance(expr.argument, Arithmetic)

    def test_distinct_aggregate_unsupported(self):
        with pytest.raises(UnsupportedSqlError):
            parse("SELECT count(DISTINCT a) FROM t")

    def test_qualified_column(self):
        expr = parse("SELECT t.a FROM t").select_items[0].expr
        assert expr == ColumnRef("a", "t")


class TestDateLiterals:
    def test_date_literal_folds_to_ordinal(self):
        expr = parse("SELECT a FROM t WHERE d <= DATE '1998-09-02'").where[
            0
        ].right
        assert expr == Literal(date_to_ordinal("1998-09-02"), "date")

    def test_date_minus_interval_days(self):
        expr = parse(
            "SELECT a FROM t WHERE d <= DATE '1998-12-01' - "
            "INTERVAL '90' DAY"
        ).where[0].right
        assert expr == Literal(date_to_ordinal("1998-09-02"), "date")

    def test_date_plus_interval_months(self):
        expr = parse(
            "SELECT a FROM t WHERE d < DATE '1993-10-01' + "
            "INTERVAL '3' MONTH"
        ).where[0].right
        assert expr == Literal(date_to_ordinal("1994-01-01"), "date")

    def test_interval_year(self):
        expr = parse(
            "SELECT a FROM t WHERE d < DATE '1993-10-01' + "
            "INTERVAL '1' YEAR"
        ).where[0].right
        assert expr == Literal(date_to_ordinal("1994-10-01"), "date")

    def test_month_end_clamped(self):
        expr = parse(
            "SELECT a FROM t WHERE d < DATE '1993-01-31' + "
            "INTERVAL '1' MONTH"
        ).where[0].right
        assert expr == Literal(date_to_ordinal("1993-02-28"), "date")

    def test_bad_date_raises(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t WHERE d < DATE 'not-a-date'")

    def test_interval_without_date_raises(self):
        with pytest.raises(ParseError):
            parse("SELECT a + INTERVAL '3' DAY FROM t")

    def test_interval_bad_unit_raises(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t WHERE d < DATE '1993-01-01' + "
                  "INTERVAL '3' HOUR")
