"""Workload insights: digests, slow-query log, profiles, regression.

Covers digest normalization (different literals → one digest) and
exact count consistency under a multi-threaded session-pool hammer,
DDL resets, bounded retention with memory measured, reconciliation of
digest totals against per-query results, watchdog surfacing in both
``ServiceStats`` and the digest store, profile folding, the EXPLAIN
ANALYZE polish (buffer hit-rate %, serial-fallback flags), the shell
``.insights`` / ``.slow`` commands and the perf-regression reporter.
"""

import io
import json
import os
import random
import threading
import time

import pytest

from repro import Column, Database, DOUBLE, INT, char
from repro.cli import Shell
from repro.errors import ExecutionError, WatchdogTimeout
from repro.obs import Tracer
from repro.obs.insights import (
    SLOW_MS_ENV,
    DigestStore,
    SlowQueryLog,
    WorkloadInsights,
    default_slow_threshold_seconds,
)
from repro.obs.profile import ProfileAggregator
from repro.obs.regress import (
    check_results_dir,
    main as regress_main,
    render_report,
)
from repro.obs.trace import Trace
from repro.parallel.backend import ThreadBackend

POINT_SQL = "SELECT a, b FROM t WHERE a = ?"
AGG_SQL = "SELECT a, sum(b) AS s FROM t GROUP BY a ORDER BY a"


def _make_db(rows: int = 400, **kwargs) -> Database:
    db = Database(**kwargs)
    db.create_table(
        "t", [Column("a", INT), Column("b", DOUBLE), Column("c", char(4))]
    )
    db.load_rows(
        "t", [(i % 40, i * 0.5, f"g{i % 3}") for i in range(rows)]
    )
    db.analyze()
    return db


# -- digest store (unit) ---------------------------------------------------------


class TestDigestStore:
    def test_lru_eviction_within_capacity(self):
        store = DigestStore(capacity=2)
        store.record("hique", "S1", 0.1)
        store.record("hique", "S2", 0.1)
        store.record("hique", "S1", 0.1)  # S1 now most recent
        store.record("hique", "S3", 0.1)  # evicts S2
        assert len(store) == 2
        assert store.evictions == 1
        assert store.get("hique", "S2") is None
        assert store.get("hique", "S1").calls == 2

    def test_engines_get_separate_digests(self):
        store = DigestStore()
        store.record("hique", "S", 0.1)
        store.record("volcano", "S", 0.2)
        assert len(store) == 2
        assert store.get("hique", "S").digest_id != (
            store.get("volcano", "S").digest_id
        )

    def test_aggregation_math(self):
        store = DigestStore()
        for seconds, rows in ((0.010, 5), (0.030, 7), (0.020, 1)):
            store.record(
                "hique", "S", seconds, rows=rows, cache_hit=seconds > 0.01
            )
        digest = store.get("hique", "S")
        assert digest.calls == 3
        assert digest.rows == 13
        assert digest.total_seconds == pytest.approx(0.060)
        assert digest.mean_seconds == pytest.approx(0.020)
        assert digest.min_seconds == pytest.approx(0.010)
        assert digest.max_seconds == pytest.approx(0.030)
        assert digest.cache_lookups == 3
        assert digest.cache_hits == 2
        assert 0.010 <= digest.p95_seconds <= 0.050
        payload = digest.to_dict()
        assert payload["calls"] == 3
        assert payload["statement"] == "S"

    def test_reset_clears_but_keeps_recorded_total(self):
        store = DigestStore()
        store.record("hique", "S", 0.1)
        store.reset()
        assert len(store) == 0
        assert store.resets == 1
        assert store.recorded == 1
        store.reset()  # resetting an empty store is not a reset event
        assert store.resets == 1


class TestSlowQueryLog:
    def test_threshold_filters_and_counts(self):
        log = SlowQueryLog(threshold_seconds=0.1, keep=4)
        assert not log.record(0.05, "hique", "FAST")
        assert log.record(0.2, "hique", "SLOW")
        assert log.observed == 1  # only over-threshold queries count
        assert len(log) == 1

    def test_keeps_exactly_the_slowest(self):
        rng = random.Random(7)
        values = [i / 1000.0 for i in range(1, 101)]
        rng.shuffle(values)
        log = SlowQueryLog(threshold_seconds=0.0, keep=5)
        for value in values:
            log.record(value, "hique", f"Q{value}")
        entries = log.entries()
        assert [e.seconds for e in entries] == pytest.approx(
            [0.100, 0.099, 0.098, 0.097, 0.096]
        )
        assert log.observed == 100

    def test_env_threshold(self, monkeypatch):
        monkeypatch.setenv(SLOW_MS_ENV, "250")
        assert default_slow_threshold_seconds() == pytest.approx(0.25)
        monkeypatch.setenv(SLOW_MS_ENV, "not-a-number")
        assert default_slow_threshold_seconds() == pytest.approx(0.1)
        monkeypatch.delenv(SLOW_MS_ENV)
        assert default_slow_threshold_seconds() == pytest.approx(0.1)

    def test_render_lists_slowest_first(self):
        log = SlowQueryLog(threshold_seconds=0.0, keep=4)
        log.record(0.010, "hique", "Q1", rows=3)
        log.record(0.500, "volcano", "Q2", error="boom")
        text = log.render_text()
        lines = text.splitlines()
        assert "slow-query log" in lines[0]
        assert "Q2" in lines[1] and "error=boom" in lines[1]
        assert "Q1" in lines[2]


def test_bounded_retention_10k_queries_memory_measured():
    """A 10k-query run keeps ≤N slow traces and ≤capacity digests.

    Every query here has a distinct statement shape (worst case for
    the LRU) and carries a span tree into the slow log; traced memory
    growth must stay bounded by the caps, not the query count.
    """
    import tracemalloc

    store = DigestStore(capacity=64)
    log = SlowQueryLog(threshold_seconds=0.0, keep=8)
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    for i in range(10_000):
        key = f"SELECT a FROM t WHERE col_{i} = ?"
        seconds = (i % 100) / 1000.0
        store.record("hique", key, seconds, rows=i % 7)
        trace = Trace("query")
        trace.root.child("ScanStage o1", "node").finish()
        trace.finish()
        log.record(seconds + 1e-6, "hique", key, trace=trace)
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert len(store) == 64
    assert store.evictions == 10_000 - 64
    assert store.recorded == 10_000
    assert len(log) == 8
    assert log.observed == 10_000
    retained_traces = sum(
        1 for entry in log.entries() if entry.trace is not None
    )
    assert retained_traces <= 8
    growth = after - before
    assert growth < 4 * 1024 * 1024, f"retention leaked {growth} bytes"


# -- end-to-end through the service ----------------------------------------------


class TestServiceIntegration:
    def test_different_literals_share_one_digest(self):
        db = _make_db()
        try:
            db.execute("SELECT a, b FROM t WHERE a = 1")
            db.execute("SELECT a, b FROM t WHERE a = 2")
            db.execute("SELECT a, b FROM t WHERE a = 3")
            digests = db.insights().digests.top()
            assert len(digests) == 1
            digest = digests[0]
            assert digest.calls == 3
            assert "?" in digest.key
            # warm repeats hit the plan cache; the first call missed
            assert digest.cache_lookups == 3
            assert digest.cache_hits == 2
        finally:
            db.close()

    def test_totals_reconcile_with_per_query_results(self):
        db = _make_db()
        try:
            statement = db.prepare(AGG_SQL)
            total_rows = 0
            for _ in range(5):
                rows = statement.execute()
                stats = db.last_exec_stats("hique")
                assert stats is not None and stats.rows == len(rows)
                total_rows += len(rows)
            digest = db.insights().digests.get("hique", statement.key)
            assert digest is not None
            assert digest.calls == 5
            assert digest.rows == total_rows
            assert digest.backend in ("serial", "thread", "process")
            text = db.insights_text()
            assert digest.digest_id in text
            assert f"{digest.calls:>6}" in text
        finally:
            db.close()

    def test_ddl_resets_digests(self):
        db = _make_db()
        try:
            db.execute(AGG_SQL)
            insights = db.insights()
            assert len(insights.digests) == 1
            db.create_table("z", [Column("x", INT)])
            assert len(insights.digests) == 0
            assert insights.digests.resets >= 1
            # and the store keeps working after the reset
            db.execute(AGG_SQL)
            assert len(insights.digests) == 1
        finally:
            db.close()

    def test_errors_counted_per_digest(self):
        db = _make_db()
        try:
            sql = "SELECT a FROM t WHERE c = ?"
            statement = db.prepare(sql)
            statement.execute(("g0",))
            with pytest.raises(Exception):
                statement.execute((123,))  # wrong type for a CHAR param
            digest = db.insights().digests.get("hique", statement.key)
            assert digest.calls == 2
            assert digest.errors == 1
        finally:
            db.close()

    def test_session_pool_hammer_counts_exactly_consistent(self):
        db = _make_db(max_workers=4)
        try:
            statement = db.prepare(POINT_SQL)
            total = 0
            rows_expected = 0
            for _ in range(8):
                futures = [
                    db.service.submit(POINT_SQL, (i % 40,))
                    for i in range(25)
                ]
                for future in futures:
                    rows_expected += len(future.result())
                total += len(futures)
            digest = db.insights().digests.get("hique", statement.key)
            assert digest is not None
            assert digest.calls == total
            assert digest.rows == rows_expected
            assert digest.errors == 0
            assert db.insights().digests.recorded == total
        finally:
            db.close()

    def test_insights_disabled_records_nothing(self):
        db = _make_db(insights=False)
        try:
            db.execute(AGG_SQL)
            assert len(db.insights().digests) == 0
            assert "no executions recorded" in db.insights_text()
            db.set_insights(True)
            db.execute(AGG_SQL)
            assert len(db.insights().digests) == 1
        finally:
            db.close()

    def test_slow_log_retains_trace_through_service(self):
        db = _make_db()
        try:
            db.insights().slow.threshold_seconds = 0.0
            db.set_trace(True)
            db.execute(AGG_SQL)
            db.set_trace(False)
            entries = db.insights().slow.entries()
            assert entries
            assert entries[0].trace is not None
            assert entries[0].trace.root.find("execute") is not None
        finally:
            db.close()

    def test_metrics_expose_digests_and_watchdog_counter(self):
        db = _make_db()
        try:
            db.execute(AGG_SQL)
            text = db.metrics_text()
            assert "repro_digest_store_size 1" in text
            assert "repro_digest_calls_total" in text
            assert "repro_service_watchdog_abandonments_total 0" in text
        finally:
            db.close()

    def test_close_unregisters_insights(self):
        db = _make_db()
        registry = db.obs.registry
        db.execute(AGG_SQL)
        db.close()
        assert "repro_digest_store_size" not in registry.render_text()


def test_end_to_end_retention_stays_bounded():
    """2k real queries: slow log and profile stay within their caps."""
    db = _make_db(rows=80)
    try:
        insights = db.insights()
        insights.slow.threshold_seconds = 0.0
        statement = db.prepare(POINT_SQL)
        for i in range(2000):
            statement.execute((i % 40,))
        assert insights.slow.observed == 2000
        assert len(insights.slow) <= insights.slow.keep
        assert len(insights.digests) == 1
        digest = insights.digests.get("hique", statement.key)
        assert digest.calls == 2000
    finally:
        db.close()


# -- watchdog surfacing -----------------------------------------------------------


def test_thread_backend_timeout_is_watchdog_timeout():
    stall = threading.Event()
    backend = ThreadBackend(workers=2, task_timeout=0.3)
    try:
        with pytest.raises(WatchdogTimeout, match="task_timeout"):
            backend.run_thunks([lambda: stall.wait(30)], workers=2)
    finally:
        stall.set()
        backend.close()


def test_watchdog_surfaces_in_digest_and_service_stats():
    db = _make_db()
    try:
        statement = db.prepare(POINT_SQL)
        statement.execute((1,))
        engine = db.engine("hique")
        original = engine.execute_prepared

        def wedged(*args, **kwargs):
            raise WatchdogTimeout(
                "parallel task exceeded task_timeout=0.1s (simulated)"
            )

        engine.execute_prepared = wedged
        try:
            with pytest.raises(ExecutionError, match="task_timeout"):
                statement.execute((2,))
        finally:
            engine.execute_prepared = original
        stats = db.service.stats()
        assert stats.watchdog_abandonments == 1
        digest = db.insights().digests.get("hique", statement.key)
        assert digest.calls == 2
        assert digest.errors == 1
        assert digest.watchdog_timeouts == 1
        assert "repro_service_watchdog_abandonments_total 1" in (
            db.metrics_text()
        )
    finally:
        db.close()


# -- operator profiles ------------------------------------------------------------


class TestProfileAggregator:
    def test_folds_op_ids_and_queue_wait(self):
        tracer = Tracer(enabled=True)
        aggregator = ProfileAggregator()
        tracer.add_trace_listener(aggregator.add_trace)
        try:
            with tracer.span("query", "service"):
                with tracer.span(
                    "ScanStage o1+Aggregate o2", "node", rows=10
                ) as node:
                    for index, wait in ((1, 0.5), (2, 0.25)):
                        task = node.child(
                            f"task {index}", "task", queue_seconds=wait
                        )
                        task.finish()
            with tracer.span("query", "service"):
                with tracer.span("ScanStage o7+Aggregate o9", "node"):
                    pass
        finally:
            tracer.enabled = False
        assert aggregator.traces == 2
        kinds = {t.kind: t for t in aggregator.kind_totals()}
        assert kinds["ScanStage+Aggregate"].spans == 2
        assert kinds["ScanStage+Aggregate"].tasks == 2
        assert kinds["queue-wait"].seconds == pytest.approx(0.75)
        assert kinds["task"].spans == 2
        text = aggregator.render_text()
        assert "ScanStage+Aggregate" in text
        assert "2 trace(s) folded" in text

    def test_child_fanout_is_bounded(self):
        aggregator = ProfileAggregator()
        for i in range(100):
            trace = Trace("query")
            trace.root.child(f"weird-{i}-name", "node").finish()
            trace.finish()
            aggregator.add_trace(trace)
        query_node = aggregator.root.children["query"]
        # MAX_CHILDREN distinct names plus the <other> overflow bucket
        assert len(query_node.children) <= query_node.MAX_CHILDREN + 1
        assert "<other>" in query_node.children
        folded = query_node.children["<other>"]
        assert folded.count == 100 - query_node.MAX_CHILDREN

    def test_reset(self):
        aggregator = ProfileAggregator()
        trace = Trace("query")
        trace.finish()
        aggregator.add_trace(trace)
        aggregator.reset()
        assert aggregator.traces == 0
        assert "no traces folded" in aggregator.render_text()

    def test_database_profile_fed_by_tracing(self):
        db = _make_db()
        try:
            db.explain_analyze(AGG_SQL)
            profile = db.insights().profile
            assert profile.traces >= 1
            kinds = {t.kind for t in profile.kind_totals()}
            assert "prepare:compile" in kinds or "execute" in kinds
        finally:
            db.close()


def test_trace_listener_errors_are_swallowed():
    tracer = Tracer(enabled=True)

    def bad_listener(trace):
        raise RuntimeError("listener boom")

    tracer.add_trace_listener(bad_listener)
    try:
        with tracer.span("query", "service"):
            pass
        assert tracer.listener_errors == 1
        tracer.remove_trace_listener(bad_listener)
        with tracer.span("query", "service"):
            pass
        assert tracer.listener_errors == 1
    finally:
        tracer.enabled = False


# -- EXPLAIN ANALYZE polish --------------------------------------------------------


def test_explain_analyze_hit_rate_and_serial_fallback_flags():
    db = _make_db(rows=100)  # tiny table: every operator stays serial
    try:
        text = db.explain_analyze(AGG_SQL)
        assert "% hit)" in text
        assert "serial-fallback[" in text
        assert "buffer=" in text
    finally:
        db.close()


# -- shell commands ----------------------------------------------------------------


def _make_shell() -> Shell:
    shell = Shell(stdout=io.StringIO())
    shell.db.create_table("t", [Column("a", INT), Column("b", DOUBLE)])
    shell.db.load_rows("t", [(i % 10, float(i)) for i in range(100)])
    shell.db.analyze()
    return shell


class TestShellCommands:
    def test_insights_renders_digest_table(self):
        shell = _make_shell()
        try:
            shell.handle("SELECT a, sum(b) AS s FROM t GROUP BY a")
            shell.handle(".insights")
            output = shell.stdout.getvalue()
            assert "workload insights" in output
            assert "slow-query log" in output
            shell.handle(".insights not-a-number")
            assert "usage: .insights" in shell.stdout.getvalue()
        finally:
            shell.db.close()

    def test_insights_reset(self):
        shell = _make_shell()
        try:
            shell.handle("SELECT a FROM t WHERE a = 1")
            shell.handle(".insights reset")
            assert "workload insights reset" in shell.stdout.getvalue()
            assert len(shell.db.insights().digests) == 0
        finally:
            shell.db.close()

    def test_slow_log_command(self):
        shell = _make_shell()
        try:
            shell.db.insights().slow.threshold_seconds = 0.0
            shell.handle("SELECT a FROM t WHERE a = 2")
            shell.handle(".slow")
            output = shell.stdout.getvalue()
            assert "slow-query log" in output
            shell.handle(".slow clear")
            assert "slow-query log cleared" in shell.stdout.getvalue()
            assert len(shell.db.insights().slow) == 0
        finally:
            shell.db.close()

    def test_help_mentions_new_commands(self):
        shell = _make_shell()
        try:
            shell.handle(".help")
            output = shell.stdout.getvalue()
            assert ".insights" in output
            assert ".slow" in output
        finally:
            shell.db.close()


# -- perf-regression reporter ------------------------------------------------------


def _write_bench(directory, filename: str, payload: dict) -> None:
    with open(os.path.join(directory, filename), "w") as handle:
        json.dump(payload, handle)


class TestRegressionReporter:
    def test_baseline_without_history_passes(self, tmp_path):
        _write_bench(
            tmp_path, "BENCH_pipeline.json", {"speedup": 2.0, "history": []}
        )
        checks = check_results_dir(str(tmp_path))
        pipeline = next(
            c for c in checks if c.artifact == "BENCH_pipeline.json"
        )
        assert pipeline.status == "baseline"
        assert not pipeline.regressed
        assert regress_main(
            ["--results-dir", str(tmp_path), "--fail-on-regression"]
        ) == 0

    def test_median_regression_detected_and_gates(self, tmp_path):
        _write_bench(
            tmp_path,
            "BENCH_pipeline.json",
            {
                "speedup": 2.0,
                "history": [
                    {"speedup": 4.0},
                    {"speedup": 4.2},
                    {"speedup": 3.8},
                ],
            },
        )
        checks = check_results_dir(str(tmp_path))
        pipeline = next(
            c for c in checks if c.artifact == "BENCH_pipeline.json"
        )
        assert pipeline.median == pytest.approx(4.0)
        assert pipeline.change == pytest.approx(-0.5)
        assert pipeline.regressed
        report_path = tmp_path / "report.txt"
        code = regress_main(
            [
                "--results-dir", str(tmp_path),
                "--fail-on-regression",
                "--report", str(report_path),
            ]
        )
        assert code == 1
        report = report_path.read_text()
        assert "REGRESSED" in report
        assert "verdict: REGRESSED" in report

    def test_improvement_and_small_noise_pass(self, tmp_path):
        _write_bench(
            tmp_path,
            "BENCH_multiproc.json",
            {
                "speedup": 4.5,
                "history": [{"speedup": 4.0}, {"speedup": 4.1}],
            },
        )
        _write_bench(
            tmp_path,
            "BENCH_parallel_join.json",
            {
                "speedup": 3.4,
                "history": [{"speedup": 3.9}, {"speedup": 4.0}],
            },
        )  # -14%: inside the 25% threshold
        checks = check_results_dir(str(tmp_path))
        assert not any(c.regressed for c in checks)
        assert regress_main(
            ["--results-dir", str(tmp_path), "--fail-on-regression"]
        ) == 0

    def test_overhead_metrics_are_informational_only(self, tmp_path):
        # A massively regressed overhead must not gate (info mode):
        # near-zero ratios make relative thresholds meaningless.
        _write_bench(
            tmp_path,
            "BENCH_observability.json",
            {
                "disabled_overhead": 0.02,
                "history": [
                    {"disabled_overhead": 0.001},
                    {"disabled_overhead": 0.002},
                ],
            },
        )
        checks = check_results_dir(str(tmp_path))
        obs = next(
            c
            for c in checks
            if c.artifact == "BENCH_observability.json"
            and c.metric == "disabled_overhead"
        )
        assert obs.change is not None and obs.change < -1.0
        assert not obs.regressed  # info row: never gates
        assert regress_main(
            ["--results-dir", str(tmp_path), "--fail-on-regression"]
        ) == 0

    def test_report_renders_all_known_artifacts(self, tmp_path):
        report = render_report(check_results_dir(str(tmp_path)))
        for name in (
            "parallel", "parallel_join", "multiproc", "pipeline",
        ):
            assert name in report
        assert "verdict: ok" in report


# -- insight record overhead guard (fast sanity, the bench holds the gate) ---------


def test_insights_record_path_is_cheap():
    """Sanity bound: one digest record stays in the microsecond range
    (the real <3% gate lives in benchmarks/bench_observability.py)."""
    store = DigestStore()
    started = time.perf_counter()
    count = 20_000
    for i in range(count):
        store.record(
            "hique", "S", 0.0001, rows=1, cache_hit=True, backend="serial"
        )
    per_record = (time.perf_counter() - started) / count
    assert per_record < 50e-6, f"record path too slow: {per_record:.2e}s"
