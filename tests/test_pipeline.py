"""Dependency-driven (pipelined) cross-phase scheduling.

The pipelined scheduler must change *when* operators run, never *what*
they produce: every plan shape — staged joins, restages, multiway
teams, aggregation, final sorts — returns byte-identical rows under
barrier scheduling, pipelined scheduling, and the serial entry point,
on both task backends.  These tests also pin the knob plumbing
(``Database(pipeline=)`` / ``set_parallel`` / shell ``.pipeline`` /
``REPRO_PIPELINE``), the overlap accounting in ``PhaseStats``, and
clean error propagation out of driver threads.
"""

from __future__ import annotations

import io
import random

import pytest

from repro.api import Database
from repro.cli import Shell
from repro.core.engine import HiqueEngine
from repro.errors import ReproError
from repro.parallel.stats import (
    ParallelConfig,
    default_pipeline,
)
from repro.storage import Catalog, Column, DOUBLE, INT, Schema, char

#: Thresholds low enough that small test tables genuinely fan out.
_PARALLEL = dict(workers=3, morsel_pages=1, min_pages=1, min_rows=8)


@pytest.fixture(scope="module")
def catalog() -> Catalog:
    rng = random.Random(31)
    catalog = Catalog()
    t = catalog.create_table(
        "t",
        Schema(
            [
                Column("x", INT),
                Column("y", INT),
                Column("v", DOUBLE),
                Column("c", char(6)),
            ]
        ),
    )
    t.load_rows(
        (
            rng.randrange(200),
            rng.randrange(150),
            float(rng.randrange(-2000, 2000)) / 8,
            f"s{rng.randrange(5)}",
        )
        for _ in range(1600)
    )
    u = catalog.create_table(
        "u", Schema([Column("x", INT), Column("w", INT)])
    )
    u.load_rows(
        (rng.randrange(200), rng.randrange(100)) for _ in range(500)
    )
    v = catalog.create_table(
        "v", Schema([Column("y", INT), Column("z", INT)])
    )
    v.load_rows(
        (rng.randrange(150), rng.randrange(100)) for _ in range(400)
    )
    catalog.analyze()
    return catalog


QUERIES = [
    # scan + filter + aggregation (fused partials)
    "SELECT c AS c, count(*) AS n, sum(x) AS s FROM t "
    "WHERE x < 30 GROUP BY c",
    # two-table staged join + ORDER BY
    "SELECT t.x AS x, u.w AS w FROM t, u WHERE t.x = u.x "
    "ORDER BY x DESC, w LIMIT 200",
    # three-table plan: join, restage of the intermediate, second join
    "SELECT t.x AS x, u.w AS w, v.z AS z FROM t, u, v "
    "WHERE t.x = u.x AND t.y = v.y ORDER BY x, w, z LIMIT 200",
    # aggregation over a join result
    "SELECT t.c AS c, count(*) AS n, min(u.w) AS lo FROM t, u "
    "WHERE t.x = u.x GROUP BY t.c ORDER BY c",
]


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_pipelined_rows_identical_to_barrier_and_serial(catalog, executor):
    serial = HiqueEngine(catalog)
    barrier = HiqueEngine(
        catalog,
        parallel=ParallelConfig(
            executor=executor, pipeline=False, **_PARALLEL
        ),
    )
    pipelined = HiqueEngine(
        catalog,
        parallel=ParallelConfig(
            executor=executor, pipeline=True, **_PARALLEL
        ),
    )
    try:
        for index, sql in enumerate(QUERIES):
            want = serial.execute(sql)
            assert barrier.execute(sql) == want, sql
            assert pipelined.execute(sql) == want, sql
            stats = pipelined.last_exec_stats
            assert stats is not None and stats.parallel, (sql, stats)
            if index == 0:
                # Scan fused with its aggregation: a single-node plan
                # has nothing to pipeline, and the stats say so.
                assert not stats.pipelined, (sql, stats)
            else:
                assert stats.pipelined, (sql, stats)
                assert "pipelined" in stats.describe()
    finally:
        serial.close()
        barrier.close()
        pipelined.close()


def test_pipelined_o0_plans_match_serial(catalog):
    serial = HiqueEngine(catalog, opt_level="O0")
    pipelined = HiqueEngine(
        catalog,
        opt_level="O0",
        parallel=ParallelConfig(pipeline=True, **_PARALLEL),
    )
    try:
        for sql in QUERIES:
            assert pipelined.execute(sql) == serial.execute(sql), sql
    finally:
        serial.close()
        pipelined.close()


def test_barrier_phases_report_no_overlap(catalog):
    engine = HiqueEngine(
        catalog, parallel=ParallelConfig(pipeline=False, **_PARALLEL)
    )
    try:
        engine.execute(QUERIES[2])
        stats = engine.last_exec_stats
        assert stats is not None and stats.parallel
        assert not stats.pipelined
        assert all(phase.overlap_seconds == 0.0 for phase in stats.phases)
    finally:
        engine.close()


def test_pipelined_independent_scans_overlap(catalog):
    """Two leaf scans share no dependency, so the pipelined run must
    actually overlap them — the stage phase reports overlapped time
    with high probability on a plan whose three scans dominate."""
    engine = HiqueEngine(
        catalog, parallel=ParallelConfig(pipeline=True, **_PARALLEL)
    )
    try:
        # A couple of attempts damp scheduler noise: overlap only needs
        # to be observed once to prove the phases genuinely interleave.
        for _ in range(5):
            engine.execute(QUERIES[2])
            stats = engine.last_exec_stats
            assert stats is not None and stats.parallel
            if any(phase.overlap_seconds > 0 for phase in stats.phases):
                break
        else:
            pytest.fail(f"no overlap ever observed: {stats.phases}")
    finally:
        engine.close()


def test_pipelined_task_errors_propagate_cleanly(catalog):
    engine = HiqueEngine(
        catalog, parallel=ParallelConfig(pipeline=True, **_PARALLEL)
    )
    try:
        prepared = engine.prepare(QUERIES[1], name="boom")
        join_name = next(
            name
            for name in prepared.generated.function_names.values()
            if name.startswith("join")
        )

        def boom(ctx, left, right):
            raise RuntimeError("pair task died")

        prepared.compiled.namespace[join_name + "_pair"] = boom
        with pytest.raises(RuntimeError, match="pair task died"):
            engine.execute_prepared(prepared)
        # The engine (and its pools) survive for the next statement.
        engine.clear_cache()
        assert engine.execute(QUERIES[0])
    finally:
        engine.close()


# -- knob plumbing -------------------------------------------------------------------


def test_default_pipeline_env(monkeypatch):
    monkeypatch.delenv("REPRO_PIPELINE", raising=False)
    assert default_pipeline() is False
    assert ParallelConfig().pipeline is False
    monkeypatch.setenv("REPRO_PIPELINE", "1")
    assert default_pipeline() is True
    assert ParallelConfig().pipeline is True
    monkeypatch.setenv("REPRO_PIPELINE", "off")
    assert default_pipeline() is False
    monkeypatch.setenv("REPRO_PIPELINE", "sideways")
    with pytest.raises(ValueError):
        default_pipeline()


def test_database_pipeline_knob(catalog, monkeypatch):
    monkeypatch.delenv("REPRO_PIPELINE", raising=False)
    with Database(catalog=catalog) as db:
        assert db.parallel_config.pipeline is False
        config = db.set_parallel(pipeline=True)
        assert config.pipeline is True
        # Other knobs survive a pipeline toggle and vice versa.
        config = db.set_parallel(workers=2)
        assert config.pipeline is True and config.workers == 2
        config = db.set_parallel(pipeline=False)
        assert config.pipeline is False
    with Database(catalog=catalog, pipeline=True) as db:
        assert db.parallel_config.pipeline is True
        rows = db.execute(
            "SELECT x AS x, count(*) AS n FROM t GROUP BY x ORDER BY x"
        )
        assert rows
    monkeypatch.setenv("REPRO_PIPELINE", "1")
    with Database(catalog=catalog) as db:
        assert db.parallel_config.pipeline is True
    with pytest.raises(ReproError):
        Database(catalog=catalog, workers=0, pipeline=True)


def test_shell_pipeline_command(monkeypatch):
    monkeypatch.delenv("REPRO_PIPELINE", raising=False)
    out = io.StringIO()
    shell = Shell(stdout=out)
    try:
        shell.handle(".pipeline")
        shell.handle(".pipeline on")
        assert shell.db.parallel_config.pipeline is True
        shell.handle(".parallel")
        shell.handle(".pipeline off")
        assert shell.db.parallel_config.pipeline is False
        shell.handle(".pipeline sideways")
        text = out.getvalue()
        assert "barrier" in text
        assert "pipelined scheduling on" in text
        assert "usage: .pipeline" in text
    finally:
        shell.db.close()
