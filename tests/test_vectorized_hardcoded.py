"""Tests for the vectorized-engine primitives and the hard-coded plans."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engines.hardcoded import (
    hybrid_agg_hardcoded,
    hybrid_join_hardcoded,
    map_agg_hardcoded,
    merge_join_hardcoded,
)
from repro.engines.vectorized.engine import (
    _descending_argsort,
    _equi_join_indexes,
)
from repro.memsim.probe import Probe
from repro.storage import Catalog, Column, INT, Schema


class TestEquiJoinIndexes:
    def test_basic_matches(self):
        left = np.array([1, 2, 3])
        right = np.array([2, 2, 4])
        left_index, right_index = _equi_join_indexes(left, right)
        pairs = sorted(zip(left_index.tolist(), right_index.tolist()))
        assert pairs == [(1, 0), (1, 1)]

    def test_no_matches(self):
        left_index, right_index = _equi_join_indexes(
            np.array([1]), np.array([2])
        )
        assert len(left_index) == 0
        assert len(right_index) == 0

    def test_empty_inputs(self):
        left_index, _ = _equi_join_indexes(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        )
        assert len(left_index) == 0

    @given(
        st.lists(st.integers(0, 8), max_size=50),
        st.lists(st.integers(0, 8), max_size=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_nested_loops_property(self, lkeys, rkeys):
        left = np.array(lkeys, dtype=np.int64)
        right = np.array(rkeys, dtype=np.int64)
        left_index, right_index = _equi_join_indexes(left, right)
        got = sorted(zip(left_index.tolist(), right_index.tolist()))
        expected = sorted(
            (i, j)
            for i in range(len(lkeys))
            for j in range(len(rkeys))
            if lkeys[i] == rkeys[j]
        )
        assert got == expected

    def test_descending_argsort_numeric(self):
        keys = np.array([3, 1, 2])
        assert keys[_descending_argsort(keys)].tolist() == [3, 2, 1]

    def test_descending_argsort_bytes(self):
        keys = np.array([b"a", b"c", b"b"], dtype="S1")
        assert keys[_descending_argsort(keys)].tolist() == [
            b"c", b"b", b"a",
        ]


def _join_tables():
    catalog = Catalog()
    schema = Schema([Column("k", INT), Column("v", INT), Column("w", INT)])
    left = catalog.create_table("l", schema)
    left.load_rows((i % 5, i, i * 2) for i in range(60))
    right = catalog.create_table("r", schema)
    right.load_rows((i % 5, i * 10, i) for i in range(40))
    return left, right


def _expected_join(left, right, lk, rk, lfields, rfields):
    lrows = [tuple(row[i] for i in lfields) for row in left.scan_rows()]
    rrows = [tuple(row[i] for i in rfields) for row in right.scan_rows()]
    return sorted(
        repr(a + b) for a in lrows for b in rrows if a[lk] == b[rk]
    )


class TestHardcodedJoins:
    @pytest.mark.parametrize("style", ["generic", "optimized"])
    def test_merge_join_correct(self, style):
        left, right = _join_tables()
        rows = merge_join_hardcoded(
            left, right, 0, 0, (0, 1), (0, 2), style=style, collect=True
        )
        assert sorted(map(repr, rows)) == _expected_join(
            left, right, 0, 0, (0, 1), (0, 2)
        )

    @pytest.mark.parametrize("style", ["generic", "optimized"])
    def test_hybrid_join_correct(self, style):
        left, right = _join_tables()
        rows = hybrid_join_hardcoded(
            left, right, 0, 0, (0, 1), (0, 2), num_partitions=4,
            style=style, collect=True,
        )
        assert sorted(map(repr, rows)) == _expected_join(
            left, right, 0, 0, (0, 1), (0, 2)
        )

    def test_count_mode_matches_collect_mode(self):
        left, right = _join_tables()
        count = merge_join_hardcoded(
            left, right, 0, 0, (0, 1), (0, 2), collect=False
        )
        rows = merge_join_hardcoded(
            left, right, 0, 0, (0, 1), (0, 2), collect=True
        )
        assert count == len(rows)

    def test_deopt_preserves_results(self):
        left, right = _join_tables()
        plain = merge_join_hardcoded(
            left, right, 0, 0, (0, 1), (0, 2), collect=True
        )
        deopt = merge_join_hardcoded(
            left, right, 0, 0, (0, 1), (0, 2), collect=True, deopt=True
        )
        assert plain == deopt

    def test_generic_counts_more_calls(self):
        left, right = _join_tables()
        generic_probe = Probe()
        merge_join_hardcoded(
            left, right, 0, 0, (0, 1), (0, 2), style="generic",
            probe=generic_probe,
        )
        optimized_probe = Probe()
        merge_join_hardcoded(
            left, right, 0, 0, (0, 1), (0, 2), style="optimized",
            probe=optimized_probe,
        )
        assert (
            generic_probe.function_calls > optimized_probe.function_calls
        )


class TestHardcodedAggregation:
    def _table(self, groups=5):
        catalog = Catalog()
        schema = Schema(
            [Column("g", INT), Column("x", INT), Column("y", INT)]
        )
        table = catalog.create_table("t", schema)
        table.load_rows((i % groups, i, i * 2) for i in range(100))
        return table

    def _expected(self, groups=5):
        out = {}
        for i in range(100):
            entry = out.setdefault(i % groups, [0.0, 0.0])
            entry[0] += i
            entry[1] += i * 2
        return {k: tuple(v) for k, v in out.items()}

    @pytest.mark.parametrize("style", ["generic", "optimized"])
    def test_hybrid_agg(self, style):
        table = self._table()
        rows = hybrid_agg_hardcoded(
            table, 0, (1, 2), (0, 1, 2), num_partitions=4, style=style
        )
        assert {row[0]: (row[1], row[2]) for row in rows} == self._expected()

    @pytest.mark.parametrize("style", ["generic", "optimized"])
    def test_map_agg(self, style):
        table = self._table()
        rows = map_agg_hardcoded(table, 0, (1, 2), (0, 1, 2), style=style)
        assert {row[0]: (row[1], row[2]) for row in rows} == self._expected()

    def test_map_agg_first_seen_order(self):
        table = self._table(groups=3)
        rows = map_agg_hardcoded(table, 0, (1, 2), (0, 1, 2))
        assert [row[0] for row in rows] == [0, 1, 2]

    def test_probe_counts_accumulate(self):
        table = self._table()
        probe = Probe()
        map_agg_hardcoded(table, 0, (1, 2), (0, 1, 2), probe=probe)
        assert probe.instructions > 0
        assert probe.data_accesses >= 100  # at least one load per row
