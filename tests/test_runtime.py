"""Tests for the generated-code runtime helpers (repro.core.runtime)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import runtime


def reference_join(left, right, lk, rk):
    return [
        lrow + rrow
        for lrow in left
        for rrow in right
        if lrow[lk] == rrow[rk]
    ]


def sort_canonical(rows):
    return sorted(map(repr, rows))


class TestSorting:
    def test_sort_rows_single_key(self):
        rows = [(3, "c"), (1, "a"), (2, "b")]
        assert runtime.sort_rows(rows, (0,)) == [
            (1, "a"), (2, "b"), (3, "c"),
        ]

    def test_sort_rows_multi_key(self):
        rows = [(1, 2), (0, 9), (1, 1)]
        assert runtime.sort_rows(rows, (0, 1)) == [(0, 9), (1, 1), (1, 2)]

    def test_sort_rows_mixed_directions(self):
        rows = [(1, "a"), (2, "a"), (1, "b")]
        out = runtime.sort_rows_mixed(rows, [(1, True), (0, False)])
        assert out == [(2, "a"), (1, "a"), (1, "b")]


class TestPartitioning:
    def test_coarse_partition_covers_all_rows(self):
        rows = [(i, i * 2) for i in range(100)]
        parts = runtime.partition_rows(rows, 0, 8)
        assert sum(len(p) for p in parts) == 100
        for part in parts:
            for row in part:
                assert hash(row[0]) & 7 == parts.index(part)

    def test_coarse_partition_non_pow2(self):
        rows = [(i,) for i in range(50)]
        parts = runtime.partition_rows(rows, 0, 3)
        assert sum(len(p) for p in parts) == 50

    def test_fine_partition_groups_by_value(self):
        rows = [(i % 4, i) for i in range(40)]
        parts = runtime.fine_partition_rows(rows, 0)
        assert set(parts) == {0, 1, 2, 3}
        assert all(
            all(row[0] == key for row in bucket)
            for key, bucket in parts.items()
        )

    def test_partition_sort(self):
        rows = [(i % 8, 100 - i) for i in range(64)]
        parts = runtime.partition_sort_rows(rows, 0, (0, 1), 4)
        for part in parts:
            assert part == sorted(part)


class TestJoins:
    @given(
        st.lists(st.integers(0, 10), max_size=60),
        st.lists(st.integers(0, 10), max_size=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_join_matches_nested_loops(self, lkeys, rkeys):
        left = sorted((k, i) for i, k in enumerate(lkeys))
        right = sorted((k, i * 10) for i, k in enumerate(rkeys))
        got = runtime.merge_join(left, right, 0, 0)
        assert sort_canonical(got) == sort_canonical(
            reference_join(left, right, 0, 0)
        )

    def test_merge_join_backtracks_duplicates(self):
        left = [(1, "l0"), (1, "l1")]
        right = [(1, "r0"), (1, "r1"), (1, "r2")]
        assert len(runtime.merge_join(left, right, 0, 0)) == 6

    def test_hybrid_join_equivalent(self):
        rng = random.Random(1)
        left = [(rng.randrange(20), i) for i in range(200)]
        right = [(rng.randrange(20), i) for i in range(150)]
        left_parts = runtime.partition_rows(left, 0, 8)
        right_parts = runtime.partition_rows(right, 0, 8)
        got = runtime.hybrid_join(left_parts, right_parts, 0, 0,
                                  presorted=False)
        assert sort_canonical(got) == sort_canonical(
            reference_join(left, right, 0, 0)
        )

    def test_fine_hash_join_equivalent(self):
        rng = random.Random(2)
        left = [(rng.randrange(10), i) for i in range(100)]
        right = [(rng.randrange(10), i) for i in range(80)]
        got = runtime.fine_hash_join(
            runtime.fine_partition_rows(left, 0),
            runtime.fine_partition_rows(right, 0),
        )
        assert sort_canonical(got) == sort_canonical(
            reference_join(left, right, 0, 0)
        )

    def test_nested_loops_is_cartesian(self):
        left = [(1,), (2,)]
        right = [(10,), (20,), (30,)]
        assert len(runtime.nested_loops_join(left, right)) == 6

    @given(
        st.lists(st.integers(0, 5), min_size=0, max_size=30),
        st.lists(st.integers(0, 5), min_size=0, max_size=30),
        st.lists(st.integers(0, 5), min_size=0, max_size=30),
    )
    @settings(max_examples=30, deadline=None)
    def test_multiway_merge_matches_pairwise(self, k1, k2, k3):
        inputs = [
            sorted((k, f"a{i}") for i, k in enumerate(k1)),
            sorted((k, f"b{i}") for i, k in enumerate(k2)),
            sorted((k, f"c{i}") for i, k in enumerate(k3)),
        ]
        got = runtime.multiway_merge_join(inputs, (0, 0, 0))
        step = runtime.merge_join(inputs[0], inputs[1], 0, 0)
        expected = runtime.merge_join(step, inputs[2], 0, 0)
        assert sort_canonical(got) == sort_canonical(expected)


class TestAggregation:
    def _helpers(self):
        def init():
            return [0, 0]

        def update(state, row):
            state[0] += row[1]
            state[1] += 1

        def finalize(key, state):
            return key + (state[0], state[1])

        return init, update, finalize

    def test_sorted_group_scan(self):
        init, update, finalize = self._helpers()
        rows = sorted((i % 3, i) for i in range(30))
        out = runtime.sorted_group_scan(rows, (0,), init, update, finalize)
        assert len(out) == 3
        total = sum(row[1] for row in out)
        assert total == sum(range(30))

    def test_sorted_group_scan_empty(self):
        init, update, finalize = self._helpers()
        assert runtime.sorted_group_scan([], (0,), init, update, finalize) \
            == []

    def test_hash_group_aggregate_first_seen_order(self):
        init, update, finalize = self._helpers()
        rows = [(2, 1), (1, 1), (2, 1), (3, 1)]
        out = runtime.hash_group_aggregate(
            rows, lambda r: (r[0],), init, update, finalize
        )
        assert [row[0] for row in out] == [2, 1, 3]

    def test_limit_rows(self):
        assert runtime.limit_rows([1, 2, 3], 2) == [1, 2]
        assert runtime.limit_rows([1], 5) == [1]

    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 100)),
                    max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_group_scan_matches_dict_reference(self, rows):
        init, update, finalize = self._helpers()
        sorted_rows = sorted(rows)
        got = runtime.sorted_group_scan(
            sorted_rows, (0,), init, update, finalize
        )
        expected = {}
        for key, value in rows:
            entry = expected.setdefault(key, [0, 0])
            entry[0] += value
            entry[1] += 1
        assert {
            row[0]: (row[1], row[2]) for row in got
        } == {k: tuple(v) for k, v in expected.items()}
