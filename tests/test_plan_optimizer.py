"""Tests for layouts, expression compilation, and the optimizer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlanError, UnsupportedSqlError
from repro.plan.descriptors import (
    AGG_HYBRID,
    AGG_MAP,
    AGG_SORT,
    Aggregate,
    JOIN_HYBRID,
    JOIN_MERGE,
    Join,
    Limit,
    MultiwayJoin,
    PREP_PARTITION,
    PREP_PARTITION_SORT,
    PREP_SORT,
    Project,
    ScanStage,
    Sort,
)
from repro.plan.expressions import (
    conjunction_source,
    expr_source,
    make_conjunction,
    make_evaluator,
)
from repro.plan.layout import ColumnLayout, ColumnSlot
from repro.plan.optimizer import Optimizer, PlannerConfig
from repro.sql.binder import Binder
from repro.sql.bound import (
    BoundArithmetic,
    BoundColumn,
    BoundComparison,
    BoundLiteral,
)
from repro.sql.parser import parse
from repro.storage.types import DOUBLE, INT


def plan_for(catalog, sql, **config_kwargs):
    bound = Binder(catalog).bind(parse(sql))
    return Optimizer(catalog, PlannerConfig(**config_kwargs)).plan(bound)


class TestLayout:
    def test_positions(self):
        layout = ColumnLayout(
            [ColumnSlot("t", "a", INT), ColumnSlot("t", "b", DOUBLE)]
        )
        assert layout.position(BoundColumn("t", "b", DOUBLE)) == 1

    def test_missing_column_raises(self):
        layout = ColumnLayout([ColumnSlot("t", "a", INT)])
        with pytest.raises(PlanError):
            layout.position(BoundColumn("t", "z", INT))

    def test_duplicate_slot_rejected(self):
        with pytest.raises(PlanError):
            ColumnLayout(
                [ColumnSlot("t", "a", INT), ColumnSlot("t", "a", INT)]
            )

    def test_concat(self):
        left = ColumnLayout([ColumnSlot("l", "a", INT)])
        right = ColumnLayout([ColumnSlot("r", "b", INT)])
        combined = left.concat(right)
        assert combined.position(BoundColumn("r", "b", INT)) == 1


class TestExpressionCompilation:
    def _layout(self):
        return ColumnLayout(
            [ColumnSlot("t", "a", INT), ColumnSlot("t", "b", DOUBLE)]
        )

    def test_evaluator_matches_source(self):
        layout = self._layout()
        expr = BoundArithmetic(
            "*",
            BoundColumn("t", "a", INT),
            BoundArithmetic(
                "-",
                BoundLiteral(1, INT),
                BoundColumn("t", "b", DOUBLE),
                DOUBLE,
            ),
            DOUBLE,
        )
        evaluator = make_evaluator(expr, layout)
        source = expr_source(expr, layout, "row")
        row = (4, 0.25)
        assert evaluator(row) == eval(source)  # noqa: S307 - test only

    @given(
        st.integers(-100, 100),
        st.floats(-100, 100, allow_nan=False),
        st.sampled_from(["+", "-", "*"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_closure_source_equivalence_property(self, a, b, op):
        layout = self._layout()
        expr = BoundArithmetic(
            op,
            BoundColumn("t", "a", INT),
            BoundColumn("t", "b", DOUBLE),
            DOUBLE,
        )
        row = (a, b)
        evaluator = make_evaluator(expr, layout)
        source = expr_source(expr, layout, "row")
        assert evaluator(row) == eval(source)  # noqa: S307 - test only

    def test_conjunction_closure_and_source(self):
        layout = self._layout()
        comparisons = [
            BoundComparison(
                "<", BoundColumn("t", "a", INT), BoundLiteral(10, INT)
            ),
            BoundComparison(
                ">=", BoundColumn("t", "b", DOUBLE), BoundLiteral(0.5, DOUBLE)
            ),
        ]
        predicate = make_conjunction(comparisons, layout)
        source = conjunction_source(comparisons, layout, "row")
        for row in [(5, 1.0), (5, 0.1), (20, 1.0)]:
            assert predicate(row) == eval(source)  # noqa: S307 - test only

    def test_empty_conjunction_is_true(self):
        layout = self._layout()
        assert make_conjunction([], layout)((1, 2.0)) is True
        assert conjunction_source([], layout, "row") == "True"


class TestScanPlanning:
    def test_single_table_identity_projection_skipped(self, simple_catalog):
        plan = plan_for(simple_catalog, "SELECT a, b FROM t")
        kinds = [type(op).__name__ for op in plan.operators]
        assert kinds == ["ScanStage"]

    def test_projection_pushdown(self, simple_catalog):
        plan = plan_for(simple_catalog, "SELECT a FROM t WHERE b < 10")
        scan = plan.operators[0]
        assert isinstance(scan, ScanStage)
        # b is filter-only: not staged.
        assert [s.column for s in scan.output_layout.slots] == ["a"]
        assert len(scan.filters) == 1

    def test_count_star_stages_one_column(self, simple_catalog):
        plan = plan_for(simple_catalog, "SELECT count(*) AS n FROM t")
        scan = plan.operators[0]
        assert len(scan.output_layout) == 1

    def test_expression_projection_emitted(self, simple_catalog):
        plan = plan_for(simple_catalog, "SELECT a + 1 AS x FROM t")
        assert isinstance(plan.root, Project)


class TestJoinPlanning:
    def test_small_join_uses_merge(self, simple_catalog):
        plan = plan_for(simple_catalog, "SELECT t.a, u.d FROM t, u "
                        "WHERE t.k = u.k")
        joins = [op for op in plan.operators if isinstance(op, Join)]
        assert joins[0].algorithm == JOIN_MERGE
        scans = [op for op in plan.operators if isinstance(op, ScanStage)]
        assert all(s.prep.kind == PREP_SORT for s in scans)

    def test_large_join_uses_hybrid(self, simple_catalog):
        plan = plan_for(
            simple_catalog,
            "SELECT t.a, u.d FROM t, u WHERE t.k = u.k",
            l2_bytes=1024,  # pretend the cache is tiny
        )
        joins = [op for op in plan.operators if isinstance(op, Join)]
        assert joins[0].algorithm == JOIN_HYBRID
        scans = [op for op in plan.operators if isinstance(op, ScanStage)]
        assert all(s.prep.kind == PREP_PARTITION for s in scans)

    def test_merge_join_output_order_propagates(self, simple_catalog):
        plan = plan_for(
            simple_catalog,
            "SELECT t.k, u.d FROM t, u WHERE t.k = u.k",
            force_join="merge",
        )
        join = next(op for op in plan.operators if isinstance(op, Join))
        assert join.output_order == (join.left_key,)

    def test_disconnected_join_graph_rejected(self):
        from repro.storage import Catalog, Column, INT, Schema

        catalog = Catalog()
        for name in ("r", "s", "w"):
            table = catalog.create_table(
                name, Schema([Column("k", INT), Column("v", INT)])
            )
            table.load_rows((i % 5, i) for i in range(20))
        catalog.analyze()
        # r–s are joined; w has join predicates to neither.
        with pytest.raises(UnsupportedSqlError):
            plan_for(
                catalog,
                "SELECT r.v, w.v FROM r, s, w WHERE r.k = s.k",
            )

    def test_pure_cartesian_uses_nested(self, simple_catalog):
        plan = plan_for(simple_catalog, "SELECT t.a, u.d FROM t, u")
        join = next(op for op in plan.operators if isinstance(op, Join))
        assert join.algorithm == "nested"

    def test_plan_is_topologically_valid(self, simple_catalog):
        plan = plan_for(simple_catalog, "SELECT t.a, u.d FROM t, u "
                        "WHERE t.k = u.k")
        plan.validate()


class TestJoinTeams:
    def _team_catalog(self):
        from repro.storage import Catalog, Column, INT, Schema

        catalog = Catalog()
        for name in ("r", "s", "w"):
            table = catalog.create_table(
                name, Schema([Column("k", INT), Column("v", INT)])
            )
            table.load_rows((i % 5, i) for i in range(50))
        catalog.analyze()
        return catalog

    def test_team_detected(self):
        catalog = self._team_catalog()
        plan = plan_for(
            catalog,
            "SELECT r.v, s.v, w.v FROM r, s, w WHERE r.k = s.k "
            "AND s.k = w.k",
        )
        teams = [
            op for op in plan.operators if isinstance(op, MultiwayJoin)
        ]
        assert len(teams) == 1
        assert len(teams[0].input_ops) == 3

    def test_team_disabled_by_config(self):
        catalog = self._team_catalog()
        plan = plan_for(
            catalog,
            "SELECT r.v, s.v, w.v FROM r, s, w WHERE r.k = s.k "
            "AND s.k = w.k",
            enable_join_teams=False,
        )
        assert not any(
            isinstance(op, MultiwayJoin) for op in plan.operators
        )
        assert sum(isinstance(op, Join) for op in plan.operators) == 2

    def test_two_key_classes_not_a_team(self, simple_catalog):
        # t–u join on k plus a second unrelated equivalence class would
        # be needed; with two tables there is never a team.
        plan = plan_for(
            simple_catalog, "SELECT t.a, u.d FROM t, u WHERE t.k = u.k"
        )
        assert not any(
            isinstance(op, MultiwayJoin) for op in plan.operators
        )


class TestAggregationPlanning:
    def test_few_groups_use_map(self, simple_catalog):
        plan = plan_for(
            simple_catalog, "SELECT c, count(*) AS n FROM t GROUP BY c"
        )
        aggregate = next(
            op for op in plan.operators if isinstance(op, Aggregate)
        )
        assert aggregate.algorithm == AGG_MAP
        assert aggregate.directory_sizes == (3,)

    def test_many_groups_use_hybrid(self, simple_catalog):
        plan = plan_for(
            simple_catalog,
            "SELECT a, count(*) AS n FROM t GROUP BY a",
            map_agg_l2_fraction=0.000001,
        )
        aggregate = next(
            op for op in plan.operators if isinstance(op, Aggregate)
        )
        assert aggregate.algorithm == AGG_HYBRID
        scan = plan.operators[0]
        assert scan.prep.kind == PREP_PARTITION_SORT

    def test_sorted_input_uses_sort_agg(self, simple_catalog):
        # Join on k produces k-ordered output; grouping on k reuses it.
        plan = plan_for(
            simple_catalog,
            "SELECT t.k, count(*) AS n FROM t, u WHERE t.k = u.k "
            "GROUP BY t.k",
            force_join="merge",
            map_agg_l2_fraction=0.000001,
        )
        aggregate = next(
            op for op in plan.operators if isinstance(op, Aggregate)
        )
        assert aggregate.algorithm == AGG_SORT

    def test_global_aggregate_is_single_pass(self, simple_catalog):
        plan = plan_for(simple_catalog, "SELECT sum(a) AS s FROM t")
        aggregate = next(
            op for op in plan.operators if isinstance(op, Aggregate)
        )
        assert aggregate.group_positions == ()

    def test_forced_algorithm_respected(self, simple_catalog):
        for algorithm in (AGG_SORT, AGG_HYBRID, AGG_MAP):
            plan = plan_for(
                simple_catalog,
                "SELECT c, count(*) AS n FROM t GROUP BY c",
                force_agg=algorithm,
            )
            aggregate = next(
                op for op in plan.operators if isinstance(op, Aggregate)
            )
            assert aggregate.algorithm == algorithm


class TestOrderLimitPlanning:
    def test_order_by_adds_sort(self, simple_catalog):
        plan = plan_for(simple_catalog, "SELECT a, b FROM t ORDER BY b")
        assert isinstance(plan.root, Sort)

    def test_limit_op(self, simple_catalog):
        plan = plan_for(simple_catalog, "SELECT a, b FROM t LIMIT 3")
        assert isinstance(plan.root, Limit)
        assert plan.root.count == 3

    def test_sort_agg_order_reused(self, simple_catalog):
        plan = plan_for(
            simple_catalog,
            "SELECT c, count(*) AS n FROM t GROUP BY c ORDER BY c",
            force_agg=AGG_SORT,
        )
        # Sort aggregation leaves output ordered on c: no Sort operator.
        assert not isinstance(plan.root, Sort)

    def test_explain_mentions_operators(self, simple_catalog):
        plan = plan_for(
            simple_catalog,
            "SELECT c, count(*) AS n FROM t GROUP BY c ORDER BY n",
        )
        text = plan.explain()
        assert "ScanStage" in text
        assert "Aggregate" in text
        assert "Sort" in text
