"""Tests for optimizer cost estimation, join ordering, and the
breakdown/report machinery of the profiling harness."""

import pytest

from repro.bench.reporting import ExperimentResult, format_value
from repro.memsim import costs
from repro.memsim.probe import Probe, snapshot
from repro.plan.descriptors import Join, ScanStage
from repro.plan.optimizer import Optimizer, PlannerConfig, _next_pow2
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.storage import Catalog, Column, INT, Schema


def plan_for(catalog, sql, **config):
    bound = Binder(catalog).bind(parse(sql))
    return Optimizer(catalog, PlannerConfig(**config)).plan(bound)


class TestJoinOrdering:
    def _chain_catalog(self, sizes):
        """Tables a, b, c of the given sizes, a–b and b–c joinable."""
        catalog = Catalog()
        for name, rows in zip("abc", sizes):
            table = catalog.create_table(
                name,
                Schema([Column(f"{name}k", INT), Column(f"{name}v", INT)]),
            )
            table.load_rows((i % 10, i) for i in range(rows))
        catalog.analyze()
        return catalog

    def test_smallest_pair_joined_first(self):
        catalog = self._chain_catalog((5_000, 100, 100))
        plan = plan_for(
            catalog,
            "SELECT a.av FROM a, b, c WHERE a.ak = b.bk AND b.bk = c.ck",
            enable_join_teams=False,
        )
        joins = [op for op in plan.operators if isinstance(op, Join)]
        first = joins[0]
        left_scan = plan.op(first.left_op)
        right_scan = plan.op(first.right_op)
        bindings = {left_scan.binding, right_scan.binding}
        # b ⋈ c (100 x 100) is far cheaper than anything touching a.
        assert bindings == {"b", "c"}

    def test_filters_shrink_estimates(self):
        catalog = self._chain_catalog((5_000, 5_000, 100))
        plan = plan_for(
            catalog,
            "SELECT a.av FROM a, b, c WHERE a.ak = b.bk AND b.bk = c.ck "
            "AND a.av = 7",
            enable_join_teams=False,
        )
        joins = [op for op in plan.operators if isinstance(op, Join)]
        first_bindings = {
            plan.op(joins[0].left_op).binding,
            plan.op(joins[0].right_op).binding,
        }
        # The equality filter makes `a` tiny: a should join early.
        assert "a" in first_bindings

    def test_next_pow2(self):
        assert _next_pow2(1) == 1
        assert _next_pow2(2) == 2
        assert _next_pow2(3) == 4
        assert _next_pow2(65) == 128

    def test_partition_count_scales_with_input(self):
        small = PlannerConfig()
        assert small.fits_l2(1000)
        assert not small.fits_l2(10 * 1024 * 1024)

    def test_residual_equijoin_between_joined_pair(self):
        """Two join predicates between the same pair: one drives the
        join, the other must still be enforced."""
        catalog = Catalog()
        for name in ("x", "y"):
            table = catalog.create_table(
                name,
                Schema([Column("k1", INT), Column("k2", INT),
                        Column("v", INT)]),
            )
            table.load_rows((i % 4, i % 3, i) for i in range(60))
        catalog.analyze()
        from repro.core.engine import HiqueEngine
        from repro.plan.reference import evaluate

        sql = ("SELECT x.v, y.v FROM x, y WHERE x.k1 = y.k1 "
               "AND x.k2 = y.k2")
        bound = Binder(catalog).bind(parse(sql))
        expected = sorted(map(repr, evaluate(bound)))
        got = sorted(map(repr, HiqueEngine(catalog).execute(sql)))
        assert got == expected


class TestScanEstimates:
    def test_projection_excludes_filter_only_columns(self, simple_catalog):
        plan = plan_for(
            simple_catalog, "SELECT b FROM t WHERE a < 10 AND c = 'x1'"
        )
        scan = plan.operators[0]
        assert isinstance(scan, ScanStage)
        staged = {slot.column for slot in scan.output_layout.slots}
        assert staged == {"b"}

    def test_join_key_always_staged(self, simple_catalog):
        plan = plan_for(
            simple_catalog,
            "SELECT t.a FROM t, u WHERE t.k = u.k",
        )
        for operator in plan.operators:
            if isinstance(operator, ScanStage) and operator.binding == "u":
                staged = {s.column for s in operator.output_layout.slots}
                assert "k" in staged


class TestBreakdownMachinery:
    def test_snapshot_totals_are_additive(self):
        probe = Probe()
        probe.call(100)
        probe.instr(10_000)
        for i in range(1_000):
            probe.load(i * 64, 8)
        report = snapshot("x", probe)
        assert report.total_cycles == pytest.approx(
            report.instruction_cycles
            + report.resource_stall_cycles
            + report.d1_stall_cycles
            + report.l2_stall_cycles
        )
        assert report.model_seconds == pytest.approx(
            report.total_cycles / costs.CPU_FREQUENCY_HZ
        )

    def test_cpi_never_below_ideal(self):
        probe = Probe()
        probe.instr(1000)
        for i in range(100):
            probe.load(i * 64, 8)
        assert probe.cpi >= costs.IDEAL_CPI

    def test_format_value(self):
        assert format_value(0.12345) == "0.1235"
        assert format_value(3.14159) == "3.142"
        assert format_value(12345.6) == "12,346"
        assert format_value(7) == "7"
        assert format_value("x") == "x"

    def test_experiment_result_unknown_row(self):
        result = ExperimentResult("x", ["A"])
        with pytest.raises(KeyError):
            result.row_by("A", "missing")


class TestVersionOrderingOnProfiles:
    """The headline invariant of Figures 5 and 6 as a single test: event
    counts fall monotonically from generic iterators to HIQUE."""

    def test_fig5_monotone_collapse(self):
        from repro.bench.experiments import fig5

        results = fig5("tiny")
        metrics = results[1]  # Fig 5(c)
        instr = metrics.column("Retired instr (%)")
        calls = metrics.column("Function calls (%)")
        assert instr[0] == 100.0
        assert instr[-1] < instr[0] * 0.5
        assert calls[-1] < 1.0
        # Generic >= optimized within each implementation family.
        assert instr[1] <= instr[0]
        assert instr[3] <= instr[2]

    def test_fig6_monotone_collapse(self):
        from repro.bench.experiments import fig6

        results = fig6("tiny")
        metrics = results[1]  # Fig 6(c)
        calls = metrics.column("Function calls (%)")
        assert calls[0] == 100.0
        assert calls[-1] < 5.0
