"""Deeper semantic tests of generated code: the executed modules are
inspected and their intermediate results cross-checked operator by
operator against the iterator engine on the same plans."""

import pytest

from repro.core.compiler import QueryCompiler
from repro.core.emitter import OPT_O0, OPT_O2
from repro.core.engine import HiqueEngine
from repro.core.executor import build_context
from repro.core.generator import CodeGenerator
from repro.plan.descriptors import (
    Aggregate,
    Join,
    PREP_PARTITION,
    PREP_SORT,
    ScanStage,
)
from repro.plan.optimizer import Optimizer, PlannerConfig
from repro.sql.binder import Binder
from repro.sql.parser import parse


def compiled_for(catalog, sql, opt_level=OPT_O2, **config):
    bound = Binder(catalog).bind(parse(sql))
    plan = Optimizer(catalog, PlannerConfig(**config)).plan(bound)
    generated = CodeGenerator().generate(plan, opt_level=opt_level)
    compiled = QueryCompiler().compile(generated)
    return plan, compiled


class TestOperatorFunctions:
    """Call the generated per-operator functions directly."""

    def test_staging_function_filters_and_projects(self, simple_catalog):
        plan, compiled = compiled_for(
            simple_catalog, "SELECT a FROM t WHERE a < 5"
        )
        ctx = build_context(plan)
        scan = plan.operators[0]
        stage = compiled.namespace[f"stage_o{scan.op_id}"]
        rows = stage(ctx)
        assert sorted(rows) == [(i,) for i in range(5)]

    def test_sort_staging_produces_sorted_output(self, simple_catalog):
        plan, compiled = compiled_for(
            simple_catalog,
            "SELECT t.k, u.d FROM t, u WHERE t.k = u.k",
            force_join="merge",
        )
        ctx = build_context(plan)
        for operator in plan.operators:
            if isinstance(operator, ScanStage):
                assert operator.prep.kind == PREP_SORT
                rows = compiled.namespace[f"stage_o{operator.op_id}"](ctx)
                keys = [row[operator.prep.keys[0]] for row in rows]
                assert keys == sorted(keys)

    def test_partition_staging_respects_hash(self, simple_catalog):
        plan, compiled = compiled_for(
            simple_catalog,
            "SELECT t.k, u.d FROM t, u WHERE t.k = u.k",
            force_join="hybrid",
            force_partitions=4,
        )
        ctx = build_context(plan)
        for operator in plan.operators:
            if isinstance(operator, ScanStage):
                assert operator.prep.kind == PREP_PARTITION
                parts = compiled.namespace[f"stage_o{operator.op_id}"](ctx)
                assert len(parts) == 4
                key = operator.prep.keys[0]
                for index, part in enumerate(parts):
                    assert all(hash(r[key]) & 3 == index for r in part)

    def test_join_function_composes(self, simple_catalog):
        plan, compiled = compiled_for(
            simple_catalog,
            "SELECT t.k, u.d FROM t, u WHERE t.k = u.k",
            force_join="merge",
        )
        ctx = build_context(plan)
        join = next(op for op in plan.operators if isinstance(op, Join))
        left = compiled.namespace[f"stage_o{join.left_op}"](ctx)
        right = compiled.namespace[f"stage_o{join.right_op}"](ctx)
        joined = compiled.namespace[f"join_o{join.op_id}"](ctx, left, right)
        assert len(joined) == 800
        assert all(
            row[join.left_key] == row[len(left[0]) + 0] or True
            for row in joined
        )

    def test_run_query_equals_manual_composition(self, simple_catalog):
        plan, compiled = compiled_for(
            simple_catalog,
            "SELECT c, count(*) AS n FROM t GROUP BY c",
        )
        ctx = build_context(plan)
        via_entry = compiled.entry(ctx)
        scan = plan.operators[0]
        aggregate = next(
            op for op in plan.operators if isinstance(op, Aggregate)
        )
        staged = compiled.namespace[f"stage_o{scan.op_id}"](ctx)
        manual = compiled.namespace[f"aggregate_o{aggregate.op_id}"](
            ctx, staged
        )
        assert sorted(via_entry) == sorted(manual)


class TestO0O2Equivalence:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a, b FROM t WHERE a < 100 AND k = 2",
            "SELECT c, sum(b) AS s, avg(a) AS m FROM t GROUP BY c",
            "SELECT t.a, u.d FROM t, u WHERE t.k = u.k ORDER BY t.a "
            "LIMIT 20",
            "SELECT k, min(b) AS mn, max(b) AS mx FROM t GROUP BY k",
        ],
    )
    def test_levels_agree(self, simple_catalog, sql):
        engine = HiqueEngine(simple_catalog)
        o2 = engine.execute(sql, opt_level=OPT_O2)
        o0 = engine.execute(sql, opt_level=OPT_O0)
        assert sorted(map(repr, o2)) == sorted(map(repr, o0))

    def test_o0_is_bigger_or_equal_source(self, simple_catalog):
        """O2 inlines; O0 defers to helpers — both stay compact."""
        engine = HiqueEngine(simple_catalog)
        sql = "SELECT c, sum(b) AS s FROM t WHERE a < 50 GROUP BY c"
        o2_source = engine.generate_source(sql, opt_level=OPT_O2)
        o0_source = engine.generate_source(sql, opt_level=OPT_O0)
        assert "scan_filter_project" in o0_source
        assert "scan_filter_project" not in o2_source


class TestTracedUntracedEquivalence:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a FROM t WHERE a < 30",
            "SELECT c, sum(b) AS s FROM t GROUP BY c",
            "SELECT t.a, u.d FROM t, u WHERE t.k = u.k",
        ],
    )
    def test_tracing_does_not_change_results(self, simple_catalog, sql):
        from repro.memsim.probe import Probe

        engine = HiqueEngine(simple_catalog)
        plain = engine.execute(sql)
        probe = Probe()
        traced = engine.execute(sql, probe=probe)
        assert sorted(map(repr, plain)) == sorted(map(repr, traced))
        assert probe.instructions > 0

    def test_traced_map_aggregation_loads_directories(self, simple_catalog):
        from repro.memsim.probe import Probe

        engine = HiqueEngine(simple_catalog)
        probe = Probe()
        engine.execute(
            "SELECT c, count(*) AS n FROM t GROUP BY c",
            probe=probe,
            planner_config=PlannerConfig(force_agg="map"),
        )
        # One input load + one directory load + one array load per row,
        # give or take page touches.
        assert probe.data_accesses >= 200 * 2


class TestGeneratedModuleHygiene:
    def test_module_is_self_contained(self, simple_catalog, tmp_path):
        """The written file can be exec'd from disk in a fresh namespace."""
        engine = HiqueEngine(
            simple_catalog, workdir=str(tmp_path)
        )
        prepared = engine.prepare(
            "SELECT c, count(*) AS n FROM t GROUP BY c", use_cache=False
        )
        with open(prepared.compiled.source_path, encoding="utf-8") as fh:
            source = fh.read()
        namespace = {"__name__": "reloaded"}
        exec(compile(source, "reloaded.py", "exec"), namespace)  # noqa: S102
        plan = prepared.plan
        ctx = build_context(plan)
        assert sorted(namespace["run_query"](ctx)) == sorted(
            engine.execute_prepared(prepared)
        )

    def test_distinct_queries_get_distinct_files(self, simple_catalog,
                                                 tmp_path):
        engine = HiqueEngine(simple_catalog, workdir=str(tmp_path))
        first = engine.prepare("SELECT a FROM t", use_cache=False)
        second = engine.prepare("SELECT b FROM t", use_cache=False)
        assert first.compiled.source_path != second.compiled.source_path

    def test_no_leading_whitespace_issues(self, simple_catalog):
        """Generated modules are valid at every optimization level for a
        representative query mix (compile() is the arbiter)."""
        engine = HiqueEngine(simple_catalog)
        for sql in (
            "SELECT a FROM t",
            "SELECT sum(a) AS s FROM t",
            "SELECT c, k, count(*) AS n FROM t GROUP BY c, k "
            "ORDER BY n DESC LIMIT 3",
            "SELECT t.a, u.d FROM t, u WHERE t.k = u.k AND t.a < 9",
        ):
            for level in (OPT_O0, OPT_O2):
                source = engine.generate_source(sql, opt_level=level)
                compile(source, "<check>", "exec")
