"""Unit tests for the parallel execution subsystem.

Covers the latch, the morsel/task dispatchers, the k-way merge
finishers, parallel-vs-serial result identity across plan shapes, join
strategies and optimization levels, serial-fallback reasons, the
aggregate-partial merge, the parallelism knobs, and the cost-aware
plan-cache admission policy.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro import Database
from repro.core.engine import HiqueEngine
from repro.parallel import (
    Morsel,
    MorselDispatcher,
    ParallelConfig,
    ReadWriteLatch,
    TaskDispatcher,
    morsels_for,
)
from repro.parallel.merge import (
    Desc,
    chunk_bounds,
    kway_merge,
    lower_bound,
    merge_fine_partition_runs,
    merge_ordered_runs,
    merge_partition_runs,
    merge_sorted_runs,
)
from repro.plan.optimizer import PlannerConfig
from repro.service.cache import PlanCache
from repro.storage import Catalog, Column, DOUBLE, INT, Schema, char
from repro.storage.table import table_from_rows

PARALLEL = ParallelConfig(
    workers=4, morsel_pages=4, min_pages=2, min_rows=256
)


@pytest.fixture()
def wide_catalog() -> Catalog:
    """Tables big enough to split into many morsels; ``v`` joins ``t``
    on ``t.c = v.k`` (9 matching keys, 4 rows each)."""
    rng = random.Random(11)
    catalog = Catalog()
    schema = Schema(
        [
            Column("a", INT),
            Column("b", DOUBLE),
            Column("c", INT),
            Column("d", char(8)),
        ]
    )
    rows = [
        (i, float(rng.randrange(10_000)) / 4, i % 9, f"g{i % 5}")
        for i in range(12_000)
    ]
    catalog.register(
        table_from_rows("t", schema, rows, buffer=catalog.buffer)
    )
    v_schema = Schema([Column("k", INT), Column("w", INT)])
    v_rows = [(i % 500, i) for i in range(2_000)]
    catalog.register(
        table_from_rows("v", v_schema, v_rows, buffer=catalog.buffer)
    )
    catalog.analyze()
    return catalog


# -- latch ------------------------------------------------------------------------------


def test_latch_admits_concurrent_readers():
    latch = ReadWriteLatch()
    inside = threading.Barrier(3, timeout=5)

    def reader():
        with latch.read():
            inside.wait()  # all three readers are in simultaneously

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=5)
    assert latch.active_readers == 0


def test_latch_writer_excludes_readers():
    latch = ReadWriteLatch()
    order: list[str] = []
    writer_in = threading.Event()

    def writer():
        with latch.write():
            writer_in.set()
            order.append("write")

    with latch.read():
        t = threading.Thread(target=writer)
        t.start()
        # The writer cannot enter while we hold the read side.
        assert not writer_in.wait(timeout=0.1)
        order.append("read-done")
    t.join(timeout=5)
    assert order == ["read-done", "write"]
    assert not latch.writer_active


# -- morsels ----------------------------------------------------------------------------


def test_dispatcher_covers_every_page_once():
    dispatcher = MorselDispatcher(num_pages=53, morsel_pages=8)
    morsels = list(dispatcher)
    assert dispatcher.num_morsels == len(morsels) == 7
    covered = [p for m in morsels for p in range(m.page_lo, m.page_hi)]
    assert covered == list(range(53))
    assert [m.seq for m in morsels] == list(range(7))
    assert dispatcher.next() is None


def test_dispatcher_is_race_free():
    dispatcher = MorselDispatcher(num_pages=1000, morsel_pages=1)
    taken: list[list[Morsel]] = [[] for _ in range(4)]

    def worker(k: int):
        while True:
            morsel = dispatcher.next()
            if morsel is None:
                return
            taken[k].append(morsel)

    threads = [
        threading.Thread(target=worker, args=(k,)) for k in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    all_pages = sorted(m.page_lo for chunk in taken for m in chunk)
    assert all_pages == list(range(1000))  # each page exactly once


def test_morsels_for_rejects_bad_size():
    with pytest.raises(ValueError):
        morsels_for(10, 0)


# -- parallel vs serial identity --------------------------------------------------------

QUERIES = [
    "SELECT a, b FROM t WHERE a < 400",
    "SELECT a, b, c, d FROM t",
    "SELECT count(*) AS n FROM t WHERE c = 3",
    "SELECT sum(a) AS s, count(*) AS n, min(a) AS mn, max(a) AS mx FROM t",
    "SELECT c, count(*) AS n, sum(a) AS s, min(d) AS mn FROM t GROUP BY c",
    "SELECT c, d, count(*) AS n FROM t GROUP BY c, d",
    "SELECT c, sum(a) AS s FROM t WHERE a > 6000 GROUP BY c ORDER BY s DESC",
    "SELECT a, b FROM t WHERE c = 1 ORDER BY a DESC LIMIT 25",
    "SELECT a + c AS x, b FROM t WHERE a < 100 ORDER BY x",
]


@pytest.mark.parametrize("opt_level", ["O2", "O0"])
def test_parallel_rows_identical_to_serial(wide_catalog, opt_level):
    serial = HiqueEngine(wide_catalog, opt_level=opt_level)
    parallel = HiqueEngine(
        wide_catalog, opt_level=opt_level, parallel=PARALLEL
    )
    try:
        for sql in QUERIES:
            assert parallel.execute(sql) == serial.execute(sql), sql
        assert parallel.parallel.parallel_runs > 0
    finally:
        serial.close()
        parallel.close()


def test_float_sums_exact_by_default_relaxed_when_allowed(wide_catalog):
    """DOUBLE sum/avg: aggregation stays serial (bit-identical) unless
    float reordering is allowed — the scan still parallelizes, since
    concatenating morsel chunks in page order reassociates nothing."""
    sql = "SELECT c, sum(b) AS s, avg(b) AS av FROM t GROUP BY c"
    strict = HiqueEngine(wide_catalog, parallel=PARALLEL)
    relaxed = HiqueEngine(
        wide_catalog,
        parallel=ParallelConfig(
            workers=4, morsel_pages=4, min_pages=2, min_rows=256,
            allow_float_reorder=True,
        ),
    )
    serial = HiqueEngine(wide_catalog)
    try:
        # Bit-identical mode: rows match serial exactly; the gated
        # aggregation is recorded as a serial decision.
        rows = strict.execute(sql)
        assert rows == serial.execute(sql)
        stats = strict.last_exec_stats
        assert any("order-sensitive" in note for note in stats.notes)
        # Relaxed mode parallelizes the aggregation too; values agree
        # to rounding.
        relaxed_rows = relaxed.execute(sql)
        assert relaxed.last_exec_stats.parallel
        assert not any(
            "order-sensitive" in note
            for note in relaxed.last_exec_stats.notes
        )
        assert len(relaxed_rows) == len(rows)
        for got, want in zip(relaxed_rows, rows):
            assert got[0] == want[0]
            assert got[1] == pytest.approx(want[1], rel=1e-12)
            assert got[2] == pytest.approx(want[2], rel=1e-12)
    finally:
        strict.close()
        relaxed.close()
        serial.close()


JOIN_ORDER_BY_SQL = (
    "SELECT t.a AS a, t.c AS c, v.w AS w FROM t, v "
    "WHERE t.c = v.k AND t.a < 4000 ORDER BY w DESC, a"
)


@pytest.mark.parametrize("force_join", ["merge", "hash", "hybrid"])
@pytest.mark.parametrize("opt_level", ["O2", "O0"])
def test_parallel_joins_identical_to_serial(
    wide_catalog, force_join, opt_level
):
    """Every join strategy: parallel staging + partition-pair/chunked
    join + parallel ORDER BY reproduce the serial rows exactly."""
    config = PlannerConfig(force_join=force_join)
    serial = HiqueEngine(
        wide_catalog, planner_config=config, opt_level=opt_level
    )
    parallel = HiqueEngine(
        wide_catalog,
        planner_config=config,
        opt_level=opt_level,
        parallel=PARALLEL,
    )
    try:
        want = serial.execute(JOIN_ORDER_BY_SQL)
        assert want  # the join matches keys 0..8
        assert parallel.execute(JOIN_ORDER_BY_SQL) == want
        stats = parallel.last_exec_stats
        assert stats.parallel
        phases = {phase.name: phase for phase in stats.phases}
        assert phases["join"].workers > 1
        assert phases["stage"].workers > 1
    finally:
        serial.close()
        parallel.close()


def test_parallel_join_with_aggregation(wide_catalog):
    """Join feeding grouped aggregation: the whole pipeline is exact."""
    sql = (
        "SELECT t.c AS c, count(*) AS n, sum(v.w) AS s FROM t, v "
        "WHERE t.c = v.k GROUP BY t.c ORDER BY c"
    )
    serial = HiqueEngine(wide_catalog)
    parallel = HiqueEngine(wide_catalog, parallel=PARALLEL)
    try:
        assert parallel.execute(sql) == serial.execute(sql)
        assert parallel.last_exec_stats.parallel
    finally:
        serial.close()
        parallel.close()


def test_small_join_stays_serial(simple_db):
    """Inputs under min_rows run the serial join function, with the
    decision surfaced in the stats."""
    simple_db.set_parallel(min_pages=1)
    rows = simple_db.execute(
        "SELECT t.a, u.d FROM t, u WHERE t.k = u.k AND t.a < 30"
    )
    assert rows  # correct result either way
    stats = simple_db.last_exec_stats("hique")
    assert not stats.parallel
    assert "min_rows" in stats.reason


def test_small_tables_stay_serial(simple_db):
    simple_db.execute("SELECT a FROM t WHERE a < 10")
    stats = simple_db.last_exec_stats("hique")
    assert not stats.parallel
    assert "min_pages" in stats.reason


def test_forced_sort_aggregation_stages_in_parallel(wide_catalog):
    """Sort aggregation: staging parallelizes into sorted runs, the
    group scan folds the merged (byte-identical) input serially."""
    engine = HiqueEngine(
        wide_catalog,
        planner_config=PlannerConfig(force_agg="sort"),
        parallel=PARALLEL,
    )
    try:
        serial = HiqueEngine(wide_catalog, planner_config=PlannerConfig(force_agg="sort"))
        sql = "SELECT c, count(*) AS n FROM t GROUP BY c"
        assert engine.execute(sql) == serial.execute(sql)
        stats = engine.last_exec_stats
        assert stats.parallel
        phases = {phase.name: phase for phase in stats.phases}
        assert phases["stage"].workers > 1
        assert phases["aggregate"].workers == 1
        serial.close()
    finally:
        engine.close()


def test_map_overflow_falls_back_identically():
    """Stale statistics overflow the merged value directory too."""
    catalog = Catalog()
    schema = Schema([Column("k", INT), Column("v", INT)])
    table = table_from_rows(
        "u", schema, [(i, i % 3) for i in range(4000)], buffer=catalog.buffer
    )
    catalog.register(table)
    catalog.analyze()
    # Now the data outgrows the analysed distinct count.
    table.load_rows([(i + 4000, i % 883) for i in range(4000)])
    config = PlannerConfig(force_agg="map")
    parallel = HiqueEngine(
        catalog, planner_config=config, parallel=PARALLEL
    )
    serial = HiqueEngine(catalog, planner_config=config)
    try:
        sql = "SELECT v, count(*) AS n FROM u GROUP BY v"
        assert parallel.execute(sql) == serial.execute(sql)
    finally:
        parallel.close()
        serial.close()


def test_phase_stats_reported_for_simple_scan(wide_catalog):
    engine = HiqueEngine(wide_catalog, parallel=PARALLEL)
    try:
        engine.execute("SELECT a FROM t WHERE a < 5")
        stats = engine.last_exec_stats
        assert stats.parallel
        assert [phase.name for phase in stats.phases] == ["stage"]
        assert stats.phases[0].workers > 1
        assert stats.phases[0].tasks == stats.morsels
        assert "stage" in stats.describe()
    finally:
        engine.close()


def test_default_parallel_env_var(wide_catalog, monkeypatch):
    """REPRO_DEFAULT_PARALLEL turns on the parallel path for engines
    constructed without an explicit config (the CI sweep relies on it)."""
    monkeypatch.setenv("REPRO_DEFAULT_PARALLEL", "1")
    monkeypatch.setenv("REPRO_DEFAULT_WORKERS", "3")
    engine = HiqueEngine(wide_catalog)
    try:
        assert engine.parallel is not None
        assert engine.parallel.config.workers == 3
    finally:
        engine.close()
    monkeypatch.setenv("REPRO_DEFAULT_PARALLEL", "0")
    engine = HiqueEngine(wide_catalog)
    try:
        assert engine.parallel is None
    finally:
        engine.close()


# -- k-way merge finishers ---------------------------------------------------------------


def test_kway_merge_duplicate_keys_stay_stable():
    """Equal keys drain earlier runs first — exactly a stable sort of
    the concatenated runs (rows carry their origin for the check)."""
    rng = random.Random(3)
    rows = [(rng.randrange(6), i) for i in range(300)]
    runs = [
        sorted(rows[lo : lo + 75], key=lambda r: r[0])
        for lo in range(0, 300, 75)
    ]
    merged = kway_merge(runs, key=lambda r: r[0])
    assert merged == sorted(rows, key=lambda r: r[0])


def test_kway_merge_handles_empty_runs():
    runs = [[], [(1,), (3,)], [], [(2,), (2,)], []]
    assert kway_merge(runs, key=lambda r: r[0]) == [
        (1,), (2,), (2,), (3,)
    ]
    assert kway_merge([], key=lambda r: r[0]) == []
    assert kway_merge([[], []], key=lambda r: r[0]) == []


def test_kway_merge_single_run_degenerate():
    run = [(1, "a"), (2, "b")]
    assert kway_merge([run], key=lambda r: r[0]) == run
    assert kway_merge([[], run, []], key=lambda r: r[0]) == run


def test_merge_ordered_runs_descending_and_mixed_keys():
    """DESC keys merge through the Desc wrapper; mixed directions match
    the serial stable multi-pass sort."""
    rng = random.Random(9)
    rows = [(rng.randrange(5), rng.randrange(4), i) for i in range(400)]
    keys = [(0, False), (1, True)]  # ORDER BY k0 DESC, k1 ASC

    def serial_sort(data):
        out = list(data)
        for position, ascending in reversed(keys):
            out.sort(key=lambda r: r[position], reverse=not ascending)
        return out

    runs = [serial_sort(rows[lo : lo + 100]) for lo in range(0, 400, 100)]
    assert merge_ordered_runs(runs, keys) == serial_sort(rows)
    # Pure descending, duplicates included.
    desc_runs = [
        sorted(rows[lo : lo + 100], key=lambda r: r[0], reverse=True)
        for lo in range(0, 400, 100)
    ]
    assert merge_ordered_runs(desc_runs, [(0, False)]) == sorted(
        rows, key=lambda r: r[0], reverse=True
    )


def test_merge_sorted_runs_multi_key():
    rows = [(i % 4, i % 3, i) for i in range(120)]
    runs = [
        sorted(rows[lo : lo + 40], key=lambda r: (r[0], r[1]))
        for lo in range(0, 120, 40)
    ]
    assert merge_sorted_runs(runs, (0, 1)) == sorted(
        rows, key=lambda r: (r[0], r[1])
    )


def test_partition_run_merges_preserve_serial_order():
    coarse = [
        [[(0, "m0")], [(1, "m0")]],
        [[(0, "m1")], []],
        [[], [(1, "m2"), (3, "m2")]],
    ]
    assert merge_partition_runs(coarse) == [
        [(0, "m0"), (0, "m1")],
        [(1, "m0"), (1, "m2"), (3, "m2")],
    ]
    fine = [
        {"b": [(1,)], "a": [(2,)]},
        {"c": [(3,)], "a": [(4,)]},
    ]
    merged = merge_fine_partition_runs(fine)
    assert list(merged) == ["b", "a", "c"]  # first-seen across runs
    assert merged["a"] == [(2,), (4,)]


def test_desc_wrapper_orders_inversely():
    assert Desc(2) < Desc(1)
    assert not Desc(1) < Desc(2)
    assert Desc(1) == Desc(1)
    assert (Desc(2), 0) < (Desc(1), 5)  # tuple fallback on inequality
    assert (Desc(1), 0) < (Desc(1), 5)  # tie falls through to run index


def test_lower_bound_and_chunk_bounds():
    rows = [(k,) for k in [1, 1, 2, 4, 4, 4, 7]]
    assert lower_bound(rows, 0, 0) == 0
    assert lower_bound(rows, 0, 2) == 2
    assert lower_bound(rows, 0, 3) == 3
    assert lower_bound(rows, 0, 8) == len(rows)
    assert chunk_bounds(10, 4) == [(0, 4), (4, 8), (8, 10)]
    assert chunk_bounds(0, 4) == []
    with pytest.raises(ValueError):
        chunk_bounds(5, 0)


def test_task_dispatcher_hands_out_each_index_once():
    dispatcher = TaskDispatcher(500)
    taken: list[list[int]] = [[] for _ in range(4)]

    def worker(k: int):
        while True:
            index = dispatcher.next()
            if index is None:
                return
            taken[k].append(index)

    threads = [
        threading.Thread(target=worker, args=(k,)) for k in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert sorted(i for chunk in taken for i in chunk) == list(range(500))


# -- knobs ------------------------------------------------------------------------------


def test_database_knobs_and_counters(wide_catalog):
    db = Database(catalog=wide_catalog, workers=3, parallel=True)
    try:
        db.set_parallel(min_pages=2, morsel_pages=4)
        db.execute("SELECT count(*) AS n FROM t")
        stats = db.last_exec_stats("hique")
        assert stats.parallel and stats.workers == 3
        assert stats.morsels > 1
        parallel_runs, _serial = db.parallel_counters()
        assert parallel_runs >= 1
        # Turning the subsystem off pins execution to the serial path.
        db.set_parallel(enabled=False)
        db.execute("SELECT count(*) AS n FROM t WHERE c = 1")
        assert not db.last_exec_stats("hique").parallel
    finally:
        db.close()


def test_parallel_config_validation():
    with pytest.raises(ValueError):
        ParallelConfig(workers=0)
    with pytest.raises(ValueError):
        ParallelConfig(morsel_pages=0)


# -- cost-aware cache admission ---------------------------------------------------------


def test_cache_cost_aware_eviction_protects_valuable_entries():
    cache = PlanCache(capacity=2)
    cache.put("expensive", 1, cost_seconds=0.5, size_bytes=100)
    cache.put("cheap", 2, cost_seconds=0.001, size_bytes=100)
    # Hits earn the expensive entry its bytes even though it is LRU.
    cache.get("expensive")
    cache.get("cheap")
    cache.put("newcomer", 3, cost_seconds=0.1, size_bytes=100)
    assert "expensive" in cache
    assert "cheap" not in cache  # lowest seconds-saved/size score
    assert "newcomer" in cache
    assert cache.stats().policy.startswith("cost-aware")


def test_cache_ties_break_in_lru_order():
    cache = PlanCache(capacity=2)
    cache.put("first", 1)
    cache.put("second", 2)
    cache.put("third", 3)  # all scores zero: evict the LRU entry
    assert "first" not in cache
    assert "second" in cache and "third" in cache


def test_cache_entry_counters_update_under_lock():
    cache = PlanCache(capacity=4)
    cache.put("k", "v", cost_seconds=0.25)
    threads_n, per_thread = 8, 200

    def hammer():
        for _ in range(per_thread):
            cache.get("k")

    threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    entry = cache.entries()[-1]
    assert entry.hits == threads_n * per_thread  # no dropped increments
    assert entry.seconds_saved == pytest.approx(
        entry.hits * entry.cost_seconds
    )
    stats = cache.stats()
    assert stats.hits == threads_n * per_thread
    assert stats.seconds_saved == pytest.approx(entry.seconds_saved)
