"""Unit tests for the parallel execution subsystem.

Covers the latch, the morsel dispatcher, parallel-vs-serial result
identity across plan shapes and optimization levels, serial-fallback
reasons, the aggregate-partial merge, the parallelism knobs, and the
cost-aware plan-cache admission policy.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro import Database
from repro.core.engine import HiqueEngine
from repro.parallel import (
    Morsel,
    MorselDispatcher,
    ParallelConfig,
    ReadWriteLatch,
    morsels_for,
)
from repro.parallel.executor import analyze_plan
from repro.plan.optimizer import PlannerConfig
from repro.service.cache import PlanCache
from repro.storage import Catalog, Column, DOUBLE, INT, Schema, char
from repro.storage.table import table_from_rows

PARALLEL = ParallelConfig(workers=4, morsel_pages=4, min_pages=2)


@pytest.fixture()
def wide_catalog() -> Catalog:
    """A table big enough to split into many morsels."""
    rng = random.Random(11)
    catalog = Catalog()
    schema = Schema(
        [
            Column("a", INT),
            Column("b", DOUBLE),
            Column("c", INT),
            Column("d", char(8)),
        ]
    )
    rows = [
        (i, float(rng.randrange(10_000)) / 4, i % 9, f"g{i % 5}")
        for i in range(12_000)
    ]
    catalog.register(
        table_from_rows("t", schema, rows, buffer=catalog.buffer)
    )
    catalog.analyze()
    return catalog


# -- latch ------------------------------------------------------------------------------


def test_latch_admits_concurrent_readers():
    latch = ReadWriteLatch()
    inside = threading.Barrier(3, timeout=5)

    def reader():
        with latch.read():
            inside.wait()  # all three readers are in simultaneously

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=5)
    assert latch.active_readers == 0


def test_latch_writer_excludes_readers():
    latch = ReadWriteLatch()
    order: list[str] = []
    writer_in = threading.Event()

    def writer():
        with latch.write():
            writer_in.set()
            order.append("write")

    with latch.read():
        t = threading.Thread(target=writer)
        t.start()
        # The writer cannot enter while we hold the read side.
        assert not writer_in.wait(timeout=0.1)
        order.append("read-done")
    t.join(timeout=5)
    assert order == ["read-done", "write"]
    assert not latch.writer_active


# -- morsels ----------------------------------------------------------------------------


def test_dispatcher_covers_every_page_once():
    dispatcher = MorselDispatcher(num_pages=53, morsel_pages=8)
    morsels = list(dispatcher)
    assert dispatcher.num_morsels == len(morsels) == 7
    covered = [p for m in morsels for p in range(m.page_lo, m.page_hi)]
    assert covered == list(range(53))
    assert [m.seq for m in morsels] == list(range(7))
    assert dispatcher.next() is None


def test_dispatcher_is_race_free():
    dispatcher = MorselDispatcher(num_pages=1000, morsel_pages=1)
    taken: list[list[Morsel]] = [[] for _ in range(4)]

    def worker(k: int):
        while True:
            morsel = dispatcher.next()
            if morsel is None:
                return
            taken[k].append(morsel)

    threads = [
        threading.Thread(target=worker, args=(k,)) for k in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    all_pages = sorted(m.page_lo for chunk in taken for m in chunk)
    assert all_pages == list(range(1000))  # each page exactly once


def test_morsels_for_rejects_bad_size():
    with pytest.raises(ValueError):
        morsels_for(10, 0)


# -- parallel vs serial identity --------------------------------------------------------

QUERIES = [
    "SELECT a, b FROM t WHERE a < 400",
    "SELECT a, b, c, d FROM t",
    "SELECT count(*) AS n FROM t WHERE c = 3",
    "SELECT sum(a) AS s, count(*) AS n, min(a) AS mn, max(a) AS mx FROM t",
    "SELECT c, count(*) AS n, sum(a) AS s, min(d) AS mn FROM t GROUP BY c",
    "SELECT c, d, count(*) AS n FROM t GROUP BY c, d",
    "SELECT c, sum(a) AS s FROM t WHERE a > 6000 GROUP BY c ORDER BY s DESC",
    "SELECT a, b FROM t WHERE c = 1 ORDER BY a DESC LIMIT 25",
    "SELECT a + c AS x, b FROM t WHERE a < 100 ORDER BY x",
]


@pytest.mark.parametrize("opt_level", ["O2", "O0"])
def test_parallel_rows_identical_to_serial(wide_catalog, opt_level):
    serial = HiqueEngine(wide_catalog, opt_level=opt_level)
    parallel = HiqueEngine(
        wide_catalog, opt_level=opt_level, parallel=PARALLEL
    )
    try:
        for sql in QUERIES:
            assert parallel.execute(sql) == serial.execute(sql), sql
        assert parallel.parallel.parallel_runs > 0
    finally:
        serial.close()
        parallel.close()


def test_float_sums_parallel_only_when_allowed(wide_catalog):
    sql = "SELECT c, sum(b) AS s, avg(b) AS av FROM t GROUP BY c"
    strict = HiqueEngine(wide_catalog, parallel=PARALLEL)
    relaxed = HiqueEngine(
        wide_catalog,
        parallel=ParallelConfig(
            workers=4, morsel_pages=4, min_pages=2, allow_float_reorder=True
        ),
    )
    serial = HiqueEngine(wide_catalog)
    try:
        # Bit-identical mode: the float aggregation stays serial.
        rows = strict.execute(sql)
        assert rows == serial.execute(sql)
        assert not strict.last_exec_stats.parallel
        assert "order-sensitive" in strict.last_exec_stats.reason
        # Relaxed mode goes parallel; values agree to rounding.
        relaxed_rows = relaxed.execute(sql)
        assert relaxed.last_exec_stats.parallel
        assert len(relaxed_rows) == len(rows)
        for got, want in zip(relaxed_rows, rows):
            assert got[0] == want[0]
            assert got[1] == pytest.approx(want[1], rel=1e-12)
            assert got[2] == pytest.approx(want[2], rel=1e-12)
    finally:
        strict.close()
        relaxed.close()
        serial.close()


def test_join_plans_fall_back_to_serial(simple_db):
    simple_db.set_parallel(min_pages=1)
    rows = simple_db.execute(
        "SELECT t.a, u.d FROM t, u WHERE t.k = u.k AND t.a < 30"
    )
    assert rows  # correct result either way
    stats = simple_db.last_exec_stats("hique")
    assert not stats.parallel
    assert "serially" in stats.reason or "not parallelized" in stats.reason


def test_small_tables_stay_serial(simple_db):
    simple_db.execute("SELECT a FROM t WHERE a < 10")
    stats = simple_db.last_exec_stats("hique")
    assert not stats.parallel
    assert "min_pages" in stats.reason


def test_forced_sort_aggregation_stays_serial(wide_catalog):
    engine = HiqueEngine(
        wide_catalog,
        planner_config=PlannerConfig(force_agg="sort"),
        parallel=PARALLEL,
    )
    try:
        serial = HiqueEngine(wide_catalog, planner_config=PlannerConfig(force_agg="sort"))
        sql = "SELECT c, count(*) AS n FROM t GROUP BY c"
        assert engine.execute(sql) == serial.execute(sql)
        assert not engine.last_exec_stats.parallel
        serial.close()
    finally:
        engine.close()


def test_map_overflow_falls_back_identically():
    """Stale statistics overflow the merged value directory too."""
    catalog = Catalog()
    schema = Schema([Column("k", INT), Column("v", INT)])
    table = table_from_rows(
        "u", schema, [(i, i % 3) for i in range(4000)], buffer=catalog.buffer
    )
    catalog.register(table)
    catalog.analyze()
    # Now the data outgrows the analysed distinct count.
    table.load_rows([(i + 4000, i % 883) for i in range(4000)])
    config = PlannerConfig(force_agg="map")
    parallel = HiqueEngine(
        catalog, planner_config=config, parallel=PARALLEL
    )
    serial = HiqueEngine(catalog, planner_config=config)
    try:
        sql = "SELECT v, count(*) AS n FROM u GROUP BY v"
        assert parallel.execute(sql) == serial.execute(sql)
    finally:
        parallel.close()
        serial.close()


def test_analyze_plan_reports_reasons(wide_catalog):
    engine = HiqueEngine(wide_catalog)
    try:
        shape, reason = analyze_plan(
            engine.prepare("SELECT a FROM t WHERE a < 5").plan
        )
        assert shape is not None and reason == ""
        assert shape.tail == [] and shape.aggregate is None
    finally:
        engine.close()


# -- knobs ------------------------------------------------------------------------------


def test_database_knobs_and_counters(wide_catalog):
    db = Database(catalog=wide_catalog, workers=3, parallel=True)
    try:
        db.set_parallel(min_pages=2, morsel_pages=4)
        db.execute("SELECT count(*) AS n FROM t")
        stats = db.last_exec_stats("hique")
        assert stats.parallel and stats.workers == 3
        assert stats.morsels > 1
        parallel_runs, _serial = db.parallel_counters()
        assert parallel_runs >= 1
        # Turning the subsystem off pins execution to the serial path.
        db.set_parallel(enabled=False)
        db.execute("SELECT count(*) AS n FROM t WHERE c = 1")
        assert not db.last_exec_stats("hique").parallel
    finally:
        db.close()


def test_parallel_config_validation():
    with pytest.raises(ValueError):
        ParallelConfig(workers=0)
    with pytest.raises(ValueError):
        ParallelConfig(morsel_pages=0)


# -- cost-aware cache admission ---------------------------------------------------------


def test_cache_cost_aware_eviction_protects_valuable_entries():
    cache = PlanCache(capacity=2)
    cache.put("expensive", 1, cost_seconds=0.5, size_bytes=100)
    cache.put("cheap", 2, cost_seconds=0.001, size_bytes=100)
    # Hits earn the expensive entry its bytes even though it is LRU.
    cache.get("expensive")
    cache.get("cheap")
    cache.put("newcomer", 3, cost_seconds=0.1, size_bytes=100)
    assert "expensive" in cache
    assert "cheap" not in cache  # lowest seconds-saved/size score
    assert "newcomer" in cache
    assert cache.stats().policy.startswith("cost-aware")


def test_cache_ties_break_in_lru_order():
    cache = PlanCache(capacity=2)
    cache.put("first", 1)
    cache.put("second", 2)
    cache.put("third", 3)  # all scores zero: evict the LRU entry
    assert "first" not in cache
    assert "second" in cache and "third" in cache


def test_cache_entry_counters_update_under_lock():
    cache = PlanCache(capacity=4)
    cache.put("k", "v", cost_seconds=0.25)
    threads_n, per_thread = 8, 200

    def hammer():
        for _ in range(per_thread):
            cache.get("k")

    threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    entry = cache.entries()[-1]
    assert entry.hits == threads_n * per_thread  # no dropped increments
    assert entry.seconds_saved == pytest.approx(
        entry.hits * entry.cost_seconds
    )
    stats = cache.stats()
    assert stats.hits == threads_n * per_thread
    assert stats.seconds_saved == pytest.approx(entry.seconds_saved)
