"""Property tests for the order-preserving merge finishers.

The parallel executor's byte-identity guarantee reduces to one claim:
every finisher in :mod:`repro.parallel.merge` reassembles per-morsel
partial results into exactly what the serial staging code would have
produced.  These tests check that claim against randomized inputs —
random run counts and sizes, heavy duplication, mixed ASC/DESC key
directions — with the reference always being the plain serial
computation (one stable sort / one sequential pass over the
concatenated runs).

Rows carry a trailing *provenance* field ``(run_index, row_index)``
that never participates in keys, so the assertions distinguish a merge
that is merely key-ordered from one that is *stable across run order*
(ties must drain earlier runs first — the property the executor's
serial-identity rests on).
"""

from __future__ import annotations

import random

import pytest

from repro.parallel.merge import (
    kway_merge,
    merge_fine_partition_runs,
    merge_ordered_runs,
    merge_partition_runs,
    merge_partition_sorted_runs,
    merge_sorted_runs,
    order_key,
    run_key,
)

SEEDS = range(24)


def _random_rows(rng: random.Random, count: int) -> list[tuple]:
    """Rows of (small-domain int, float, short string) — heavy on ties."""
    return [
        (
            rng.randrange(8),
            float(rng.randrange(30)) / 2,
            f"s{rng.randrange(4)}",
        )
        for _ in range(count)
    ]


def _tag(runs: list[list[tuple]]) -> list[list[tuple]]:
    """Append provenance ``(run, index)`` so stability is observable."""
    return [
        [row + ((r, i),) for i, row in enumerate(run)]
        for r, run in enumerate(runs)
    ]


def _random_runs(rng: random.Random) -> list[list[tuple]]:
    return [
        _random_rows(rng, rng.randrange(0, 40))
        for _ in range(rng.randrange(0, 7))
    ]


@pytest.mark.parametrize("seed", SEEDS)
def test_kway_merge_equals_stable_sort_of_concatenation(seed):
    rng = random.Random(seed)
    positions = rng.sample([0, 1, 2], rng.randrange(1, 4))
    key = run_key(positions)
    runs = _tag(_random_runs(rng))
    for run in runs:
        run.sort(key=key)  # each run arrives sorted, as from one morsel
    # The serial result: one stable sort over runs concatenated in run
    # (page) order — provenance breaks no ties, list.sort is stable.
    reference = sorted([row for run in runs for row in run], key=key)
    assert kway_merge(runs, key) == reference


@pytest.mark.parametrize("seed", SEEDS)
def test_merge_sorted_runs_matches_serial_prep_sort(seed):
    rng = random.Random(seed)
    positions = rng.sample([0, 1], rng.randrange(1, 3))
    runs = _tag(_random_runs(rng))
    key = run_key(positions)
    for run in runs:
        run.sort(key=key)
    reference = sorted([row for run in runs for row in run], key=key)
    assert merge_sorted_runs(runs, positions) == reference


@pytest.mark.parametrize("seed", SEEDS)
def test_merge_ordered_runs_mixed_directions(seed):
    rng = random.Random(seed)
    keys = [
        (position, rng.random() < 0.5)
        for position in rng.sample([0, 1, 2], rng.randrange(1, 4))
    ]
    key = order_key(keys)
    runs = _tag(_random_runs(rng))
    for run in runs:
        run.sort(key=key)
    reference = sorted([row for run in runs for row in run], key=key)
    assert merge_ordered_runs(runs, keys) == reference


@pytest.mark.parametrize("seed", SEEDS)
def test_merge_partition_runs_matches_serial_bucket_append(seed):
    rng = random.Random(seed)
    num_buckets = rng.choice([1, 4, 8])
    runs = _tag(_random_runs(rng))
    partitioned = [
        [
            [row for row in run if hash(row[0]) % num_buckets == b]
            for b in range(num_buckets)
        ]
        for run in runs
    ]
    # Serial: one scan in page order appending to each bucket.
    reference = [
        [
            row
            for run in runs
            for row in run
            if hash(row[0]) % num_buckets == b
        ]
        for b in range(num_buckets)
    ]
    import copy

    got = merge_partition_runs(copy.deepcopy(partitioned))
    if not runs:
        assert got == []
    else:
        assert got == reference


@pytest.mark.parametrize("seed", SEEDS)
def test_merge_fine_partition_runs_preserves_discovery_order(seed):
    rng = random.Random(seed)
    runs = _tag(_random_runs(rng))
    fine = []
    for run in runs:
        buckets: dict = {}
        for row in run:
            buckets.setdefault(row[0], []).append(row)
        fine.append(buckets)
    # Serial: value directory built in first-occurrence order over the
    # concatenated input.
    reference: dict = {}
    for run in runs:
        for row in run:
            reference.setdefault(row[0], []).append(row)
    got = merge_fine_partition_runs(fine)
    assert list(got) == list(reference)  # directory insertion order
    assert got == reference  # per-bucket row order


@pytest.mark.parametrize("seed", SEEDS)
def test_merge_partition_sorted_runs_per_bucket_stable(seed):
    rng = random.Random(seed)
    num_buckets = 4
    positions = rng.sample([0, 1], rng.randrange(1, 3))
    key = run_key(positions)
    runs = _tag(_random_runs(rng))
    partitioned = []
    for run in runs:
        buckets = [
            sorted(
                [row for row in run if hash(row[0]) % num_buckets == b],
                key=key,
            )
            for b in range(num_buckets)
        ]
        partitioned.append(buckets)
    reference = [
        sorted(
            [
                row
                for run in runs
                for row in run
                if hash(row[0]) % num_buckets == b
            ],
            key=key,
        )
        for b in range(num_buckets)
    ]
    got = merge_partition_sorted_runs(partitioned, positions)
    if not runs:
        assert got == []
    else:
        assert got == reference


def test_kway_merge_tie_break_drains_earlier_run_first():
    """Explicit witness: equal keys, distinguishable only by provenance."""
    runs = [
        [(1, "a"), (1, "b")],
        [(1, "c")],
        [(0, "d"), (1, "e")],
    ]
    got = kway_merge([list(run) for run in runs], run_key([0]))
    assert got == [(0, "d"), (1, "a"), (1, "b"), (1, "c"), (1, "e")]


def test_kway_merge_degenerate_shapes():
    key = run_key([0])
    assert kway_merge([], key) == []
    assert kway_merge([[], []], key) == []
    only = [(2,), (3,)]
    assert kway_merge([[], only, []], key) == only
