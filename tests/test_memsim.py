"""Tests for the memory-hierarchy simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memsim import costs
from repro.memsim.cache import Cache, CacheConfig
from repro.memsim.hierarchy import MemoryHierarchy
from repro.memsim.prefetch import SequentialPrefetcher, StridePrefetcher
from repro.memsim.probe import AddressSpace, NULL_PROBE, Probe, snapshot


class TestCache:
    def _tiny(self) -> Cache:
        return Cache(CacheConfig("T", size=1024, line_size=64,
                                 associativity=2))

    def test_cold_miss_then_hit(self):
        cache = self._tiny()
        assert cache.access(5) is False
        cache.install(5)
        assert cache.access(5) is True
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_within_set(self):
        cache = self._tiny()  # 8 sets, 2 ways
        # Lines 0, 8, 16 map to set 0; capacity is two ways.
        cache.install(0)
        cache.install(8)
        assert cache.access(0)  # 0 becomes MRU
        victim = cache.install(16)
        assert victim == 8

    def test_sets_isolated(self):
        cache = self._tiny()
        cache.install(0)
        cache.install(1)  # different set
        assert cache.access(0)
        assert cache.access(1)

    def test_accesses_sum(self):
        cache = self._tiny()
        cache.access(1)
        cache.install(1)
        cache.access(1)
        cache.access(2)
        assert cache.stats.accesses == cache.stats.hits + cache.stats.misses

    def test_prefetch_efficiency_definition(self):
        cache = self._tiny()
        cache.access(1)  # miss, uncovered
        cache.note_prefetched_miss()
        cache.access(2)  # miss
        assert cache.stats.prefetch_efficiency == 0.5

    def test_reset(self):
        cache = self._tiny()
        cache.access(1)
        cache.install(1)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.num_resident == 0


class TestPrefetchers:
    def test_sequential_detects_next_line(self):
        prefetcher = SequentialPrefetcher()
        assert prefetcher.observe(10) == []
        predictions = prefetcher.observe(11)
        assert 12 in predictions

    def test_sequential_ignores_random(self):
        prefetcher = SequentialPrefetcher()
        prefetcher.observe(10)
        assert prefetcher.observe(500_000) == []

    def test_stride_detection(self):
        prefetcher = StridePrefetcher(degree=2, min_confidence=1)
        prefetcher.observe(100)
        prefetcher.observe(104)  # stride 4 observed
        predictions = prefetcher.observe(108)  # stride 4 confirmed
        assert predictions == [112, 116]

    def test_stride_too_large_not_predicted(self):
        prefetcher = StridePrefetcher(max_stride=8)
        prefetcher.observe(0)
        prefetcher.observe(100)
        assert prefetcher.observe(200) == []

    def test_table_eviction(self):
        prefetcher = StridePrefetcher(table_size=2)
        for region in range(5):
            prefetcher.observe(region * 64)
        assert len(prefetcher._streams) <= 2


class TestHierarchy:
    def test_sequential_scan_mostly_covered(self):
        hierarchy = MemoryHierarchy()
        for i in range(4096):
            hierarchy.access(i * 8, 8)
        # After warm-up, sequential misses are prefetch-covered.
        assert hierarchy.d1.stats.prefetch_efficiency > 0.5

    def test_random_scan_uncovered(self):
        import random

        rng = random.Random(5)
        hierarchy = MemoryHierarchy()
        for _ in range(4096):
            hierarchy.access(rng.randrange(1 << 30), 8)
        assert hierarchy.d1.stats.prefetch_efficiency < 0.2

    def test_repeated_access_is_free(self):
        hierarchy = MemoryHierarchy()
        hierarchy.access(64, 8)
        assert hierarchy.access(64, 8) == 0.0

    def test_cold_miss_costs_random_memory_latency(self):
        hierarchy = MemoryHierarchy()
        assert hierarchy.access(1 << 20, 8) == costs.L2_MISS_RAND_CYCLES

    def test_l2_hit_after_d1_eviction(self):
        hierarchy = MemoryHierarchy()
        hierarchy.access(0, 8)
        # Push line 0 out of D1 (32 KB) but not out of L2 (2 MB).
        for i in range(1, 3000):
            hierarchy.access(i * 64, 8)
        stall = hierarchy.access(0, 8)
        assert stall in (
            costs.L1_MISS_SEQ_CYCLES, costs.L1_MISS_RAND_CYCLES,
        )

    def test_multi_line_access_charges_each_line(self):
        hierarchy = MemoryHierarchy()
        stall = hierarchy.access(0, 256)  # four cold lines
        assert stall >= costs.L2_MISS_RAND_CYCLES  # at least one miss

    def test_reset(self):
        hierarchy = MemoryHierarchy()
        hierarchy.access(0, 8)
        hierarchy.reset()
        assert hierarchy.stats.total_stall_cycles == 0
        assert hierarchy.d1.stats.accesses == 0

    @given(st.lists(st.integers(0, 1 << 24), min_size=1, max_size=500))
    @settings(max_examples=20, deadline=None)
    def test_accounting_invariant(self, addrs):
        hierarchy = MemoryHierarchy()
        for addr in addrs:
            hierarchy.access(addr, 8)
        d1 = hierarchy.d1.stats
        l2 = hierarchy.l2.stats
        assert d1.accesses >= len(addrs)
        assert d1.hits + d1.misses == d1.accesses
        assert l2.accesses == d1.misses
        assert d1.prefetched_misses <= d1.misses
        assert l2.prefetched_misses <= l2.misses
        assert hierarchy.stats.total_stall_cycles >= 0


class TestProbe:
    def test_null_probe_is_inert(self):
        NULL_PROBE.call()
        NULL_PROBE.instr(10)
        NULL_PROBE.load(0, 8)
        assert NULL_PROBE.enabled is False

    def test_call_counts_instructions(self):
        probe = Probe()
        probe.call(3)
        assert probe.function_calls == 3
        assert probe.instructions == 3 * costs.CALL_INSTRUCTIONS

    def test_load_counts_access_and_instruction(self):
        probe = Probe()
        probe.load(0, 8)
        assert probe.data_accesses == 1
        assert probe.instructions == 1

    def test_cpi_floor(self):
        probe = Probe()
        probe.instr(10_000)
        assert probe.cpi == pytest.approx(
            costs.IDEAL_CPI
            + costs.BASE_RESOURCE_STALL_PER_100_INSTR / 100.0,
        )

    def test_snapshot_fields(self):
        probe = Probe()
        probe.call(2)
        probe.load(0, 8)
        report = snapshot("x", probe)
        assert report.label == "x"
        assert report.function_calls == 2
        assert report.d1_accesses == 1
        assert report.total_cycles > 0
        assert report.model_seconds > 0

    def test_address_space_isolates_files(self):
        assert AddressSpace.page_addr(1, 0) != AddressSpace.page_addr(2, 0)
        space = AddressSpace()
        first = space.alloc(100)
        second = space.alloc(100)
        assert second >= first + 100
        assert first % costs.CACHE_LINE == 0
