"""The TCP query server: protocol, backpressure, timeouts, drain.

Tier-1 smoke coverage for the serving layer: rows over the wire must
be byte-identical to direct :meth:`Database.execute`, error responses
must be *typed* (admission backpressure, per-query deadlines, watchdog
abandonments, SQL errors), and a graceful shutdown under load must
complete every admitted query with zero spurious "service is closed"
failures.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import Database
from repro.errors import (
    AdmissionError,
    BindError,
    ParseError,
    ProtocolError,
    QueryTimeout,
    ServerError,
    ServiceError,
    WatchdogTimeout,
)
from repro.server import QueryClient, serve_in_thread
from repro.server.protocol import decode, encode, error_code


@pytest.fixture()
def served_db(simple_db):
    handle = simple_db.serve()
    yield simple_db, handle
    handle.stop()


def connect(handle) -> QueryClient:
    return QueryClient(*handle.address, timeout=30)


# -- round trips --------------------------------------------------------------------


def test_rows_byte_identical_to_direct_execute(served_db):
    db, handle = served_db
    with connect(handle) as client:
        for sql, params in [
            ("SELECT a, b FROM t WHERE a = ?", [7]),
            ("SELECT a, b, c, k FROM t WHERE a < 20", None),
            (
                "SELECT c, sum(b) AS s FROM t GROUP BY c ORDER BY s DESC",
                None,
            ),
            ("SELECT t.a, u.d FROM t, u WHERE t.k = u.k AND t.a < 9", None),
        ]:
            over_wire = client.query(sql, params=params)
            direct = db.execute(
                sql, params=tuple(params) if params else None
            )
            assert over_wire == direct  # tuples, values, order: identical


def test_interpreting_engines_served_too(served_db):
    db, handle = served_db
    with connect(handle) as client:
        for engine in ("volcano", "vectorized"):
            rows = client.query(
                "SELECT a FROM t WHERE a = ?", params=[3], engine=engine
            )
            assert rows == db.execute(
                "SELECT a FROM t WHERE a = 3", engine=engine
            )


def test_ping_and_stats(served_db):
    _, handle = served_db
    with connect(handle) as client:
        assert client.ping()
        client.query("SELECT a FROM t WHERE a = 1")
        payload = client.stats()
        assert payload["server"]["queries_ok"] == 1
        assert payload["server"]["connections_active"] == 1
        assert payload["connection"]["queries"] == 1
        assert payload["service"]["completed"] >= 1
        assert payload["service"]["executor"] in (
            "thread", "process", "auto",
        )


# -- per-connection prepared-statement reuse ----------------------------------------


def test_prepared_handle_reuses_one_compiled_plan(served_db):
    db, handle = served_db
    compiler = db.engine("hique").compiler
    with connect(handle) as client:
        statement = client.prepare("SELECT a, b FROM t WHERE a = ?")
        assert statement.num_params == 1
        assert statement.columns == ["a", "b"]
        before = compiler._counter
        for value in (5, 60, 155):
            rows = client.execute(statement, [value])
            assert rows == db.execute(
                "SELECT a, b FROM t WHERE a = ?", params=(value,)
            )
        assert compiler._counter == before  # zero re-preparation
    # A second connection preparing the same shape shares the cached
    # plan: the service cache is process-wide, handles are per-conn.
    with connect(handle) as other:
        again = other.prepare("SELECT a, b FROM t WHERE a = ?")
        assert other.execute(again, [5]) == db.execute(
            "SELECT a, b FROM t WHERE a = ?", params=(5,)
        )
        assert compiler._counter == before


def test_statement_handles_are_per_connection(served_db):
    _, handle = served_db
    with connect(handle) as first:
        statement = first.prepare("SELECT a FROM t WHERE a = ?")
        with connect(handle) as second:
            with pytest.raises(ProtocolError):
                second.execute(statement.stmt, [1])


# -- typed errors -------------------------------------------------------------------


def test_pool_saturation_is_a_typed_over_capacity_response(served_db):
    db, handle = served_db
    db.service.max_pending = 0
    try:
        with connect(handle) as client:
            with pytest.raises(AdmissionError):
                client.query("SELECT a FROM t WHERE a = 1")
            # The connection survived the rejection: typed backpressure,
            # not a dropped socket.
            assert client.ping()
            assert client.stats()["server"]["over_capacity"] == 1
    finally:
        db.service.max_pending = db.service.max_workers * 8


def test_sql_errors_arrive_typed(served_db):
    _, handle = served_db
    with connect(handle) as client:
        with pytest.raises(BindError):
            client.query("SELECT nope FROM t")
        with pytest.raises(ParseError):
            client.query("FROM t SELECT a")
        assert client.ping()  # still connected after both


def test_malformed_frames_get_bad_request(served_db):
    _, handle = served_db
    import socket

    with socket.create_connection(handle.address, timeout=10) as sock:
        reader = sock.makefile("rb")
        sock.sendall(b"this is not json\n")
        response = decode(reader.readline())
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"
        sock.sendall(encode({"op": "frobnicate", "id": 9}))
        response = decode(reader.readline())
        assert response["error"]["code"] == "bad_request"
        assert response["id"] == 9


def test_query_deadline_is_a_typed_timeout(simple_db):
    handle = simple_db.serve(query_timeout=0.1)
    original = simple_db.service.execute

    def slow(sql, params=None, engine=None):
        if "999" in sql:
            time.sleep(0.6)
        return original(sql, params, engine)

    simple_db.service.execute = slow
    try:
        with connect(handle) as client:
            with pytest.raises(QueryTimeout):
                client.query("SELECT a FROM t WHERE a = 999")
            # The deadline bounds one query, not the connection.
            assert client.query("SELECT a FROM t WHERE a = 1") == [(1,)]
            assert client.stats()["server"]["timeouts"] == 1
    finally:
        simple_db.service.execute = original
        handle.stop()


def test_watchdog_abandonment_reaches_client_and_stats(simple_db):
    """A wedged parallel task (stall watchdog) must surface as a typed
    ``watchdog_timeout`` response and in both stats surfaces."""
    handle = simple_db.serve()
    original = simple_db.service.execute

    def wedged(sql, params=None, engine=None):
        if "314159" in sql:
            raise WatchdogTimeout(
                "parallel task exceeded task_timeout=0.1s"
            )
        return original(sql, params, engine)

    simple_db.service.execute = wedged
    try:
        with connect(handle) as client:
            with pytest.raises(WatchdogTimeout):
                client.query("SELECT a FROM t WHERE a = 314159")
            payload = client.stats()
            assert payload["server"]["watchdog_timeouts"] == 1
            assert payload["service"]["failed"] == 1
    finally:
        simple_db.service.execute = original
        handle.stop()


def test_error_code_taxonomy():
    assert error_code(AdmissionError("x")) == "over_capacity"
    assert error_code(QueryTimeout("x")) == "timeout"
    assert error_code(WatchdogTimeout("x")) == "watchdog_timeout"
    assert error_code(BindError("x")) == "bind"
    assert error_code(ParseError("x")) == "parse"
    assert error_code(ServiceError("x")) == "service"
    assert error_code(ProtocolError("x")) == "bad_request"
    assert error_code(ValueError("x")) == "internal"


def test_server_task_timeout_arms_the_stall_watchdog(simple_db):
    handle = simple_db.serve(task_timeout=5.0)
    try:
        assert simple_db.parallel_config.task_timeout == 5.0
    finally:
        handle.stop()


# -- graceful drain -----------------------------------------------------------------


def test_graceful_shutdown_completes_admitted_queries(simple_catalog):
    """Shutdown under load: every admitted query completes and answers;
    zero spurious "query service is closed" failures."""
    db = Database(catalog=simple_catalog, max_workers=2)
    db.service.max_pending = 1024
    original = db.service.execute

    def measured(sql, params=None, engine=None):
        time.sleep(0.01)  # keep the pool busy so the drain overlaps work
        return original(sql, params, engine)

    db.service.execute = measured
    handle = db.serve()
    outcomes: list[tuple[str, object]] = []
    outcomes_lock = threading.Lock()

    def client_loop(worker: int) -> None:
        client = connect(handle)
        try:
            for i in range(8):
                try:
                    rows = client.query(
                        "SELECT a, b FROM t WHERE k = ?",
                        params=[(worker + i) % 5],
                    )
                    with outcomes_lock:
                        outcomes.append(("ok", rows))
                except ServerError as exc:
                    with outcomes_lock:
                        outcomes.append(("shutdown", exc))
                    return
        finally:
            client.close()

    threads = [
        threading.Thread(target=client_loop, args=(w,)) for w in range(6)
    ]
    for thread in threads:
        thread.start()
    time.sleep(0.08)  # let load build, then drain mid-flight
    handle.stop()
    for thread in threads:
        thread.join(timeout=30)

    completed = [o for o in outcomes if o[0] == "ok"]
    assert completed, "no query completed before the drain"
    for kind, value in outcomes:
        if kind == "ok":
            assert isinstance(value, list) and value  # real rows came back
        else:
            # Typed shutdown or a closed socket — never "service is
            # closed" leaking from a drained-but-admitted query.
            assert "query service is closed" not in str(value)
    stats = db.service.stats()
    assert stats.failed == 0
    assert stats.pending == 0
    db.close()


def test_stop_is_idempotent(simple_db):
    handle = simple_db.serve()
    handle.stop()
    handle.stop()  # second stop is a no-op, not an error


def test_serve_in_thread_reports_bind_errors(simple_db):
    handle = simple_db.serve()
    try:
        with pytest.raises(OSError):
            serve_in_thread(simple_db, port=handle.port)
    finally:
        handle.stop()


# -- concurrency smoke ---------------------------------------------------------------


def test_many_concurrent_async_clients(simple_db):
    """A modest async fleet (tier-1 sized; the bench drives 500+)."""
    import asyncio

    from repro.server import AsyncQueryClient

    handle = simple_db.serve()
    simple_db.service.max_pending = 1024
    expected = {
        k: simple_db.execute(f"SELECT a, b FROM t WHERE k = {k}")
        for k in range(5)
    }

    async def one_client(i: int) -> None:
        client = await AsyncQueryClient.connect(*handle.address)
        try:
            statement = await client.prepare(
                "SELECT a, b FROM t WHERE k = ?"
            )
            for j in range(3):
                k = (i + j) % 5
                rows = await client.execute(statement, [k])
                assert rows == expected[k]
        finally:
            await client.close()

    async def fleet() -> None:
        await asyncio.gather(*(one_client(i) for i in range(40)))

    try:
        asyncio.run(fleet())
        stats = handle.stats()
        assert stats.connections_total >= 40
        assert stats.queries_ok == 120
        assert stats.errors == 0
    finally:
        handle.stop()
