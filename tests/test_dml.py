"""The write path: INSERT / UPDATE / DELETE across every layer.

Covers the SQL front-end (parse, bind, parameterize), storage-level
mutation (heap pages, per-table version epochs, B+-tree index
maintenance), the service layer (DML under the catalog write gate,
fine-grained plan-cache invalidation keyed by ``(table, version)``
dependencies), and the outer front-ends (Database facade, prepared
statements, the TCP server with its typed ``bad_request`` mapping).
"""

from __future__ import annotations

import pytest

from repro import Column, Database, INT, DOUBLE, char
from repro.api import ENGINE_KINDS
from repro.errors import (
    BindError,
    CatalogError,
    ConstraintError,
    ParseError,
    ProtocolError,
    ServiceError,
)
from repro.server import QueryClient
from repro.sql import ast
from repro.sql.binder import Binder
from repro.sql.parameters import (
    count_statement_parameters,
    parameterize_statement,
)
from repro.sql.parser import parse_statement, statement_kind
from repro.storage import Catalog, Schema
from repro.storage import Column as SColumn
from repro.storage import INT as SINT


def _db() -> Database:
    db = Database()
    db.create_table(
        "t", [Column("a", INT), Column("b", DOUBLE), Column("c", char(4))]
    )
    db.load_rows("t", [(i, i * 0.5, f"g{i % 3}") for i in range(50)])
    db.create_table("u", [Column("k", INT), Column("v", INT)])
    db.load_rows("u", [(i, i * 2) for i in range(20)])
    db.analyze()
    return db


# -- SQL front-end ----------------------------------------------------------------


class TestParser:
    def test_statement_kinds(self):
        assert statement_kind("SELECT a FROM t") == "select"
        assert statement_kind("INSERT INTO t VALUES (1)") == "insert"
        assert statement_kind("UPDATE t SET a = 1") == "update"
        assert statement_kind("DELETE FROM t") == "delete"

    def test_parse_insert_multi_row(self):
        stmt = parse_statement(
            "INSERT INTO t (a, b) VALUES (1, 2.5), (3, 4.5)"
        )
        assert isinstance(stmt, ast.Insert)
        assert stmt.table == "t"
        assert tuple(stmt.columns) == ("a", "b")
        assert len(stmt.rows) == 2

    def test_parse_update_with_where(self):
        stmt = parse_statement("UPDATE t SET b = 1.5 WHERE a = 3")
        assert isinstance(stmt, ast.Update)
        assert [a.column for a in stmt.assignments] == ["b"]
        assert stmt.where is not None

    def test_parse_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a > 10")
        assert isinstance(stmt, ast.Delete)
        assert stmt.table == "t"

    def test_select_still_parses(self):
        stmt = parse_statement("SELECT a FROM t")
        assert isinstance(stmt, ast.Query)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("DELETE FROM t WHERE a = 1 garbage")

    def test_parameters_counted(self):
        stmt = parse_statement("INSERT INTO t VALUES (?, ?, ?)")
        assert count_statement_parameters(stmt) == 3


class TestBinder:
    def _catalog(self) -> Catalog:
        catalog = Catalog()
        catalog.create_table(
            "t", Schema([SColumn("a", SINT), SColumn("b", SINT)])
        )
        return catalog

    def test_insert_arity_mismatch(self):
        binder = Binder(self._catalog())
        with pytest.raises(ConstraintError):
            binder.bind_statement(
                parse_statement("INSERT INTO t VALUES (1)")
            )

    def test_insert_unknown_column(self):
        binder = Binder(self._catalog())
        with pytest.raises(BindError):
            binder.bind_statement(
                parse_statement("INSERT INTO t (a, zz) VALUES (1, 2)")
            )

    def test_update_unknown_column(self):
        binder = Binder(self._catalog())
        with pytest.raises(BindError):
            binder.bind_statement(
                parse_statement("UPDATE t SET zz = 1")
            )

    def test_unknown_table(self):
        # The same CatalogError a SELECT over a missing table raises.
        binder = Binder(self._catalog())
        with pytest.raises(CatalogError):
            binder.bind_statement(
                parse_statement("DELETE FROM nosuch")
            )

    def test_dml_literals_parameterize_away(self):
        parameterized = parameterize_statement(
            parse_statement("INSERT INTO t VALUES (1, 2)")
        )
        assert parameterized.num_params == 2
        assert parameterized.values == (1, 2)


# -- storage: versions and indexes ------------------------------------------------


class TestVersionEpochs:
    def test_load_and_dml_bump_versions(self):
        db = _db()
        try:
            assert db.catalog.version_of("t") == 1  # the initial load
            db.execute("INSERT INTO t VALUES (100, 1.0, 'g0')")
            assert db.catalog.version_of("t") == 2
            db.execute("UPDATE t SET b = 0.0 WHERE a = 100")
            assert db.catalog.version_of("t") == 3
            db.execute("DELETE FROM t WHERE a = 100")
            assert db.catalog.version_of("t") == 4
            # Versions are statement-granular: a multi-row INSERT is
            # one mutation, one bump.
            db.execute(
                "INSERT INTO t VALUES (101, 1.0, 'g1'), (102, 2.0, 'g2')"
            )
            assert db.catalog.version_of("t") == 5
            # Untouched tables keep their epoch.
            assert db.catalog.version_of("u") == 1
            assert set(db.catalog.versions()) == {"t", "u"}
        finally:
            db.close()

    def test_noop_dml_does_not_bump(self):
        db = _db()
        try:
            before = db.catalog.version_of("t")
            db.execute("DELETE FROM t WHERE a = -999")
            db.execute("UPDATE t SET b = 0.0 WHERE a = -999")
            assert db.catalog.version_of("t") == before
        finally:
            db.close()


class TestIndexMaintenance:
    def test_indexes_stay_consistent_through_dml(self):
        db = _db()
        try:
            table = db.table("t")
            table.create_index("a")
            db.execute("INSERT INTO t VALUES (500, 9.0, 'g9')")
            assert db.execute("SELECT b FROM t WHERE a = 500") == [(9.0,)]
            db.execute("UPDATE t SET b = 7.0 WHERE a = 500")
            assert db.execute("SELECT b FROM t WHERE a = 500") == [(7.0,)]
            db.execute("DELETE FROM t WHERE a = 500")
            assert db.execute("SELECT b FROM t WHERE a = 500") == []
            index = table.index_on("a")
            assert index is not None
            # Every indexed key still resolves to a live, matching row.
            assert table.num_rows == 50
        finally:
            db.close()


# -- service + facade -------------------------------------------------------------


class TestDatabaseDml:
    def test_insert_returns_rowcount(self):
        db = _db()
        try:
            assert db.execute(
                "INSERT INTO t VALUES (100, 1.0, 'gx'), (101, 2.0, 'gy')"
            ) == [(2,)]
            assert db.execute(
                "SELECT count(a) AS n FROM t WHERE a >= 100"
            ) == [(2,)]
        finally:
            db.close()

    def test_update_and_delete_rowcounts(self):
        db = _db()
        try:
            assert db.execute(
                "UPDATE t SET b = ? WHERE c = ?", params=(0.0, "g1")
            ) == [(17,)]
            assert db.execute("DELETE FROM t WHERE c = 'g1'") == [(17,)]
            assert db.execute("SELECT count(a) AS n FROM t") == [(33,)]
        finally:
            db.close()

    def test_update_expression_uses_pre_update_row(self):
        db = _db()
        try:
            db.execute("UPDATE t SET b = b + 1.0 WHERE a < 3")
            rows = db.execute(
                "SELECT a, b FROM t WHERE a < 3 ORDER BY a"
            )
            assert rows == [(0, 1.0), (1, 1.5), (2, 2.0)]
        finally:
            db.close()

    def test_all_engines_see_post_write_data(self):
        db = _db()
        try:
            for kind in ENGINE_KINDS:
                db.execute(
                    "SELECT count(a) AS n FROM t", engine=kind
                )  # warm every engine's caches
            db.execute("INSERT INTO t VALUES (900, 0.0, 'gz')")
            for kind in ENGINE_KINDS:
                assert db.execute(
                    "SELECT count(a) AS n FROM t", engine=kind
                ) == [(51,)], kind
        finally:
            db.close()

    def test_prepared_dml_and_execute_many(self):
        db = _db()
        try:
            stmt = db.prepare("INSERT INTO t VALUES (?, ?, ?)")
            assert stmt.num_params == 3
            assert stmt.output_names == ["rows_affected"]
            assert stmt.execute((200, 1.0, "ga")) == [(1,)]
            counts = stmt.execute_many(
                [(201, 2.0, "gb"), (202, 3.0, "gc")]
            )
            assert counts == [[(1,)], [(1,)]]
            assert db.execute(
                "SELECT count(a) AS n FROM t WHERE a >= 200"
            ) == [(3,)]
        finally:
            db.close()

    def test_constraint_violation_mutates_nothing(self):
        db = _db()
        try:
            with pytest.raises(ConstraintError):
                # Second row's string exceeds char(4): the whole
                # statement must be rejected, including the valid row.
                db.execute(
                    "INSERT INTO t VALUES (300, 1.0, 'ok'), "
                    "(301, 2.0, 'waytoolong')"
                )
            assert db.execute(
                "SELECT count(a) AS n FROM t WHERE a >= 300"
            ) == [(0,)]
            assert db.catalog.version_of("t") == 1
        finally:
            db.close()

    def test_explain_rejects_dml(self):
        db = _db()
        try:
            # There is no physical plan for DML: the service refuses
            # with a typed error, the facade's SELECT-only explain path
            # rejects it at the parser.
            with pytest.raises(ServiceError):
                db.service.physical_plan("DELETE FROM t WHERE a = 1")
            with pytest.raises(ParseError):
                db.explain("DELETE FROM t WHERE a = 1")
        finally:
            db.close()


class TestFineGrainedInvalidation:
    def test_dml_keeps_other_tables_plans(self):
        db = _db()
        try:
            db.execute("SELECT count(v) AS n FROM u")
            db.execute("SELECT count(a) AS n FROM t")
            entries = {e.key: e for e in db.service.cache.entries()}
            u_keys = [
                k for k, e in entries.items()
                if e.deps and all(name == "u" for name, _ in e.deps)
            ]
            t_keys = [
                k for k, e in entries.items()
                if e.deps and all(name == "t" for name, _ in e.deps)
            ]
            assert u_keys and t_keys
            db.execute("INSERT INTO t VALUES (700, 0.0, 'gq')")
            after = {e.key for e in db.service.cache.entries()}
            assert all(k in after for k in u_keys), "u-only plans evicted"
            assert all(k not in after for k in t_keys), "t plans survived"
        finally:
            db.close()

    def test_dml_plans_survive_their_own_mutations(self):
        db = _db()
        try:
            stmt = db.prepare("INSERT INTO t VALUES (?, ?, ?)")
            stmt.execute((800, 0.0, "gm"))
            hits_before = db.service.cache.stats().hits
            stmt.execute((801, 0.0, "gm"))
            assert db.service.cache.stats().hits > hits_before
        finally:
            db.close()

    def test_ddl_still_invalidates_wholesale(self):
        db = _db()
        try:
            db.execute("SELECT count(v) AS n FROM u")
            assert db.service.cache.stats().size > 0
            db.create_table("w", [Column("x", INT)])
            assert db.service.cache.stats().size == 0
        finally:
            db.close()

    def test_stale_entry_detected_without_listener(self):
        """The validation-on-hit backstop: a mutation that bypasses the
        catalogue listeners (direct table access) still never serves a
        stale plan."""
        db = _db()
        try:
            db.execute("SELECT count(a) AS n FROM t")
            # Mutate behind the service's back: bump the version only.
            with db.catalog.exclusive():
                db.table("t").load_rows([(999, 0.0, "gs")])
            assert db.execute("SELECT count(a) AS n FROM t") == [(51,)]
        finally:
            db.close()


class TestWorkloadInsightsScoping:
    def test_dml_reset_scopes_to_the_mutated_table(self):
        db = _db()
        try:
            db.execute("SELECT count(v) AS n FROM u")
            db.execute("SELECT count(a) AS n FROM t")
            db.execute("INSERT INTO t VALUES (600, 0.0, 'gn')")
            snapshot = db.insights().snapshot()
            assert snapshot["scoped_resets"] >= 1
            digests = {
                d["statement"]: tuple(d["tables"])
                for d in snapshot["digests"]
            }
            # The u-only SELECT digest survives; the t SELECT digest was
            # dropped (the INSERT's own fresh digest may reference t).
            assert any(
                tables == ("u",) and stmt.startswith("SELECT")
                for stmt, tables in digests.items()
            )
            assert not any(
                tables == ("t",) and stmt.startswith("SELECT")
                for stmt, tables in digests.items()
            )
        finally:
            db.close()


# -- TCP server -------------------------------------------------------------------


class TestServerDml:
    def test_dml_over_the_wire(self):
        db = _db()
        handle = db.serve(host="127.0.0.1", port=0)
        client = QueryClient(*handle.address, timeout=30)
        try:
            assert client.query(
                "INSERT INTO t VALUES (?, ?, ?)", params=[400, 1.0, "gw"]
            ) == [(1,)]
            assert client.query(
                "UPDATE t SET b = 2.0 WHERE a = 400"
            ) == [(1,)]
            stmt = client.prepare("DELETE FROM t WHERE a = ?")
            assert client.execute(stmt, [400]) == [(1,)]
            assert client.query(
                "SELECT count(a) AS n FROM t"
            ) == [(50,)]
        finally:
            client.close()
            handle.stop()
            db.close()

    def test_constraint_errors_map_to_bad_request(self):
        db = _db()
        handle = db.serve(host="127.0.0.1", port=0)
        client = QueryClient(*handle.address, timeout=30)
        try:
            with pytest.raises(ProtocolError):
                client.query("INSERT INTO t VALUES (1)")
            # The connection survives the typed error.
            assert client.ping()
        finally:
            client.close()
            handle.stop()
            db.close()
