"""Parallel re-staging of large intermediates.

``Restage`` was the last serial staging operator: a join result that
must be re-sorted or re-partitioned for its next consumer ran the
serial generated function no matter how large it was.  It now runs the
generated ``*_chunk`` entry point per row chunk, reassembled by the
order-preserving merge finishers — these tests pin byte-identity for
every restage prep (sort, coarse/fine partition, partition-sort)
across all six engine configurations, DOUBLE restage keys under
``allow_float_reorder=False``, the large-intermediate acceptance
criterion (no serial-restage stats note), and crash/fallback behaviour
when a restage chunk task dies mid-pipeline.
"""

from __future__ import annotations

import random

import pytest

from repro.api import Database, ENGINE_KINDS
from repro.core.engine import HiqueEngine
from repro.parallel.stats import ParallelConfig
from repro.plan.descriptors import Restage
from repro.plan.optimizer import PlannerConfig
from repro.plan.reference import evaluate as reference_evaluate
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.storage import Catalog, Column, DOUBLE, INT, Schema, char

_PARALLEL = dict(workers=3, morsel_pages=1, min_pages=1, min_rows=8)

#: Three tables joined on two different keys: the optimizer must join
#: two of them first and re-stage the intermediate for the second join.
SQL = (
    "SELECT a.x AS x, b.w AS w, c.z AS z FROM a, b, c "
    "WHERE a.x = b.x AND a.y = c.y ORDER BY x, w, z LIMIT 300"
)
#: Aggregation whose hybrid algorithm partition-sorts the join result.
SQL_AGG = (
    "SELECT a.x AS x, count(*) AS n, min(b.w) AS lo FROM a, b "
    "WHERE a.x = b.x GROUP BY a.x ORDER BY x"
)
#: The second join key is DOUBLE, so the restage sorts/partitions on a
#: DOUBLE column — exact regardless of ``allow_float_reorder``.
SQL_DOUBLE = (
    "SELECT a.x AS x, c2.z AS z FROM a, b, c2 "
    "WHERE a.x = b.x AND a.d = c2.d ORDER BY x, z LIMIT 300"
)


def _build_catalog() -> Catalog:
    rng = random.Random(11)
    catalog = Catalog()
    a = catalog.create_table(
        "a",
        Schema(
            [
                Column("x", INT),
                Column("y", INT),
                Column("d", DOUBLE),
                Column("pad", char(8)),
            ]
        ),
    )
    a.load_rows(
        (
            rng.randrange(60),
            rng.randrange(50),
            float(rng.randrange(40)) / 4,
            f"p{rng.randrange(9)}",
        )
        for _ in range(3000)
    )
    b = catalog.create_table(
        "b", Schema([Column("x", INT), Column("w", INT)])
    )
    b.load_rows(
        (rng.randrange(60), rng.randrange(100)) for _ in range(400)
    )
    c = catalog.create_table(
        "c", Schema([Column("y", INT), Column("z", INT)])
    )
    c.load_rows(
        (rng.randrange(50), rng.randrange(100)) for _ in range(300)
    )
    c2 = catalog.create_table(
        "c2", Schema([Column("d", DOUBLE), Column("z", INT)])
    )
    c2.load_rows(
        (float(rng.randrange(40)) / 4, rng.randrange(100))
        for _ in range(300)
    )
    catalog.analyze()
    return catalog


@pytest.fixture(scope="module")
def catalog() -> Catalog:
    return _build_catalog()


def _canonical(rows):
    return sorted(repr(list(row)) for row in rows)


def _fallback_notes(stats) -> list[str]:
    """Serial-decision notes only.

    The adaptive placement summary ("adaptive placement routed
    restage\u2192thread\u00d71, ...") also names phase kinds; it reports routing,
    not a fallback, and must not trip the no-serial-restage checks.
    """
    return [
        note
        for note in stats.notes
        if not note.startswith("adaptive placement")
    ]


def test_plan_contains_restage(catalog):
    engine = HiqueEngine(catalog)
    try:
        assert "Restage" in engine.explain(SQL)
    finally:
        engine.close()


def test_all_six_engines_agree_with_parallel_restage(catalog):
    """Every engine configuration returns the same rows the parallel-
    restage hique run does (canonicalized: ORDER BY x,w,z leaves ties
    impossible, but engines may differ on int/float types)."""
    expected = _canonical(
        reference_evaluate(Binder(catalog).bind(parse(SQL)))
    )
    with Database(catalog=catalog) as db:
        db.set_parallel(**_PARALLEL)
        for kind in ENGINE_KINDS:
            got = db.execute(SQL, engine=kind)
            assert _canonical(got) == expected, kind
        stats = db.last_exec_stats("hique")
        assert stats is not None


@pytest.mark.parametrize("force_join", [None, "hash", "hybrid"])
def test_restage_parallel_and_byte_identical(catalog, force_join):
    """Sort, fine-partition and coarse-partition restages all fan out
    and reproduce the serial rows exactly."""
    planner = PlannerConfig(force_join=force_join)
    serial = HiqueEngine(catalog, planner_config=planner)
    parallel = HiqueEngine(
        catalog,
        planner_config=planner,
        parallel=ParallelConfig(**_PARALLEL),
    )
    pipelined = HiqueEngine(
        catalog,
        planner_config=planner,
        parallel=ParallelConfig(pipeline=True, **_PARALLEL),
    )
    try:
        assert "Restage" in serial.explain(SQL)
        want = serial.execute(SQL)
        assert parallel.execute(SQL) == want
        assert pipelined.execute(SQL) == want
        for engine in (parallel, pipelined):
            stats = engine.last_exec_stats
            assert stats is not None and stats.parallel, stats
            # Acceptance: a large intermediate's Restage is no longer a
            # serial decision in the stats notes.
            assert not any(
                "restage" in note for note in _fallback_notes(stats)
            ), stats
    finally:
        serial.close()
        parallel.close()
        pipelined.close()


def test_hybrid_aggregation_restage_parallel(catalog):
    planner = PlannerConfig(force_agg="hybrid")
    serial = HiqueEngine(catalog, planner_config=planner)
    parallel = HiqueEngine(
        catalog,
        planner_config=planner,
        parallel=ParallelConfig(**_PARALLEL),
    )
    try:
        assert "Restage" in serial.explain(SQL_AGG)
        assert parallel.execute(SQL_AGG) == serial.execute(SQL_AGG)
        stats = parallel.last_exec_stats
        assert stats is not None and stats.parallel
        assert not any(
            "restage" in note for note in _fallback_notes(stats)
        ), stats
    finally:
        serial.close()
        parallel.close()


def test_double_restage_keys_stay_parallel_without_float_reorder(catalog):
    """Sorting/partitioning never reassociates floats, so a DOUBLE
    restage key must not force the restage serial even under the strict
    float policy."""
    serial = HiqueEngine(catalog)
    parallel = HiqueEngine(
        catalog,
        parallel=ParallelConfig(allow_float_reorder=False, **_PARALLEL),
    )
    try:
        assert "Restage" in serial.explain(SQL_DOUBLE)
        assert parallel.execute(SQL_DOUBLE) == serial.execute(SQL_DOUBLE)
        stats = parallel.last_exec_stats
        assert stats is not None and stats.parallel
        assert not any(
            "restage" in note for note in _fallback_notes(stats)
        ), stats
    finally:
        serial.close()
        parallel.close()


def test_small_restage_stays_serial_with_note(catalog):
    """Below ``min_rows`` the restage keeps its serial path — and says
    so in the stats notes."""
    engine = HiqueEngine(
        catalog,
        parallel=ParallelConfig(
            workers=3, morsel_pages=1, min_pages=1, min_rows=1_000_000
        ),
    )
    try:
        engine.execute(SQL)
        stats = engine.last_exec_stats
        assert stats is not None
        assert any(
            "restage input" in note and "min_rows" in note
            for note in stats.notes
        ), stats
    finally:
        engine.close()


def _restage_chunk_name(prepared) -> str:
    restage_ops = [
        op for op in prepared.plan.operators if isinstance(op, Restage)
    ]
    assert restage_ops, prepared.plan.explain()
    return prepared.generated.function_names[restage_ops[0].op_id] + "_chunk"


@pytest.mark.parametrize("pipeline", [False, True])
def test_restage_chunk_crash_surfaces_error(catalog, pipeline):
    """A restage chunk task dying mid-pipeline surfaces its error
    cleanly (no hang, no partial rows) and the engine keeps serving."""
    engine = HiqueEngine(
        catalog,
        parallel=ParallelConfig(pipeline=pipeline, **_PARALLEL),
    )
    try:
        prepared = engine.prepare(SQL, name="crashy")
        chunk_name = _restage_chunk_name(prepared)

        def boom(ctx, rows):
            raise RuntimeError("restage chunk died")

        prepared.compiled.namespace[chunk_name] = boom
        with pytest.raises(RuntimeError, match="restage chunk died"):
            engine.execute_prepared(prepared)
        engine.clear_cache()
        assert engine.execute(SQL) == engine.execute(SQL)
    finally:
        engine.close()


def test_missing_chunk_entry_falls_back_serial(catalog):
    """An (older) module without the chunk entry point degrades to the
    serial restage with a stats note instead of failing."""
    engine = HiqueEngine(catalog, parallel=ParallelConfig(**_PARALLEL))
    serial = HiqueEngine(catalog)
    try:
        prepared = engine.prepare(SQL, name="legacy")
        chunk_name = _restage_chunk_name(prepared)
        del prepared.compiled.namespace[chunk_name]
        assert engine.execute_prepared(prepared) == serial.execute(SQL)
        stats = engine.last_exec_stats
        assert stats is not None
        assert any(
            "restage module lacks a chunk entry point" in note
            for note in stats.notes
        ), stats
    finally:
        engine.close()
        serial.close()


def test_generated_source_has_chunk_entry(catalog):
    engine = HiqueEngine(catalog)
    try:
        source = engine.generate_source(SQL)
        # The chunk entry aliases the serial restage function (the
        # serial body is already correct over any private row chunk).
        assert "_chunk = restage_o" in source
    finally:
        engine.close()
