"""Integration smoke tests: the shipped example scripts must run.

Each example is executed in a subprocess (they are user-facing entry
points, so they should work exactly as documented), with scaled-down
parameters where the script accepts them.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples",
)


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        check=False,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExampleScripts:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "All five engines agree" in out
        assert "def " in out  # generated code shown

    def test_tpch_analytics(self):
        out = run_example("tpch_analytics.py", "0.001")
        assert "HIQUE" in out
        assert "faster than the generic iterator engine" in out

    def test_codegen_inspection(self):
        out = run_example("codegen_inspection.py")
        assert "run_query" in out
        assert "compile" in out
        assert "Result (5 groups)" in out

    def test_join_teams(self):
        out = run_example("join_teams.py", timeout=420)
        assert "HIQUE join team" in out
        assert "def team_join" in out

    def test_query_server(self):
        out = run_example("query_server.py")
        assert "rows match Database.execute exactly" in out
        assert "typed error, connection intact" in out
        assert "server drained and stopped" in out


class TestHarnessEndToEnd:
    def test_fig5_returns_four_results(self):
        from repro.bench import fig5

        results = fig5("tiny")
        names = [r.name for r in results]
        assert len(results) == 4
        assert any("5(a)" in n for n in names)
        assert any("5(d)" in n for n in names)

    def test_fig8_tiny_shape(self):
        from repro.bench import fig8, get_scale, make_tpch_database

        db = make_tpch_database(get_scale("tiny").tpch_sf)
        result = fig8("tiny", db=db)
        hique = result.row_by("System", "HIQUE")
        postgres = result.row_by("System", "PostgreSQL*")
        for column in range(1, 4):
            assert hique[column] < postgres[column]

    def test_table3_tiny(self):
        from repro.bench import get_scale, make_tpch_database, table3

        db = make_tpch_database(get_scale("tiny").tpch_sf)
        result = table3("tiny", db=db)
        assert [row[0] for row in result.rows] == ["Q1", "Q3", "Q10"]
        sources = result.column("Source (bytes)")
        assert sources[0] < sources[1] < sources[2]  # Q1 < Q3 < Q10

    def test_table2_tiny_o2_wins_for_hique(self):
        from repro.bench import table2

        result = table2("tiny")
        hique = result.row_by("Version", "HIQUE")
        _label, *times = hique
        for o0_time, o2_time in zip(times[0::2], times[1::2]):
            assert o2_time < o0_time * 1.25  # generous at tiny scale
