"""Tests for name resolution and type checking (the binder)."""

import pytest

from repro.errors import BindError, UnsupportedSqlError
from repro.sql.binder import Binder
from repro.sql.bound import (
    BoundAggregate,
    BoundColumn,
    bindings_in,
    columns_in,
)
from repro.sql.parser import parse
from repro.storage.types import DOUBLE, INT


@pytest.fixture()
def binder(simple_catalog):
    return Binder(simple_catalog)


def bind(binder, sql):
    return binder.bind(parse(sql))


class TestTableBinding:
    def test_alias_becomes_binding(self, binder):
        bound = bind(binder, "SELECT x.a FROM t x")
        assert bound.tables[0].binding == "x"

    def test_duplicate_binding_rejected(self, binder):
        with pytest.raises(BindError):
            bind(binder, "SELECT a FROM t, t")

    def test_self_join_with_aliases(self, binder):
        bound = bind(
            binder, "SELECT x.a, y.a FROM t x, t y WHERE x.k = y.k"
        )
        assert {b.binding for b in bound.tables} == {"x", "y"}
        assert len(bound.joins) == 1


class TestColumnResolution:
    def test_bare_column(self, binder):
        bound = bind(binder, "SELECT a FROM t")
        expr = bound.select[0].expr
        assert expr == BoundColumn("t", "a", INT)

    def test_qualified_column(self, binder):
        bound = bind(binder, "SELECT t.b FROM t")
        assert bound.select[0].expr.dtype == DOUBLE

    def test_unknown_column_raises(self, binder):
        with pytest.raises(BindError):
            bind(binder, "SELECT nope FROM t")

    def test_ambiguous_column_raises(self, binder):
        with pytest.raises(BindError):
            bind(binder, "SELECT k FROM t, u WHERE t.k = u.k")

    def test_unknown_table_qualifier_raises(self, binder):
        with pytest.raises(BindError):
            bind(binder, "SELECT z.a FROM t")

    def test_select_star_expands(self, binder):
        bound = bind(binder, "SELECT * FROM t")
        assert bound.output_names() == ["a", "b", "c", "k"]


class TestWhereClassification:
    def test_single_table_predicate_is_filter(self, binder):
        bound = bind(binder, "SELECT a FROM t WHERE a < 5")
        assert len(bound.filters["t"]) == 1
        assert not bound.joins

    def test_equi_join_detected(self, binder):
        bound = bind(binder, "SELECT t.a FROM t, u WHERE t.k = u.k")
        assert len(bound.joins) == 1
        assert bound.joins[0].bindings() == ("t", "u")

    def test_cross_table_inequality_unsupported(self, binder):
        with pytest.raises(UnsupportedSqlError):
            bind(binder, "SELECT t.a FROM t, u WHERE t.k < u.k")

    def test_cross_table_expression_equality_unsupported(self, binder):
        with pytest.raises(UnsupportedSqlError):
            bind(binder, "SELECT t.a FROM t, u WHERE t.k + 1 = u.k")

    def test_incomparable_types_raise(self, binder):
        with pytest.raises(BindError):
            bind(binder, "SELECT a FROM t WHERE a = 'text'")

    def test_filter_on_expression(self, binder):
        bound = bind(binder, "SELECT a FROM t WHERE a + k < 10")
        assert len(bound.filters["t"]) == 1


class TestSelectClassification:
    def test_aggregate_output_kind(self, binder):
        bound = bind(binder, "SELECT sum(a) AS s FROM t")
        assert bound.select[0].kind == "aggregate"
        assert bound.has_aggregates

    def test_group_output_kind(self, binder):
        bound = bind(binder, "SELECT c, count(*) AS n FROM t GROUP BY c")
        assert bound.select[0].kind == "group"
        assert bound.select[1].kind == "aggregate"

    def test_plain_output_kind(self, binder):
        bound = bind(binder, "SELECT a FROM t")
        assert bound.select[0].kind == "plain"

    def test_ungrouped_column_with_aggregate_raises(self, binder):
        with pytest.raises(BindError):
            bind(binder, "SELECT a, sum(b) FROM t GROUP BY c")

    def test_mixed_aggregate_scalar_expression_raises(self, binder):
        with pytest.raises(UnsupportedSqlError):
            bind(binder, "SELECT sum(a) + k FROM t GROUP BY k")

    def test_arithmetic_over_two_aggregates_ok(self, binder):
        bound = bind(binder, "SELECT sum(a) / count(*) AS m FROM t")
        assert bound.select[0].kind == "aggregate"

    def test_nested_aggregate_raises(self, binder):
        with pytest.raises((UnsupportedSqlError, BindError)):
            bind(binder, "SELECT sum(count(*)) FROM t")

    def test_sum_type_propagation(self, binder):
        bound = bind(binder, "SELECT sum(a) AS si, sum(b) AS sd FROM t")
        assert bound.select[0].dtype == INT
        assert bound.select[1].dtype == DOUBLE

    def test_avg_is_double(self, binder):
        bound = bind(binder, "SELECT avg(a) AS m FROM t")
        assert bound.select[0].dtype == DOUBLE

    def test_count_is_int(self, binder):
        bound = bind(binder, "SELECT count(*) AS n FROM t")
        assert bound.select[0].dtype == INT

    def test_sum_of_string_raises(self, binder):
        with pytest.raises(BindError):
            bind(binder, "SELECT sum(c) FROM t")

    def test_default_output_names(self, binder):
        bound = bind(binder, "SELECT a, sum(b), count(*) FROM t GROUP BY a")
        assert bound.output_names() == ["a", "sum_b", "count_star"]


class TestOrderByBinding:
    def test_order_by_alias(self, binder):
        bound = bind(
            binder,
            "SELECT c, sum(b) AS total FROM t GROUP BY c ORDER BY total "
            "DESC",
        )
        assert bound.order_by == [(1, False)]

    def test_order_by_selected_column(self, binder):
        bound = bind(binder, "SELECT a, b FROM t ORDER BY b, a DESC")
        assert bound.order_by == [(1, True), (0, False)]

    def test_order_by_matching_expression(self, binder):
        bound = bind(
            binder,
            "SELECT c, sum(b) FROM t GROUP BY c ORDER BY sum(b)",
        )
        assert bound.order_by == [(1, True)]

    def test_order_by_unselected_raises(self, binder):
        with pytest.raises(UnsupportedSqlError):
            bind(binder, "SELECT a FROM t ORDER BY b")


class TestBoundHelpers:
    def test_columns_in_walks_expressions(self, binder):
        bound = bind(binder, "SELECT a + k AS s FROM t")
        columns = columns_in(bound.select[0].expr)
        assert [c.column for c in columns] == ["a", "k"]

    def test_bindings_in(self, binder):
        bound = bind(binder, "SELECT t.a FROM t, u WHERE t.k = u.k")
        assert bindings_in(bound.joins[0].left) == {"t"}

    def test_aggregate_argument_bound(self, binder):
        bound = bind(binder, "SELECT sum(a + 1) AS s FROM t")
        aggregate = bound.select[0].expr
        assert isinstance(aggregate, BoundAggregate)
        assert bindings_in(aggregate.argument) == {"t"}
