"""Cross-engine differential tests: every engine must agree.

The reference evaluator (deliberately naive) defines correctness; the
HIQUE engine (O0 and O2), both Volcano configurations, the buffered
System X analogue and the vectorized DSM engine are all checked against
it on a shared query corpus and on hypothesis-generated tables.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.emitter import OPT_O0, OPT_O2
from repro.core.engine import HiqueEngine
from repro.engines.vectorized import VectorizedEngine
from repro.engines.volcano import VolcanoEngine
from repro.parallel.stats import ParallelConfig
from repro.plan.optimizer import PlannerConfig
from repro.plan.reference import evaluate as reference_evaluate
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.storage import Catalog, Column, INT, DOUBLE, Schema, char

from tests.conftest import DIFFERENTIAL_QUERIES


def canonical(rows):
    return sorted(repr([_norm(v) for v in row]) for row in rows)


def _norm(value):
    if isinstance(value, float):
        return round(value, 6)
    return value


def reference(catalog, sql):
    return reference_evaluate(Binder(catalog).bind(parse(sql)))


ENGINE_FACTORIES = {
    "hique-o2": lambda c: HiqueEngine(c, opt_level=OPT_O2),
    "hique-o0": lambda c: HiqueEngine(c, opt_level=OPT_O0),
    # Cost-model-routed placement: each batch may run on the thread or
    # the process backend, and rows must still match everyone else.
    "hique-o2-auto": lambda c: HiqueEngine(
        c,
        opt_level=OPT_O2,
        parallel=ParallelConfig(
            placement="auto",
            workers=3,
            morsel_pages=1,
            min_pages=1,
            min_rows=8,
        ),
    ),
    "volcano-generic": lambda c: VolcanoEngine(c, generic=True),
    "volcano-optimized": lambda c: VolcanoEngine(c),
    "systemx": lambda c: VolcanoEngine(c, buffered=True),
    "vectorized": lambda c: VectorizedEngine(c),
}


@pytest.mark.parametrize("engine_name", list(ENGINE_FACTORIES))
@pytest.mark.parametrize("sql", DIFFERENTIAL_QUERIES)
def test_engine_matches_reference(simple_catalog, engine_name, sql):
    engine = ENGINE_FACTORIES[engine_name](simple_catalog)
    assert canonical(engine.execute(sql)) == canonical(
        reference(simple_catalog, sql)
    )


FORCED_CONFIGS = [
    PlannerConfig(force_join="merge"),
    PlannerConfig(force_join="hybrid", force_partitions=8),
    PlannerConfig(force_join="hash"),
    # Keyed nested loops: the equi predicate rides as a residual (it
    # once silently vanished, turning the join into a cross product).
    PlannerConfig(force_join="nested"),
    PlannerConfig(force_agg="sort"),
    PlannerConfig(force_agg="hybrid", force_partitions=8),
    PlannerConfig(force_agg="map"),
    PlannerConfig(enable_join_teams=False),
]


@pytest.mark.parametrize("config_index", range(len(FORCED_CONFIGS)))
@pytest.mark.parametrize(
    "engine_name",
    ["hique-o2", "hique-o0", "hique-o2-auto", "volcano-optimized"],
)
def test_forced_algorithms_agree(simple_catalog, engine_name, config_index):
    config = FORCED_CONFIGS[config_index]
    engine = ENGINE_FACTORIES[engine_name](simple_catalog)
    for sql in (
        "SELECT t.a, u.d FROM t, u WHERE t.k = u.k AND t.a < 50",
        "SELECT c, sum(b) AS s, count(*) AS n FROM t GROUP BY c",
    ):
        if engine_name.startswith("hique"):
            got = engine.execute(sql, planner_config=config)
        else:
            got = engine.execute(sql, planner_config=config)
        assert canonical(got) == canonical(reference(simple_catalog, sql))


def test_empty_table_queries():
    catalog = Catalog()
    catalog.create_table(
        "t", Schema([Column("a", INT), Column("b", DOUBLE)])
    )
    catalog.analyze()
    for sql, expected_len in [
        ("SELECT a, b FROM t", 0),
        ("SELECT a, count(*) AS n FROM t GROUP BY a", 0),
        ("SELECT count(*) AS n FROM t", 1),
        ("SELECT sum(a) AS s, count(*) AS n FROM t", 1),
    ]:
        for factory in ENGINE_FACTORIES.values():
            engine = factory(catalog)
            assert len(engine.execute(sql)) == expected_len, sql


def test_single_row_table():
    catalog = Catalog()
    table = catalog.create_table(
        "t", Schema([Column("a", INT), Column("c", char(4))])
    )
    table.load_rows([(1, "x")])
    catalog.analyze()
    for name, factory in ENGINE_FACTORIES.items():
        engine = factory(catalog)
        assert engine.execute("SELECT a, c FROM t") == [(1, "x")], name


#: Pinned configurations from the extended fuzz grammar (self-joins,
#: empty/one-row tables, unsatisfiable filters → NULL-producing empty
#: aggregates).  The fuzz generates these shapes randomly; each class
#: is pinned here so a regression reproduces deterministically.
def _edge_catalog() -> Catalog:
    catalog = Catalog()
    t = catalog.create_table(
        "t",
        Schema([Column("a", INT), Column("b", DOUBLE),
                Column("c", char(4)), Column("k", INT)]),
    )
    t.load_rows(
        (i % 23, float(i % 17) / 4, f"s{i % 3}", i % 5)
        for i in range(180)
    )
    empty = catalog.create_table(
        "empty", Schema([Column("k", INT), Column("e", INT)])
    )
    assert empty.num_rows == 0
    one = catalog.create_table(
        "one", Schema([Column("k", INT), Column("e", INT)])
    )
    one.load_rows([(3, 42)])
    catalog.analyze()
    return catalog


EDGE_QUERIES = [
    # Self-join: one physical table under two bindings.
    "SELECT t1.a, t2.c FROM t t1, t t2 WHERE t1.k = t2.k AND t1.a < 4",
    "SELECT t1.k, count(*) AS n, max(t2.a) AS m FROM t t1, t t2 "
    "WHERE t1.k = t2.k GROUP BY t1.k ORDER BY t1.k",
    # Unsatisfiable filter: global aggregates over an empty input must
    # yield one row with NULL min/max/avg on every engine.
    "SELECT count(*) AS n, min(a) AS lo, max(a) AS hi, avg(b) AS m "
    "FROM t WHERE a > 9000",
    # Empty / one-row join sides.
    "SELECT t.a, empty.e FROM t, empty WHERE t.k = empty.k",
    "SELECT t.a, one.e FROM t, one WHERE t.k = one.k ORDER BY t.a",
    "SELECT count(*) AS n, sum(e) AS s FROM empty",
    "SELECT k, count(*) AS n FROM empty GROUP BY k",
    "SELECT k, e FROM one ORDER BY e DESC",
]


@pytest.mark.parametrize("sql", EDGE_QUERIES)
def test_fuzz_pinned_edge_regressions(sql):
    catalog = _edge_catalog()
    expected = canonical(reference(catalog, sql))
    for name, factory in ENGINE_FACTORIES.items():
        engine = factory(catalog)
        try:
            assert canonical(engine.execute(sql)) == expected, name
        finally:
            close = getattr(engine, "close", None)
            if callable(close):
                close()


@st.composite
def _random_tables(draw):
    n_t = draw(st.integers(1, 60))
    n_u = draw(st.integers(1, 30))
    t_rows = [
        (
            draw(st.integers(-20, 20)),
            draw(st.floats(-100, 100, allow_nan=False)),
            draw(st.sampled_from(["aa", "bb", "cc"])),
            draw(st.integers(0, 5)),
        )
        for _ in range(n_t)
    ]
    u_rows = [
        (draw(st.integers(0, 5)), draw(st.integers(-50, 50)))
        for _ in range(n_u)
    ]
    return t_rows, u_rows


@given(_random_tables())
@settings(max_examples=15, deadline=None)
def test_differential_on_random_tables(tables):
    t_rows, u_rows = tables
    catalog = Catalog()
    t = catalog.create_table(
        "t",
        Schema(
            [
                Column("a", INT),
                Column("b", DOUBLE),
                Column("c", char(4)),
                Column("k", INT),
            ]
        ),
    )
    t.load_rows(t_rows)
    u = catalog.create_table(
        "u", Schema([Column("k", INT), Column("d", INT)])
    )
    u.load_rows(u_rows)
    catalog.analyze()
    queries = [
        "SELECT c, count(*) AS n, min(a) AS mn FROM t GROUP BY c",
        "SELECT t.a, u.d FROM t, u WHERE t.k = u.k",
        "SELECT t.c, sum(u.d) AS s FROM t, u WHERE t.k = u.k GROUP BY t.c",
    ]
    for sql in queries:
        expected = canonical(reference(catalog, sql))
        for name, factory in ENGINE_FACTORIES.items():
            got = canonical(factory(catalog).execute(sql))
            assert got == expected, f"{name}: {sql}"


def test_residual_join_predicates_all_engines():
    """Two equi-join conjuncts between one table pair: the second one
    becomes a residual predicate that every backend must enforce."""
    catalog = Catalog()
    for name in ("x", "y"):
        table = catalog.create_table(
            name,
            Schema([Column("k1", INT), Column("k2", INT),
                    Column("v", INT)]),
        )
        table.load_rows((i % 4, i % 3, i) for i in range(60))
    catalog.analyze()
    sql = ("SELECT x.v, y.v FROM x, y WHERE x.k1 = y.k1 "
           "AND x.k2 = y.k2")
    expected = canonical(reference(catalog, sql))
    for name, factory in ENGINE_FACTORIES.items():
        assert canonical(factory(catalog).execute(sql)) == expected, name


def test_order_by_fully_deterministic(simple_catalog):
    """With a total order, even row order must agree across engines."""
    sql = "SELECT a, b FROM t WHERE a < 40 ORDER BY a DESC"
    expected = reference(simple_catalog, sql)
    for name, factory in ENGINE_FACTORIES.items():
        assert factory(simple_catalog).execute(sql) == expected, name


def test_limit_applies_after_sort(simple_catalog):
    sql = "SELECT a FROM t ORDER BY a DESC LIMIT 5"
    expected = [(199,), (198,), (197,), (196,), (195,)]
    for name, factory in ENGINE_FACTORIES.items():
        assert factory(simple_catalog).execute(sql) == expected, name
