"""The query service: prepared statements, plan cache, sessions."""

import threading

import pytest

from repro.api import Database, ENGINE_KINDS
from repro.errors import AdmissionError, BindError, ServiceError
from repro.storage import Column, INT, Schema

#: (placeholder form, params, inlined form) triples over the t/u tables.
PARAMETERIZED_QUERIES = [
    (
        "SELECT a, b FROM t WHERE a = ?",
        (42,),
        "SELECT a, b FROM t WHERE a = 42",
    ),
    (
        "SELECT a, b, c FROM t WHERE a < ? AND k = ?",
        (50, 3),
        "SELECT a, b, c FROM t WHERE a < 50 AND k = 3",
    ),
    (
        "SELECT c, sum(b) AS s FROM t WHERE a >= ? GROUP BY c ORDER BY s DESC",
        (120,),
        "SELECT c, sum(b) AS s FROM t WHERE a >= 120 GROUP BY c ORDER BY s "
        "DESC",
    ),
    (
        "SELECT k, count(*) AS n FROM t WHERE c = ? GROUP BY k ORDER BY k",
        ("x1",),
        "SELECT k, count(*) AS n FROM t WHERE c = 'x1' GROUP BY k ORDER BY k",
    ),
    (
        "SELECT t.a, u.d FROM t, u WHERE t.k = u.k AND t.a < ?",
        (30,),
        "SELECT t.a, u.d FROM t, u WHERE t.k = u.k AND t.a < 30",
    ),
]


def canonical(rows):
    return sorted(
        repr([round(v, 6) if isinstance(v, float) else v for v in row])
        for row in rows
    )


# -- differential: params vs inlined literals, every engine ----------------------


@pytest.mark.parametrize("engine", ENGINE_KINDS)
@pytest.mark.parametrize(
    "sql,params,inlined", PARAMETERIZED_QUERIES, ids=lambda v: str(v)[:40]
)
def test_params_match_inlined_literals(simple_db, engine, sql, params, inlined):
    with_params = simple_db.execute(sql, engine=engine, params=params)
    direct = simple_db.engine(engine).execute(inlined)
    assert canonical(with_params) == canonical(direct)


@pytest.mark.parametrize("engine", ENGINE_KINDS)
def test_prepared_statement_repeats_with_fresh_params(simple_db, engine):
    stmt = simple_db.prepare("SELECT a, b FROM t WHERE a = ?", engine=engine)
    for value in (10, 55, 160):
        expected = simple_db.engine(engine).execute(
            f"SELECT a, b FROM t WHERE a = {value}"
        )
        assert canonical(stmt.execute((value,))) == canonical(expected)


def test_execute_many_matches_individual_executes(simple_db):
    results = simple_db.service.execute_many(
        "SELECT a, b FROM t WHERE k = ?", [(1,), (2,), (3,)]
    )
    for params, rows in zip([(1,), (2,), (3,)], results):
        assert canonical(rows) == canonical(
            simple_db.execute("SELECT a, b FROM t WHERE k = ?", params=params)
        )


# -- parameter contract ------------------------------------------------------------


def test_missing_params_is_an_error(simple_db):
    with pytest.raises(ServiceError):
        simple_db.execute("SELECT a FROM t WHERE a = ?")


def test_wrong_arity_is_an_error(simple_db):
    stmt = simple_db.prepare("SELECT a FROM t WHERE a = ? AND k = ?")
    with pytest.raises(ServiceError):
        stmt.execute((1,))


def test_literal_statement_accepts_param_override(simple_db):
    stmt = simple_db.prepare("SELECT a, b FROM t WHERE a = 10")
    assert stmt.default_params == (10,)
    assert canonical(stmt.execute((20,))) == canonical(
        simple_db.engine("hique").execute("SELECT a, b FROM t WHERE a = 20")
    )


# -- the normalizing cache ---------------------------------------------------------


def test_literal_varying_queries_share_one_compiled_plan(simple_db):
    service = simple_db.service
    compiler = simple_db.engine("hique").compiler
    before = compiler._counter

    simple_db.execute("SELECT a, b FROM t WHERE a = 1")
    simple_db.execute("SELECT a, b FROM t WHERE a = 2")
    simple_db.execute("SELECT a, b FROM t WHERE a = 3")

    stats = service.stats()
    assert compiler._counter == before + 1  # one codegen for three texts
    assert stats.cache.misses == 1
    assert stats.cache.hits == 2


def test_warm_execution_skips_all_preparation(simple_db):
    """Acceptance: a warm hit pays zero parse/optimize/generate/compile."""
    service = simple_db.service
    sql = "SELECT a, b FROM t WHERE a = ? AND k = ?"
    stmt = service.prepare(sql)
    entry = service.cache.entries()[-1]
    assert entry.value.prepared.timings.total_seconds > 0  # cold cost

    compiler = simple_db.engine("hique").compiler
    compiled_before = compiler._counter
    hits_before = service.cache.stats().hits
    text_hits_before = service.stats().text_hits

    stmt.execute((5, 1))
    service.execute(sql, params=(6, 2))  # same text: parse skipped too

    stats = service.stats()
    assert compiler._counter == compiled_before  # no generate/compile
    assert stats.cache.hits == hits_before + 2  # hit counter increments
    assert stats.text_hits == text_hits_before + 1
    assert stats.cache.seconds_saved > 0


def test_per_entry_hit_counts(simple_db):
    service = simple_db.service
    stmt = service.prepare("SELECT a FROM t WHERE a = ?")
    stmt.execute((1,))
    stmt.execute((2,))
    entry = service.cache.entries()[-1]
    assert entry.hits == 2
    assert entry.key == ("hique", "SELECT a FROM t WHERE a = ?", (None,))


def test_warm_cache_does_not_skip_type_checking(simple_db):
    """c = 'x1' and c = 3 normalize to the same SQL but must not share
    a plan: the second is a type error whether the cache is warm or
    cold."""
    simple_db.execute("SELECT a FROM t WHERE c = 'x1'")
    with pytest.raises(BindError):
        simple_db.execute("SELECT a FROM t WHERE c = 3")
    # And the reverse order, against a warm numeric entry.
    simple_db.execute("SELECT a FROM t WHERE a = 1")
    with pytest.raises(BindError):
        simple_db.execute("SELECT a FROM t WHERE a = 'oops'")


def test_one_shot_execute_rejects_params_without_placeholders(simple_db):
    with pytest.raises(ServiceError):
        simple_db.execute("SELECT a FROM t WHERE a = 1", params=(5,))


def test_override_values_are_type_checked(simple_db):
    """A statement bound for a CHAR parameter must reject an int value
    rather than silently comparing unequal everywhere."""
    stmt = simple_db.prepare("SELECT a FROM t WHERE c = 'x1'")
    assert stmt.execute() != []
    with pytest.raises(ServiceError):
        stmt.execute((3,))
    numeric = simple_db.prepare("SELECT a FROM t WHERE a < ?")
    with pytest.raises(ServiceError):
        numeric.execute(("abc",))
    assert numeric.execute((5,)) == simple_db.engine("hique").execute(
        "SELECT a FROM t WHERE a < 5"
    )


def test_date_objects_accepted_as_parameters():
    import datetime

    from repro.storage import DATE, DOUBLE, date_to_ordinal

    db = Database()
    db.create_table(
        "events", [Column("d", DATE), Column("v", DOUBLE)]
    )
    day = datetime.date(1998, 9, 2)
    db.load_rows("events", [(day, 1.0), (datetime.date(1999, 1, 1), 2.0)])
    db.analyze()
    try:
        for engine in ("hique", "volcano"):
            by_object = db.execute(
                "SELECT v FROM events WHERE d = ?",
                engine=engine,
                params=(day,),
            )
            by_ordinal = db.execute(
                "SELECT v FROM events WHERE d = ?",
                engine=engine,
                params=(date_to_ordinal(day),),
            )
            assert by_object == by_ordinal == [(1.0,)]
            assert db.execute(
                "SELECT v FROM events WHERE d < ?",
                engine=engine,
                params=(datetime.date(1998, 12, 31),),
            ) == [(1.0,)]
    finally:
        db.close()


def test_stats_count_executions_not_lookups(simple_db):
    """One never-repeated query must record one miss, zero hits, and no
    phantom 'seconds saved'."""
    simple_db.execute("SELECT a, b, c, k FROM t WHERE a = 7")
    stats = simple_db.service.stats().cache
    assert stats.misses == 1
    assert stats.hits == 0
    assert stats.seconds_saved == 0


def test_statement_output_names(simple_db):
    stmt = simple_db.prepare("SELECT a, sum(b) AS s FROM t GROUP BY a")
    assert stmt.output_names == ["a", "s"]
    interpreted = simple_db.prepare(
        "SELECT a, b FROM t WHERE a = ?", engine="volcano"
    )
    assert interpreted.output_names == ["a", "b"]


def test_database_close_removes_catalog_listener(simple_catalog):
    before = len(simple_catalog._listeners)
    db = Database(catalog=simple_catalog)
    db.execute("SELECT a FROM t WHERE a = 1")
    db.close()
    assert len(simple_catalog._listeners) == before


def test_lru_eviction(simple_catalog):
    db = Database(catalog=simple_catalog, cache_capacity=2, max_workers=2)
    try:
        db.execute("SELECT a FROM t WHERE a = 1")
        db.execute("SELECT b FROM t WHERE a = 1")
        db.execute("SELECT c FROM t WHERE a = 1")  # evicts the oldest
        stats = db.service.stats().cache
        assert stats.size == 2
        assert stats.evictions == 1
        # The evicted shape must re-prepare (a miss), not error.
        db.execute("SELECT a FROM t WHERE a = 2")
        assert db.service.stats().cache.misses == 4
    finally:
        db.close()


# -- invalidation ------------------------------------------------------------------


def test_analyze_invalidates_cached_plans(simple_db):
    simple_db.execute("SELECT a FROM t WHERE a = 1")
    assert simple_db.service.stats().cache.size == 1
    simple_db.analyze()
    stats = simple_db.service.stats().cache
    assert stats.size == 0
    assert stats.invalidations == 1


def test_ddl_invalidates_cached_plans(simple_db):
    simple_db.execute("SELECT a FROM t WHERE a = 1")
    simple_db.create_table("extra", Schema([Column("x", INT)]))
    assert simple_db.service.stats().cache.size == 0
    simple_db.execute("SELECT a FROM t WHERE a = 1")
    simple_db.catalog.drop_table("extra")
    assert simple_db.service.stats().cache.size == 0


def test_statement_survives_invalidation(simple_db):
    stmt = simple_db.prepare("SELECT a, b FROM t WHERE a = ?")
    before = canonical(stmt.execute((7,)))
    simple_db.analyze()  # drops the cached plan under the statement
    assert canonical(stmt.execute((7,))) == before


# -- sessions / admission -----------------------------------------------------------


def test_concurrent_sessions_return_correct_rows(simple_db):
    futures = [
        simple_db.service.submit(
            "SELECT a, b FROM t WHERE k = ?", params=(i % 5,)
        )
        for i in range(16)
    ]
    for i, future in enumerate(futures):
        expected = simple_db.engine("hique").execute(
            f"SELECT a, b FROM t WHERE k = {i % 5}"
        )
        assert canonical(future.result(timeout=30)) == canonical(expected)
    stats = simple_db.service.stats()
    assert stats.submitted == 16
    assert stats.completed == 16
    assert stats.failed == 0
    assert stats.pending == 0


def test_admission_rejects_when_saturated(simple_db):
    service = simple_db.service
    service.max_pending = 0
    with pytest.raises(AdmissionError):
        service.submit("SELECT a FROM t WHERE a = 1")
    assert service.stats().rejected == 1


def test_failed_sessions_are_counted(simple_db):
    future = simple_db.service.submit("SELECT nope FROM t")
    with pytest.raises(Exception):
        future.result(timeout=30)
    assert simple_db.service.stats().failed == 1


def test_closed_service_refuses_work(simple_db):
    simple_db.service.close()
    with pytest.raises(ServiceError):
        simple_db.service.execute("SELECT a FROM t WHERE a = 1")
    with pytest.raises(ServiceError):
        simple_db.service.submit("SELECT a FROM t WHERE a = 1")


def test_close_drains_admitted_sessions(simple_catalog):
    """close() must *drain* queued work, not fail it: a session that
    won admission before the close completes with real rows instead of
    "query service is closed"."""
    import time

    from repro import Database as Db

    db = Db(catalog=simple_catalog, max_workers=1)
    service = db.service
    original = service.execute

    def slowed(sql, params=None, engine=None):
        time.sleep(0.05)  # hold the single worker so a queue builds
        return original(sql, params, engine)

    service.execute = slowed
    expected = db.execute("SELECT a, b FROM t WHERE k = 3")
    futures = [
        service.submit("SELECT a, b FROM t WHERE k = ?", params=(3,))
        for _ in range(6)
    ]
    service.close()  # queued sessions drain; new submissions reject
    for future in futures:
        assert future.result(timeout=30) == expected
    stats = service.stats()
    assert stats.completed == 6
    assert stats.failed == 0
    assert stats.pending == 0
    with pytest.raises(ServiceError):
        service.submit("SELECT a FROM t WHERE a = 1")
    db.close()


def test_futures_cancelled_while_queued_release_their_slots(
    simple_catalog,
):
    """Cancelling a still-queued future must free its admission slot
    and count as failed, leaving stats consistent."""
    import threading
    import time

    from repro import Database as Db

    db = Db(catalog=simple_catalog, max_workers=1)
    service = db.service
    service.max_pending = 64
    gate = threading.Event()
    original = service.execute

    def gated(sql, params=None, engine=None):
        gate.wait(timeout=30)
        return original(sql, params, engine)

    service.execute = gated
    blocker = service.submit("SELECT a FROM t WHERE a = 1")
    time.sleep(0.05)  # let the blocker occupy the only worker
    queued = [
        service.submit("SELECT a FROM t WHERE a = ?", params=(i,))
        for i in range(4)
    ]
    cancelled = [future.cancel() for future in queued]
    assert all(cancelled)  # still queued behind the blocker
    gate.set()
    assert blocker.result(timeout=30)
    stats = service.stats()
    assert stats.pending == 0
    assert stats.completed == 1
    assert stats.failed == 4  # the cancelled sessions
    assert stats.submitted == 5
    db.close()


def test_stats_report_effective_placement(simple_catalog):
    """placement="auto" must be visible in ServiceStats.executor, not
    masked by the legacy executor knob."""
    with Database(catalog=simple_catalog, placement="auto") as db:
        db.execute("SELECT a FROM t WHERE a = 1")
        assert db.service.stats().executor == "auto"
    with Database(catalog=simple_catalog, executor="thread") as db:
        assert db.service.stats().executor == "thread"


def test_resolve_params_rejects_short_default_vector(simple_db):
    """A statement whose extracted literals do not cover every
    parameter must refuse to execute with the short vector."""
    import dataclasses

    stmt = simple_db.prepare("SELECT a, b FROM t WHERE a = 10")
    # Simulate a mixed explicit-?/extracted-literal statement: one
    # extracted value standing in front of two expected parameters.
    mixed = dataclasses.replace(
        stmt.parameterized, num_params=2
    )
    broken = dataclasses.replace(stmt, parameterized=mixed)
    with pytest.raises(ServiceError, match="extracted only 1"):
        broken.resolve_params(None)
    # Well-formed defaults still pass through untouched.
    assert stmt.resolve_params(None) == (10,)


def test_shell_sql_uses_one_preparation_per_shape():
    """The shell must not pay extra codegen for column names."""
    import io

    from repro.cli import Shell

    shell = Shell(stdout=io.StringIO())
    shell.handle(".tpch 0.0005")
    compiler = shell.db.engine("hique").compiler
    before = compiler._counter
    shell.handle("SELECT count(*) AS n FROM orders WHERE o_orderkey < 5")
    shell.handle("SELECT count(*) AS n FROM orders WHERE o_orderkey < 9")
    assert compiler._counter == before + 1
    assert "n\n" in shell.stdout.getvalue()  # header still rendered


# -- compiler workdir cleanup --------------------------------------------------------


def test_engine_close_removes_generated_sources(simple_catalog):
    import os

    from repro.core.engine import HiqueEngine

    engine = HiqueEngine(simple_catalog)
    engine.execute("SELECT a FROM t WHERE a = 1")
    workdir = engine.compiler.workdir
    assert os.path.isdir(workdir)
    assert os.listdir(workdir)
    engine.close()
    assert not os.path.exists(workdir)


def test_caller_supplied_workdir_is_kept(tmp_path):
    from repro.core.compiler import QueryCompiler

    compiler = QueryCompiler(str(tmp_path))
    compiler.close()
    assert tmp_path.exists()
