"""Shared fixtures: small catalogues, a tiny TPC-H instance, engines."""

from __future__ import annotations

import random

import pytest

from repro import Database
from repro.bench.tpch import generate_tpch
from repro.storage import (
    Catalog,
    Column,
    DOUBLE,
    INT,
    Schema,
    char,
)


@pytest.fixture()
def simple_catalog() -> Catalog:
    """Two analysed tables: ``t`` (wide-ish) and ``u`` (joins on k)."""
    rng = random.Random(7)
    catalog = Catalog()
    t_schema = Schema(
        [
            Column("a", INT),
            Column("b", DOUBLE),
            Column("c", char(8)),
            Column("k", INT),
        ]
    )
    t = catalog.create_table("t", t_schema)
    t.load_rows(
        (i, i * 1.5, f"x{i % 3}", rng.randrange(10)) for i in range(200)
    )
    u_schema = Schema([Column("k", INT), Column("d", INT)])
    u = catalog.create_table("u", u_schema)
    u.load_rows((i % 10, i) for i in range(40))
    catalog.analyze()
    return catalog


@pytest.fixture()
def simple_db(simple_catalog: Catalog) -> Database:
    db = Database(catalog=simple_catalog)
    yield db
    db.close()


@pytest.fixture(scope="session")
def tpch_db() -> Database:
    """A tiny TPC-H instance shared across the session (read-only)."""
    db = Database(buffer_capacity=65_536)
    generate_tpch(db.catalog, scale_factor=0.001)
    return db


#: Query corpus used by the cross-engine differential tests.
DIFFERENTIAL_QUERIES = [
    "SELECT a, b FROM t",
    "SELECT a, b, c, k FROM t WHERE a < 100",
    "SELECT a FROM t WHERE a >= 150 AND k = 3",
    "SELECT c, count(*) AS n FROM t GROUP BY c",
    "SELECT c, sum(b) AS s, min(a) AS mn, max(a) AS mx, avg(b) AS av "
    "FROM t GROUP BY c ORDER BY s DESC",
    "SELECT k, count(*) AS n FROM t WHERE c = 'x1' GROUP BY k ORDER BY n "
    "DESC, k",
    "SELECT sum(a) AS s, count(*) AS n FROM t",
    "SELECT t.a, u.d FROM t, u WHERE t.k = u.k AND t.a < 30",
    "SELECT t.c, sum(u.d) AS s FROM t, u WHERE t.k = u.k GROUP BY t.c",
    "SELECT a, b FROM t ORDER BY b DESC LIMIT 7",
    "SELECT a, a + k AS apk, b * 2 AS b2 FROM t WHERE a < 20 ORDER BY apk",
    "SELECT k, sum(a + 1) AS s FROM t GROUP BY k ORDER BY k",
]
