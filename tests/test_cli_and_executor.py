"""Tests for the CLI shell, the executor internals, and the reference
evaluator's own behaviour."""

import io

import pytest

from repro.cli import Shell
from repro.core.executor import (
    build_agg_helpers,
    build_context,
    run_compiled,
)
from repro.plan.layout import ColumnLayout, ColumnSlot
from repro.plan.reference import evaluate as reference_evaluate
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.storage.types import DOUBLE, INT


class TestShell:
    def _shell(self):
        return Shell(stdout=io.StringIO())

    def _output(self, shell):
        return shell.stdout.getvalue()

    def test_create_and_query_via_tpch(self):
        shell = self._shell()
        assert shell.handle(".tpch 0.0005")
        assert shell.handle("SELECT count(*) AS n FROM nation")
        out = self._output(shell)
        assert "TPC-H" in out
        assert "25" in out

    def test_tables_listing(self):
        shell = self._shell()
        shell.handle(".tpch 0.0005")
        shell.handle(".tables")
        assert "lineitem" in self._output(shell)

    def test_engine_switch(self):
        shell = self._shell()
        shell.handle(".engine vectorized")
        assert shell.engine_kind == "vectorized"
        shell.handle(".engine nonsense")
        assert shell.engine_kind == "vectorized"
        assert "engines:" in self._output(shell)

    def test_explain_and_source(self):
        shell = self._shell()
        shell.handle(".tpch 0.0005")
        shell.handle(".explain SELECT count(*) AS n FROM nation")
        shell.handle(".source SELECT count(*) AS n FROM nation")
        out = self._output(shell)
        assert "ScanStage" in out
        assert "def run_query" in out

    def test_sql_error_reported_not_raised(self):
        shell = self._shell()
        shell.handle(".tpch 0.0005")
        assert shell.handle("SELECT nope FROM nation")
        assert "error:" in self._output(shell)

    def test_timing_toggle(self):
        shell = self._shell()
        shell.handle(".timing off")
        assert shell.timing is False

    def test_prepare_exec_and_cache_meta_commands(self):
        shell = self._shell()
        shell.handle(".tpch 0.0005")
        assert shell.handle(
            ".prepare SELECT o_orderkey, o_totalprice FROM orders "
            "WHERE o_orderkey = ?"
        )
        assert "1 parameter(s)" in self._output(shell)
        assert shell.handle(".exec 1")
        assert "o_totalprice" in self._output(shell)
        assert shell.handle(".exec 2")
        assert shell.handle(".cache")
        out = self._output(shell)
        assert "plan cache:" in out
        assert "WHERE o_orderkey = ?" in out
        assert shell.handle(".cache clear")
        assert "plan cache cleared" in self._output(shell)

    def test_exec_errors_are_reported_not_raised(self):
        shell = self._shell()
        shell.handle(".tpch 0.0005")
        assert shell.handle(".exec 1")  # nothing prepared yet
        assert "no prepared statement" in self._output(shell)
        shell.handle(".prepare SELECT o_orderkey FROM orders WHERE o_orderkey = ?")
        assert shell.handle(".exec")
        assert "expects 1 parameter(s)" in self._output(shell)
        assert shell.handle(".exec not-a-value")
        assert "cannot parse parameter" in self._output(shell)

    def test_literal_queries_share_cached_plan(self):
        shell = self._shell()
        shell.handle(".tpch 0.0005")
        shell.handle("SELECT count(*) AS n FROM orders WHERE o_orderkey < 5")
        shell.handle("SELECT count(*) AS n FROM orders WHERE o_orderkey < 9")
        stats = shell.db.service.stats()
        assert stats.cache.hits >= 1

    def test_quit_returns_false(self):
        assert self._shell().handle(".quit") is False

    def test_unknown_meta_command(self):
        shell = self._shell()
        shell.handle(".bogus")
        assert "unknown command" in self._output(shell)

    def test_empty_line_is_noop(self):
        assert self._shell().handle("   ") is True


class TestExecutorContext:
    def _plan(self, simple_catalog, sql, opt_level="O0"):
        from repro.plan.optimizer import Optimizer

        bound = Binder(simple_catalog).bind(parse(sql))
        return Optimizer(simple_catalog).plan(bound)

    def test_context_resolves_tables(self, simple_catalog):
        plan = self._plan(
            simple_catalog, "SELECT t.a, u.d FROM t, u WHERE t.k = u.k"
        )
        ctx = build_context(plan)
        assert set(ctx.tables) == {"t", "u"}

    def test_o2_context_has_no_closures(self, simple_catalog):
        plan = self._plan(simple_catalog, "SELECT a FROM t WHERE a < 5")
        ctx = build_context(plan, opt_level="O2")
        assert not ctx.predicates
        assert not ctx.projectors

    def test_o0_context_builds_closures(self, simple_catalog):
        plan = self._plan(simple_catalog, "SELECT a FROM t WHERE a < 5")
        ctx = build_context(plan, opt_level="O0")
        scan_id = plan.operators[0].op_id
        assert callable(ctx.predicates[scan_id])
        assert ctx.projectors[scan_id]((7, 1.0, "x", 3)) == (7,)

    def test_single_column_projector_returns_tuple(self, simple_catalog):
        plan = self._plan(simple_catalog, "SELECT b FROM t")
        ctx = build_context(plan, opt_level="O0")
        scan_id = plan.operators[0].op_id
        result = ctx.projectors[scan_id]((1, 2.5, "x", 3))
        assert result == (2.5,)

    def test_agg_helpers_avg_empty_group_is_none(self):
        from repro.plan.descriptors import Aggregate
        from repro.sql.bound import BoundAggregate, BoundColumn, BoundOutput

        layout = ColumnLayout([ColumnSlot("t", "v", INT)])
        value = BoundColumn("t", "v", INT)
        op = Aggregate(
            op_id=1,
            output_layout=layout,
            input_op=0,
            group_positions=(),
            outputs=(
                BoundOutput(
                    "m", BoundAggregate("avg", value, DOUBLE), DOUBLE,
                    "aggregate",
                ),
            ),
        )
        helpers = build_agg_helpers(op, layout)
        assert helpers.finalize((), helpers.init()) == (None,)

    def test_agg_helpers_arithmetic_over_aggregates(self):
        from repro.plan.descriptors import Aggregate
        from repro.sql.bound import (
            BoundAggregate,
            BoundArithmetic,
            BoundColumn,
            BoundOutput,
        )

        layout = ColumnLayout([ColumnSlot("t", "v", INT)])
        value = BoundColumn("t", "v", INT)
        ratio = BoundArithmetic(
            "/",
            BoundAggregate("sum", value, INT),
            BoundAggregate("count", None, INT),
            DOUBLE,
        )
        op = Aggregate(
            op_id=1,
            output_layout=layout,
            input_op=0,
            group_positions=(),
            outputs=(BoundOutput("m", ratio, DOUBLE, "aggregate"),),
        )
        helpers = build_agg_helpers(op, layout)
        state = helpers.init()
        helpers.update(state, (4,))
        helpers.update(state, (8,))
        assert helpers.finalize((), state) == (6.0,)


class TestReferenceEvaluator:
    def _bound(self, simple_catalog, sql):
        return Binder(simple_catalog).bind(parse(sql))

    def test_hand_computed_aggregation(self, simple_catalog):
        bound = self._bound(
            simple_catalog, "SELECT sum(a) AS s, count(*) AS n FROM t"
        )
        assert reference_evaluate(bound) == [(sum(range(200)), 200)]

    def test_hand_computed_filter(self, simple_catalog):
        bound = self._bound(simple_catalog, "SELECT a FROM t WHERE a < 3")
        assert sorted(reference_evaluate(bound)) == [(0,), (1,), (2,)]

    def test_join_cardinality(self, simple_catalog):
        bound = self._bound(
            simple_catalog, "SELECT t.a, u.d FROM t, u WHERE t.k = u.k"
        )
        # Each of the 200 t rows matches exactly 4 of the 40 u rows.
        assert len(reference_evaluate(bound)) == 800

    def test_cartesian_product(self, simple_catalog):
        bound = self._bound(simple_catalog, "SELECT t.a, u.d FROM t, u")
        assert len(reference_evaluate(bound)) == 200 * 40

    def test_limit_and_order(self, simple_catalog):
        bound = self._bound(
            simple_catalog, "SELECT a FROM t ORDER BY a DESC LIMIT 2"
        )
        assert reference_evaluate(bound) == [(199,), (198,)]


class TestDiskBackedExecution:
    def test_hique_over_disk_file(self, tmp_path):
        """End to end over a real on-disk heap file with a small pool."""
        from repro.core.engine import HiqueEngine
        from repro.storage import (
            BufferManager,
            Catalog,
            Column,
            DiskFile,
            INT,
            Schema,
            Table,
        )

        buffer = BufferManager(capacity=4)  # force evictions
        catalog = Catalog(buffer)
        schema = Schema([Column("k", INT), Column("v", INT)])
        file = DiskFile(str(tmp_path / "t.dat"))
        table = Table("t", schema, file=file, buffer=buffer)
        table.load_rows((i % 10, i) for i in range(2_000))
        catalog.register(table)
        catalog.analyze()

        engine = HiqueEngine(catalog)
        rows = engine.execute(
            "SELECT k, sum(v) AS s FROM t GROUP BY k ORDER BY k"
        )
        expected = [
            (g, sum(i for i in range(2_000) if i % 10 == g))
            for g in range(10)
        ]
        assert rows == expected
        assert buffer.stats.evictions > 0  # the pool actually cycled
        file.close()
