"""Build a Volcano iterator tree from a physical plan.

The same optimizer output drives both backends: where HIQUE instantiates
code templates, this builder instantiates iterator objects.  Generic vs
optimized configuration controls predicate/projection code quality, and
an optional buffering flag (the System X analogue) inserts the blocking
buffer operator of [25] between operators.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import itemgetter

from repro.core.executor import build_agg_helpers
from repro.engines.volcano.aggregates import (
    HashAggregate,
    HybridAggregate,
    SortAggregate,
)
from repro.engines.volcano.base import Iterator
from repro.engines.volcano.joins import (
    FineHashJoin,
    HybridJoin,
    MergeJoin,
    NestedLoopsJoin,
)
from repro.engines.volcano.operators import (
    Buffer,
    Identity,
    Filter,
    LimitOperator,
    OrderBy,
    Project,
    SortOperator,
    TableScan,
    make_generic_projector,
)
from repro.errors import PlanError
from repro.memsim.probe import NULL_PROBE, NullProbe
from repro.plan.descriptors import (
    AGG_HYBRID,
    AGG_MAP,
    AGG_SORT,
    JOIN_HASH,
    JOIN_HYBRID,
    JOIN_MERGE,
    JOIN_NESTED,
    Aggregate,
    Join,
    Limit,
    MultiwayJoin,
    PhysicalPlan,
    PREP_SORT,
    Project as ProjectOp,
    Restage,
    ScanStage,
    Sort,
)
from repro.plan.expressions import (
    make_conjunction,
    make_evaluator,
    make_predicate,
)
from repro.plan.layout import ColumnLayout, ColumnSlot


@dataclass
class BuildOptions:
    """Code-quality knobs for the iterator engine."""

    generic: bool = False
    buffered: bool = False
    buffer_block: int = 128
    #: Emulate compiling without optimizations (Table II "-O0"): wrap
    #: every operator in an extra un-inlined call layer.
    deopt: bool = False


def build_tree(
    plan: PhysicalPlan,
    options: BuildOptions | None = None,
    probe: NullProbe = NULL_PROBE,
    params: tuple = (),
) -> Iterator:
    """Instantiate the iterator tree for a plan's root."""
    if options is None:
        options = BuildOptions()
    built: dict[int, Iterator] = {}
    for operator in plan.operators:
        node = _build_operator(plan, operator, built, options, probe, params)
        if options.deopt:
            node = Identity(node, probe)
        built[operator.op_id] = node
    return built[plan.root.op_id]


def _build_operator(
    plan: PhysicalPlan,
    operator,
    built: dict[int, Iterator],
    options: BuildOptions,
    probe: NullProbe,
    params: tuple = (),
) -> Iterator:
    if isinstance(operator, ScanStage):
        return _build_scan(operator, options, probe, params)
    if isinstance(operator, Restage):
        child = _maybe_buffer(built[operator.input_op], options, probe)
        if operator.prep.kind == PREP_SORT:
            return SortOperator(child, operator.prep.keys, probe)
        # Partition preps are handled inside the consuming join/aggregate.
        return child
    if isinstance(operator, Join):
        left = _maybe_buffer(built[operator.left_op], options, probe)
        right = _maybe_buffer(built[operator.right_op], options, probe)
        if operator.algorithm == JOIN_MERGE:
            node: Iterator = MergeJoin(
                left, right, operator.left_key, operator.right_key, probe
            )
        elif operator.algorithm == JOIN_HYBRID:
            node = HybridJoin(
                left, right, operator.left_key, operator.right_key,
                probe=probe,
            )
        elif operator.algorithm == JOIN_HASH:
            node = FineHashJoin(
                left, right, operator.left_key, operator.right_key, probe
            )
        elif operator.algorithm == JOIN_NESTED:
            node = NestedLoopsJoin(left, right, probe)
        else:
            raise PlanError(
                f"unknown join algorithm {operator.algorithm!r}"
            )
        if operator.residuals:
            fused = make_conjunction(
                operator.residuals, operator.output_layout, params
            )
            node = Filter(node, [], fused=fused, probe=probe)
        return node
    if isinstance(operator, MultiwayJoin):
        # The iterator engine has no join teams (the paper's Figure 7(b)
        # compares HIQUE teams against binary iterator joins): decompose
        # into a left-deep cascade of binary merge joins.
        current = _maybe_buffer(built[operator.input_ops[0]], options, probe)
        current_key = operator.key_positions[0]
        merge_team = operator.algorithm == JOIN_MERGE
        for k in range(1, len(operator.input_ops)):
            right = _maybe_buffer(
                built[operator.input_ops[k]], options, probe
            )
            if merge_team:
                # Inputs were sort-staged: binary merge joins compose.
                current = MergeJoin(
                    current,
                    right,
                    current_key,
                    operator.key_positions[k],
                    probe,
                )
            else:
                # Inputs were partition-staged (unsorted): each binary
                # step re-partitions and sorts internally.
                current = HybridJoin(
                    current,
                    right,
                    current_key,
                    operator.key_positions[k],
                    probe=probe,
                )
        return current
    if isinstance(operator, Aggregate):
        child = _maybe_buffer(built[operator.input_op], options, probe)
        input_layout = plan.op(operator.input_op).output_layout
        helpers = build_agg_helpers(operator, input_layout, params)
        if not operator.group_positions or operator.algorithm == AGG_MAP:
            return HashAggregate(child, helpers, probe)
        if operator.algorithm == AGG_SORT:
            return SortAggregate(
                child, operator.group_positions, helpers, probe
            )
        if operator.algorithm == AGG_HYBRID:
            return HybridAggregate(
                child, operator.group_positions, helpers, probe=probe
            )
        raise PlanError(
            f"unknown aggregation algorithm {operator.algorithm!r}"
        )
    if isinstance(operator, ProjectOp):
        child = _maybe_buffer(built[operator.input_op], options, probe)
        input_layout = plan.op(operator.input_op).output_layout
        evaluators = [
            make_evaluator(output.expr, input_layout, params)
            for output in operator.outputs
        ]
        calls = len(evaluators) if options.generic else 1

        def projector(row: tuple, _evals=tuple(evaluators)) -> tuple:
            return tuple(evaluate(row) for evaluate in _evals)

        return Project(child, projector, calls, probe)
    if isinstance(operator, Sort):
        child = _maybe_buffer(built[operator.input_op], options, probe)
        return OrderBy(child, operator.keys, probe)
    if isinstance(operator, Limit):
        child = built[operator.input_op]
        return LimitOperator(child, operator.count, probe)
    raise PlanError(f"cannot build iterator for {type(operator).__name__}")


def _build_scan(
    operator: ScanStage,
    options: BuildOptions,
    probe: NullProbe,
    params: tuple = (),
) -> Iterator:
    table = operator.table
    node: Iterator = TableScan(table, generic=options.generic, probe=probe)
    table_layout = ColumnLayout(
        ColumnSlot(operator.binding, column.name, column.dtype)
        for column in table.schema
    )
    if operator.filters:
        if options.generic:
            conjuncts = [
                make_predicate(comparison, table_layout, params)
                for comparison in operator.filters
            ]
            node = Filter(node, conjuncts, fused=None, probe=probe)
        else:
            fused = make_conjunction(operator.filters, table_layout, params)
            node = Filter(node, [], fused=fused, probe=probe)
    positions = [
        table.schema.index_of(slot.column)
        for slot in operator.output_layout.slots
    ]
    if options.generic:
        projector, calls = make_generic_projector(positions)
        node = Project(node, projector, calls, probe)
    else:
        if len(positions) == 1:
            only = positions[0]
            projector = lambda row: (row[only],)  # noqa: E731
        else:
            getter = itemgetter(*positions)
            projector = lambda row: getter(row)  # noqa: E731
        node = Project(node, projector, 1, probe)
    if operator.prep.kind == PREP_SORT:
        node = SortOperator(node, operator.prep.keys, probe)
    # Partition preps are performed inside the consuming blocking
    # operator (HybridJoin/FineHashJoin/HybridAggregate).
    return _maybe_buffer(node, options, probe)


def _maybe_buffer(
    node: Iterator, options: BuildOptions, probe: NullProbe
) -> Iterator:
    if options.buffered:
        return Buffer(node, options.buffer_block, probe)
    return node
