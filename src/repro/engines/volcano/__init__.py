"""Volcano iterator engine (the paper's comparison baseline)."""

from repro.engines.volcano.base import Iterator, drain, iterate
from repro.engines.volcano.builder import BuildOptions, build_tree
from repro.engines.volcano.engine import VolcanoEngine

__all__ = [
    "BuildOptions",
    "Iterator",
    "VolcanoEngine",
    "build_tree",
    "drain",
    "iterate",
]
