"""The iterator (Volcano) model: open / next / close.

Section II-B of the paper.  Every operator implements the three-function
interface; tuples move one at a time through ``next()`` calls.  The
probe hooks model the costs the paper attributes to the model: at least
two function calls per in-flight tuple (caller request + callee
propagation), per-call iterator state maintenance, and — in the
*generic* configuration — a further call per field access and per
predicate evaluation, standing in for virtual functions bound to the
processed data types.
"""

from __future__ import annotations

from typing import Iterator as PyIterator

from repro.errors import ExecutionError
from repro.memsim import costs
from repro.memsim.probe import NULL_PROBE, NullProbe

#: Modeled size of an operator's internal state in bytes (cursor, child
#: pointers, bookkeeping) — touched on every call.
STATE_BYTES = 64


class Iterator:
    """Base class for Volcano operators."""

    def __init__(self, probe: NullProbe = NULL_PROBE):
        self.probe = probe
        self._state_addr: int | None = None
        if probe.enabled:
            self._state_addr = probe.space.alloc(STATE_BYTES)
        self._opened = False

    # -- the iterator interface ----------------------------------------------
    def open(self) -> None:
        self._opened = True

    def next(self) -> tuple | None:
        raise NotImplementedError

    def close(self) -> None:
        self._opened = False

    # -- probe helpers ------------------------------------------------------------
    def child_next(self, child: "Iterator") -> tuple | None:
        """Pull one tuple from a child, charging the call round trip.

        Pulling from a buffering child whose block is non-empty is a
        short hop (an array fetch), which is exactly the saving of the
        buffering operator [25]: only block refills pay the full
        iterator-call cost.
        """
        probe = self.probe
        if probe.enabled:
            if child.serves_buffered():
                probe.instr(2)  # amortised in-block fetch
            else:
                # One call for the request and one for the propagation.
                probe.call(2)
                probe.instr(costs.ITERATOR_STATE_INSTRUCTIONS)
                probe.load(self._state_addr, STATE_BYTES)
        return child.next()

    def serves_buffered(self) -> bool:
        """Whether the next ``next()`` is served from a filled buffer."""
        return False

    def touch_state(self) -> None:
        """Charge one iterator-state update (per produced tuple)."""
        probe = self.probe
        if probe.enabled:
            probe.instr(costs.ITERATOR_STATE_INSTRUCTIONS)
            probe.load(self._state_addr, STATE_BYTES)


def drain(root: Iterator) -> list[tuple]:
    """Run a tree to completion, collecting the result rows."""
    root.open()
    out: list[tuple] = []
    append = out.append
    probe = root.probe
    try:
        while True:
            if probe.enabled:
                if root.serves_buffered():
                    probe.instr(2)
                else:
                    probe.call(2)  # the consumer's request/propagation pair
            row = root.next()
            if row is None:
                break
            append(row)
    finally:
        root.close()
    return out


def iterate(root: Iterator) -> PyIterator[tuple]:
    """Generator façade over a tree (used by tests and examples)."""
    root.open()
    try:
        while True:
            row = root.next()
            if row is None:
                return
            yield row
    finally:
        root.close()


def require_open(operator: Iterator) -> None:
    if not operator._opened:
        raise ExecutionError(
            f"{type(operator).__name__}.next() before open()"
        )
