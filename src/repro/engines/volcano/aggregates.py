"""Iterator aggregation operators: sort, hybrid hash-sort, and map.

The aggregation-function machinery (accumulators, finalisation) is the
same closure bundle the O0 generated code uses —
:class:`~repro.core.executor.AggHelpers` — so that the iterator engine
implements the identical semantics through the identical generic calls,
just with per-tuple ``next()`` traffic on top.
"""

from __future__ import annotations

from operator import itemgetter

from repro.core.executor import AggHelpers
from repro.engines.volcano.base import Iterator
from repro.engines.volcano.operators import Materialize, _charge_sort
from repro.memsim import costs
from repro.memsim.probe import NULL_PROBE, NullProbe


class SortAggregate(Iterator):
    """Streaming aggregation over a child sorted on the group keys."""

    def __init__(
        self,
        child: Iterator,
        group_positions: tuple[int, ...],
        helpers: AggHelpers,
        probe: NullProbe = NULL_PROBE,
    ):
        super().__init__(probe)
        self.child = child
        self.group_positions = group_positions
        self.helpers = helpers
        self._pending_row: tuple | None = None
        self._done = False

    def open(self) -> None:
        super().open()
        self.child.open()
        self._pending_row = None
        self._done = False

    def close(self) -> None:
        self.child.close()
        super().close()

    def next(self) -> tuple | None:
        if self._done:
            return None
        helpers = self.helpers
        probe = self.probe
        row = self._pending_row
        if row is None:
            row = self.child_next(self.child)
            if row is None:
                self._done = True
                if not self.group_positions:
                    # Global aggregate over an empty input still yields
                    # one row.
                    return helpers.finalize((), helpers.init())
                return None
        key = helpers.key_fn(row)
        state = helpers.init()
        while row is not None:
            if probe.enabled:
                probe.call(1)  # aggregate-update helper call
                probe.instr(costs.AGGREGATE_UPDATE_INSTRUCTIONS)
            helpers.update(state, row)
            row = self.child_next(self.child)
            if row is None:
                self._done = True
                break
            if helpers.key_fn(row) != key:
                break
        self._pending_row = row
        self.touch_state()
        return helpers.finalize(key, state)


class HashAggregate(Iterator):
    """Map-style aggregation: one pass, value directories (a dict)."""

    def __init__(
        self,
        child: Iterator,
        helpers: AggHelpers,
        probe: NullProbe = NULL_PROBE,
    ):
        super().__init__(probe)
        self.child = child
        self.helpers = helpers
        self._results: list[tuple] = []
        self._cursor = 0

    def open(self) -> None:
        super().open()
        self.child.open()
        helpers = self.helpers
        probe = self.probe
        groups: dict[tuple, list] = {}
        order: list[tuple] = []
        saw_row = False
        dir_addr = probe.space.alloc(1 << 22) if probe.enabled else 0
        while True:
            row = self.child_next(self.child)
            if row is None:
                break
            saw_row = True
            key = helpers.key_fn(row)
            state = groups.get(key)
            if state is None:
                state = helpers.init()
                groups[key] = state
                order.append(key)
            if probe.enabled:
                probe.call(2)  # key extraction + update helper calls
                probe.instr(
                    costs.HASH_INSTRUCTIONS
                    + costs.AGGREGATE_UPDATE_INSTRUCTIONS
                )
                # Directory + aggregate-slot access, random in the
                # directory region (grows with the number of groups).
                probe.load(
                    dir_addr
                    + (hash(key) % max(len(groups), 1)) * 48,
                    48,
                )
            helpers.update(state, row)
        if not saw_row and not order:
            # Global aggregates produce a single row even on empty input.
            if not _has_group_keys(helpers):
                order.append(())
                groups[()] = helpers.init()
        self._results = [
            helpers.finalize(key, groups[key]) for key in order
        ]
        self._cursor = 0

    def close(self) -> None:
        self.child.close()
        super().close()

    def next(self) -> tuple | None:
        if self._cursor >= len(self._results):
            return None
        row = self._results[self._cursor]
        self._cursor += 1
        self.touch_state()
        return row


class HybridAggregate(Iterator):
    """Hybrid hash-sort aggregation: partition on the first group key,
    sort each partition on all keys, aggregate per partition."""

    def __init__(
        self,
        child: Iterator,
        group_positions: tuple[int, ...],
        helpers: AggHelpers,
        num_partitions: int = 64,
        probe: NullProbe = NULL_PROBE,
    ):
        super().__init__(probe)
        self.child = Materialize(child, probe)
        self.group_positions = group_positions
        self.helpers = helpers
        self.num_partitions = num_partitions
        self._results: list[tuple] = []
        self._cursor = 0

    def open(self) -> None:
        super().open()
        self.child.open()
        helpers = self.helpers
        probe = self.probe
        mask = self.num_partitions - 1
        first = self.group_positions[0]
        partitions: list[list[tuple]] = [
            [] for _ in range(self.num_partitions)
        ]
        band = 1 << 20
        part_addr = (
            probe.space.alloc(self.num_partitions * band)
            if probe.enabled
            else 0
        )
        for row in self.child.rows:
            bucket = hash(row[first]) & mask
            partitions[bucket].append(row)
            if probe.enabled:
                probe.instr(costs.HASH_INSTRUCTIONS)
                probe.load(
                    part_addr + bucket * band
                    + (len(partitions[bucket]) * 24) % band,
                    24,
                )
        key_of = (
            itemgetter(self.group_positions[0])
            if len(self.group_positions) == 1
            else itemgetter(*self.group_positions)
        )
        results: list[tuple] = []
        for partition in partitions:
            if not partition:
                continue
            partition.sort(key=key_of)
            _charge_sort(probe, len(partition))
            current_key: tuple | None = None
            state: list | None = None
            row_index = 0
            for row in partition:
                key = helpers.key_fn(row)
                if key != current_key:
                    if state is not None:
                        results.append(helpers.finalize(current_key, state))
                    current_key = key
                    state = helpers.init()
                if probe.enabled:
                    probe.call(1)
                    probe.instr(costs.AGGREGATE_UPDATE_INSTRUCTIONS)
                    probe.load(part_addr + (row_index * 24) % band, 24)
                helpers.update(state, row)
                row_index += 1
            if state is not None:
                results.append(helpers.finalize(current_key, state))
        self._results = results
        self._cursor = 0

    def close(self) -> None:
        self.child.close()
        super().close()

    def next(self) -> tuple | None:
        if self._cursor >= len(self._results):
            return None
        row = self._results[self._cursor]
        self._cursor += 1
        self.touch_state()
        return row


def _has_group_keys(helpers: AggHelpers) -> bool:
    """Whether the helpers' key function extracts any attributes.

    Applying the key function to an empty row succeeds (yielding the
    empty key) exactly when there are no grouping attributes.
    """
    try:
        return len(helpers.key_fn(())) > 0
    except IndexError:
        return True
