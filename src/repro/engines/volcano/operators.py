"""Volcano operator implementations.

Two code-quality configurations share these classes, matching the
paper's Section VI-A comparison:

* **generic** (``generic=True``) — field accesses and predicate
  evaluations go through per-field accessor functions (the stand-in for
  virtual, type-erased iterator functions), and scans decode tuples one
  field at a time;
* **optimized** (``generic=False``) — type-specialised: scans bulk
  decode rows, predicates are a single fused closure, projections use
  ``itemgetter``.

Both remain iterators: every tuple still crosses every operator
boundary through ``next()``.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Callable, Sequence

from repro.engines.volcano.base import Iterator
from repro.memsim import costs
from repro.memsim.probe import NULL_PROBE, NullProbe
from repro.storage.page import HEADER_SIZE
from repro.storage.table import Table


class TableScan(Iterator):
    """Full scan of an NSM table, decoding tuples to Python rows."""

    def __init__(
        self,
        table: Table,
        generic: bool = False,
        probe: NullProbe = NULL_PROBE,
    ):
        super().__init__(probe)
        self.table = table
        self.generic = generic
        self._page_no = 0
        self._slot = 0
        self._page = None
        self._file_id = table.file.file_id

    def open(self) -> None:
        super().open()
        self._page_no = 0
        self._slot = 0
        self._page = None

    def next(self) -> tuple | None:
        while True:
            if self._page is None:
                if self._page_no >= self.table.num_pages:
                    return None
                self._page = self.table.read_page(self._page_no)
                self._slot = 0
            page = self._page
            if self._slot >= page.num_tuples:
                self._page = None
                self._page_no += 1
                continue
            slot = self._slot
            self._slot += 1
            self.touch_state()
            if self.generic:
                return self._decode_generic(page, slot)
            return self._decode_optimized(page, slot)

    def _decode_optimized(self, page, slot: int) -> tuple:
        probe = self.probe
        if probe.enabled:
            schema = page.schema
            base = probe.space.page_addr(
                self._file_id, self._page_no, page.slot_offset(slot)
            )
            probe.load(base, schema.tuple_size)
            probe.instr(
                len(schema) * costs.FIELD_ACCESS_INSTRUCTIONS
                + costs.LOOP_ITER_INSTRUCTIONS
            )
        return page.read(slot)

    def _decode_generic(self, page, slot: int) -> tuple:
        """Field-at-a-time decode through accessor calls (virtual-ish)."""
        schema = page.schema
        probe = self.probe
        values = []
        offset = page.slot_offset(slot)
        for index, column in enumerate(schema.columns):
            if probe.enabled:
                probe.call(1)  # one accessor call per field
                probe.load(
                    probe.space.page_addr(
                        self._file_id,
                        self._page_no,
                        offset + schema.offset_of(index),
                    ),
                    column.dtype.size,
                )
                probe.instr(costs.FIELD_ACCESS_INSTRUCTIONS)
            values.append(page.read_field(slot, index))
        return tuple(values)


class Filter(Iterator):
    """Selection.  Generic mode evaluates each conjunct via its own
    closure (a call per predicate per tuple); optimized mode uses one
    fused conjunction closure."""

    def __init__(
        self,
        child: Iterator,
        conjuncts: Sequence[Callable[[tuple], bool]],
        fused: Callable[[tuple], bool] | None = None,
        probe: NullProbe = NULL_PROBE,
    ):
        super().__init__(probe)
        self.child = child
        self.conjuncts = list(conjuncts)
        self.fused = fused

    def open(self) -> None:
        super().open()
        self.child.open()

    def close(self) -> None:
        self.child.close()
        super().close()

    def next(self) -> tuple | None:
        probe = self.probe
        while True:
            row = self.child_next(self.child)
            if row is None:
                return None
            if self.fused is not None:
                if probe.enabled:
                    probe.call(1)
                    probe.instr(costs.PREDICATE_INSTRUCTIONS)
                if self.fused(row):
                    return row
                continue
            passed = True
            for predicate in self.conjuncts:
                if probe.enabled:
                    probe.call(1)
                    probe.instr(costs.PREDICATE_INSTRUCTIONS)
                if not predicate(row):
                    passed = False
                    break
            if passed:
                return row


class Project(Iterator):
    """Column projection / expression evaluation."""

    def __init__(
        self,
        child: Iterator,
        projector: Callable[[tuple], tuple],
        calls_per_tuple: int = 1,
        probe: NullProbe = NULL_PROBE,
    ):
        super().__init__(probe)
        self.child = child
        self.projector = projector
        self.calls_per_tuple = calls_per_tuple

    def open(self) -> None:
        super().open()
        self.child.open()

    def close(self) -> None:
        self.child.close()
        super().close()

    def next(self) -> tuple | None:
        row = self.child_next(self.child)
        if row is None:
            return None
        probe = self.probe
        if probe.enabled:
            probe.call(self.calls_per_tuple)
            probe.instr(
                costs.COPY_WORD_INSTRUCTIONS * self.calls_per_tuple
            )
        return self.projector(row)


class Materialize(Iterator):
    """Blocking helper: drains a child into a list on open()."""

    def __init__(self, child: Iterator, probe: NullProbe = NULL_PROBE):
        super().__init__(probe)
        self.child = child
        self.rows: list[tuple] = []
        self._cursor = 0
        self._buffer_addr: int | None = None
        self._row_bytes = 8

    def touch_row(self, index: int) -> None:
        """Charge one read of a materialised row (used by consumers that
        index into ``rows`` directly, e.g. merge join)."""
        if self.probe.enabled and self._buffer_addr is not None:
            self.probe.load(
                self._buffer_addr + index * self._row_bytes,
                self._row_bytes,
            )

    def open(self) -> None:
        super().open()
        self.child.open()
        self.rows = []
        append = self.rows.append
        while True:
            row = self.child_next(self.child)
            if row is None:
                break
            append(row)
        self.child.close()
        self._cursor = 0
        probe = self.probe
        if probe.enabled and self.rows:
            self._row_bytes = len(self.rows[0]) * 8
            self._buffer_addr = probe.space.alloc(
                len(self.rows) * self._row_bytes
            )
            # Charge the sequential write sweep of the materialisation.
            for i in range(0, len(self.rows), 8):
                probe.load(
                    self._buffer_addr + i * self._row_bytes,
                    self._row_bytes * 8,
                )

    def materialized(self) -> list[tuple]:
        return self.rows

    def next(self) -> tuple | None:
        if self._cursor >= len(self.rows):
            return None
        row = self.rows[self._cursor]
        probe = self.probe
        if probe.enabled and self._buffer_addr is not None:
            probe.load(
                self._buffer_addr + self._cursor * len(row) * 8,
                len(row) * 8,
            )
        self._cursor += 1
        self.touch_state()
        return row


class SortOperator(Materialize):
    """Blocking sort (single direction keys)."""

    def __init__(
        self,
        child: Iterator,
        positions: Sequence[int],
        probe: NullProbe = NULL_PROBE,
    ):
        super().__init__(child, probe)
        self.positions = list(positions)

    def open(self) -> None:
        super().open()
        key = (
            itemgetter(self.positions[0])
            if len(self.positions) == 1
            else itemgetter(*self.positions)
        )
        self.rows.sort(key=key)
        _charge_sort(self.probe, len(self.rows))


class OrderBy(Materialize):
    """Blocking ORDER BY with per-key directions (stable passes)."""

    def __init__(
        self,
        child: Iterator,
        keys: Sequence[tuple[int, bool]],
        probe: NullProbe = NULL_PROBE,
    ):
        super().__init__(child, probe)
        self.keys = list(keys)

    def open(self) -> None:
        super().open()
        for position, ascending in reversed(self.keys):
            self.rows.sort(key=itemgetter(position), reverse=not ascending)
        _charge_sort(self.probe, len(self.rows))


class LimitOperator(Iterator):
    def __init__(
        self, child: Iterator, count: int, probe: NullProbe = NULL_PROBE
    ):
        super().__init__(probe)
        self.child = child
        self.count = count
        self._produced = 0

    def open(self) -> None:
        super().open()
        self.child.open()
        self._produced = 0

    def close(self) -> None:
        self.child.close()
        super().close()

    def next(self) -> tuple | None:
        if self._produced >= self.count:
            return None
        row = self.child_next(self.child)
        if row is None:
            return None
        self._produced += 1
        return row


class Buffer(Iterator):
    """The buffering operator of Zhou & Ross [25], used by the System X
    analogue: it drains its child in blocks, amortising the per-tuple
    iterator call overhead across ``block_size`` tuples."""

    def __init__(
        self,
        child: Iterator,
        block_size: int = 128,
        probe: NullProbe = NULL_PROBE,
    ):
        super().__init__(probe)
        self.child = child
        self.block_size = block_size
        self._block: list[tuple] = []
        self._cursor = 0

    def open(self) -> None:
        super().open()
        self.child.open()
        self._block = []
        self._cursor = 0

    def close(self) -> None:
        self.child.close()
        super().close()

    def serves_buffered(self) -> bool:
        return self._cursor < len(self._block)

    def next(self) -> tuple | None:
        if self._cursor >= len(self._block):
            self._block = []
            self._cursor = 0
            append = self._block.append
            # One call round trip per block rather than per tuple.
            if self.probe.enabled:
                self.probe.call(2)
                self.probe.instr(costs.ITERATOR_STATE_INSTRUCTIONS)
            for _ in range(self.block_size):
                row = self.child.next()
                if row is None:
                    break
                append(row)
            if not self._block:
                return None
        row = self._block[self._cursor]
        self._cursor += 1
        return row


def _charge_sort(probe: NullProbe, n: int) -> None:
    if probe.enabled and n > 1:
        import math

        probe.instr(int(n * math.log2(n)) * costs.SORT_STEP_INSTRUCTIONS)


class Identity(Iterator):
    """A pass-through operator adding one call layer per tuple.

    Used to emulate compiling without optimizations (Table II's ``-O0``
    column): un-inlined code pays an extra call/return round trip at
    every operator boundary, which is exactly what this models.
    """

    def __init__(self, child: Iterator, probe: NullProbe = NULL_PROBE):
        super().__init__(probe)
        self.child = child

    def open(self) -> None:
        super().open()
        self.child.open()

    def close(self) -> None:
        self.child.close()
        super().close()

    def next(self) -> tuple | None:
        return self.child_next(self.child)


class FunctionScan(Iterator):
    """Adapts a materialised list of rows into an iterator (tests)."""

    def __init__(self, rows: list[tuple], probe: NullProbe = NULL_PROBE):
        super().__init__(probe)
        self.rows = rows
        self._cursor = 0

    def open(self) -> None:
        super().open()
        self._cursor = 0

    def next(self) -> tuple | None:
        if self._cursor >= len(self.rows):
            return None
        row = self.rows[self._cursor]
        self._cursor += 1
        self.touch_state()
        return row


def make_generic_projector(
    positions: Sequence[int], probe: NullProbe = NULL_PROBE
) -> tuple[Callable[[tuple], tuple], int]:
    """Per-field accessor-based projector (generic mode).

    Returns the projector and the number of accessor calls it performs
    per tuple, for probe accounting.
    """
    accessors: list[Callable[[tuple], Any]] = [
        (lambda row, _p=p: row[_p]) for p in positions
    ]

    def project(row: tuple) -> tuple:
        return tuple(access(row) for access in accessors)

    return project, len(accessors)
