"""Iterator join operators: merge, hybrid hash-sort-merge, fine hash,
and blocked nested loops.

These are the "iterator-based versions of the proposed algorithms" the
paper benchmarks against HIQUE in Section VI-B: the same staged
algorithms, but with per-tuple ``next()`` traffic and closure-based
comparisons instead of generated inline code.
"""

from __future__ import annotations

from operator import itemgetter

from repro.engines.volcano.base import Iterator
from repro.engines.volcano.operators import Materialize, _charge_sort
from repro.memsim import costs
from repro.memsim.probe import NULL_PROBE, NullProbe


class MergeJoin(Iterator):
    """Merge join over children sorted on their join keys."""

    def __init__(
        self,
        left: Iterator,
        right: Iterator,
        left_key: int,
        right_key: int,
        probe: NullProbe = NULL_PROBE,
    ):
        super().__init__(probe)
        self.left = Materialize(left, probe)
        self.right = Materialize(right, probe)
        self.left_key = left_key
        self.right_key = right_key
        self._i = 0
        self._j = 0
        self._group_start = 0
        self._group_end = 0
        self._emit_j = 0
        self._in_group = False

    def open(self) -> None:
        super().open()
        self.left.open()
        self.right.open()
        self._i = 0
        self._j = 0
        self._in_group = False

    def close(self) -> None:
        self.left.close()
        self.right.close()
        super().close()

    def next(self) -> tuple | None:
        left_rows = self.left.rows
        right_rows = self.right.rows
        lk, rk = self.left_key, self.right_key
        probe = self.probe
        while True:
            self.touch_state()
            if self._in_group:
                if self._emit_j < self._group_end:
                    row = (
                        left_rows[self._i] + right_rows[self._emit_j]
                    )
                    self._emit_j += 1
                    if probe.enabled:
                        probe.instr(costs.LOOP_ITER_INSTRUCTIONS)
                        self.left.touch_row(self._i)
                        self.right.touch_row(self._emit_j - 1)
                    return row
                # Outer tuple exhausted its group: advance, maybe backtrack.
                self._i += 1
                if (
                    self._i < len(left_rows)
                    and left_rows[self._i][lk]
                    == right_rows[self._group_start][rk]
                ):
                    self._emit_j = self._group_start
                    continue
                self._in_group = False
                self._j = self._group_end
                continue
            if self._i >= len(left_rows) or self._j >= len(right_rows):
                return None
            key = left_rows[self._i][lk]
            right_value = right_rows[self._j][rk]
            if probe.enabled:
                probe.instr(2 * costs.PREDICATE_INSTRUCTIONS)
                self.left.touch_row(self._i)
                self.right.touch_row(self._j)
            if key < right_value:
                self._i += 1
                continue
            if key > right_value:
                self._j += 1
                continue
            self._group_start = self._j
            end = self._j
            while end < len(right_rows) and right_rows[end][rk] == key:
                end += 1
            self._group_end = end
            self._emit_j = self._group_start
            self._in_group = True


class HybridJoin(Iterator):
    """Hybrid hash-sort-merge join: partition both children, sort the
    corresponding partitions, merge them pairwise."""

    def __init__(
        self,
        left: Iterator,
        right: Iterator,
        left_key: int,
        right_key: int,
        num_partitions: int = 64,
        probe: NullProbe = NULL_PROBE,
    ):
        super().__init__(probe)
        self.left = Materialize(left, probe)
        self.right = Materialize(right, probe)
        self.left_key = left_key
        self.right_key = right_key
        self.num_partitions = num_partitions
        self._pending: list[tuple] = []
        self._cursor = 0

    def open(self) -> None:
        super().open()
        self.left.open()
        self.right.open()
        mask = self.num_partitions - 1
        lk, rk = self.left_key, self.right_key
        probe = self.probe
        left_parts: list[list[tuple]] = [
            [] for _ in range(self.num_partitions)
        ]
        right_parts: list[list[tuple]] = [
            [] for _ in range(self.num_partitions)
        ]
        part_addr = 0
        band = 1 << 20
        if probe.enabled:
            part_addr = probe.space.alloc(2 * self.num_partitions * band)
        for row in self.left.rows:
            bucket = hash(row[lk]) & mask
            left_parts[bucket].append(row)
            if probe.enabled:
                probe.instr(costs.HASH_INSTRUCTIONS)
                probe.load(
                    part_addr + bucket * band
                    + (len(left_parts[bucket]) * 16) % band,
                    16,
                )
        for row in self.right.rows:
            bucket = hash(row[rk]) & mask
            right_parts[bucket].append(row)
            if probe.enabled:
                probe.instr(costs.HASH_INSTRUCTIONS)
                probe.load(
                    part_addr + (self.num_partitions + bucket) * band
                    + (len(right_parts[bucket]) * 16) % band,
                    16,
                )
        out: list[tuple] = []
        append = out.append
        for left_part, right_part in zip(left_parts, right_parts):
            if not left_part or not right_part:
                continue
            left_part.sort(key=itemgetter(lk))
            right_part.sort(key=itemgetter(rk))
            _charge_sort(probe, len(left_part))
            _charge_sort(probe, len(right_part))
            i = 0
            j = 0
            n_left = len(left_part)
            n_right = len(right_part)
            while i < n_left and j < n_right:
                if probe.enabled:
                    probe.instr(2 * costs.PREDICATE_INSTRUCTIONS)
                    probe.load(part_addr + (i * 16) % band, 16)
                    probe.load(part_addr + band + (j * 16) % band, 16)
                left_row = left_part[i]
                key = left_row[lk]
                if key < right_part[j][rk]:
                    i += 1
                    continue
                if key > right_part[j][rk]:
                    j += 1
                    continue
                group_start = j
                while j < n_right and right_part[j][rk] == key:
                    append(left_row + right_part[j])
                    j += 1
                i += 1
                while i < n_left and left_part[i][lk] == key:
                    left_row = left_part[i]
                    for back in range(group_start, j):
                        append(left_row + right_part[back])
                    i += 1
        self._pending = out
        self._cursor = 0

    def close(self) -> None:
        self.left.close()
        self.right.close()
        super().close()

    def next(self) -> tuple | None:
        if self._cursor >= len(self._pending):
            return None
        row = self._pending[self._cursor]
        self._cursor += 1
        self.touch_state()
        return row


class FineHashJoin(Iterator):
    """Fine partition join: a value directory per side; corresponding
    partitions match entirely."""

    def __init__(
        self,
        left: Iterator,
        right: Iterator,
        left_key: int,
        right_key: int,
        probe: NullProbe = NULL_PROBE,
    ):
        super().__init__(probe)
        self.left = Materialize(left, probe)
        self.right = Materialize(right, probe)
        self.left_key = left_key
        self.right_key = right_key
        self._pending: list[tuple] = []
        self._cursor = 0

    def open(self) -> None:
        super().open()
        self.left.open()
        self.right.open()
        right_parts: dict = {}
        for row in self.right.rows:
            right_parts.setdefault(row[self.right_key], []).append(row)
        out: list[tuple] = []
        append = out.append
        probe = self.probe
        dir_addr = (
            probe.space.alloc(max(len(right_parts), 1) * 32)
            if probe.enabled
            else 0
        )
        for row in self.left.rows:
            matches = right_parts.get(row[self.left_key])
            if probe.enabled:
                probe.instr(costs.HASH_INSTRUCTIONS)
                probe.load(
                    dir_addr
                    + (hash(row[self.left_key]) % max(len(right_parts), 1))
                    * 32,
                    32,
                )
            if matches is None:
                continue
            for right_row in matches:
                append(row + right_row)
        self._pending = out
        self._cursor = 0

    def close(self) -> None:
        self.left.close()
        self.right.close()
        super().close()

    def next(self) -> tuple | None:
        if self._cursor >= len(self._pending):
            return None
        row = self._pending[self._cursor]
        self._cursor += 1
        self.touch_state()
        return row


class NestedLoopsJoin(Iterator):
    """Blocked nested loops (cartesian products)."""

    def __init__(
        self, left: Iterator, right: Iterator, probe: NullProbe = NULL_PROBE
    ):
        super().__init__(probe)
        self.left = Materialize(left, probe)
        self.right = Materialize(right, probe)
        self._i = 0
        self._j = 0

    def open(self) -> None:
        super().open()
        self.left.open()
        self.right.open()
        self._i = 0
        self._j = 0

    def close(self) -> None:
        self.left.close()
        self.right.close()
        super().close()

    def next(self) -> tuple | None:
        left_rows = self.left.rows
        right_rows = self.right.rows
        if not left_rows or not right_rows:
            return None
        if self._j >= len(right_rows):
            self._j = 0
            self._i += 1
        if self._i >= len(left_rows):
            return None
        row = left_rows[self._i] + right_rows[self._j]
        self._j += 1
        self.touch_state()
        return row
