"""The iterator-engine façade (PostgreSQL / System X analogues).

``VolcanoEngine(generic=True)`` models the traditional interpreted
engine (PostgreSQL in Figure 8); ``generic=False`` is the "optimized
iterators" configuration of Figures 5–7; ``generic=False,
buffered=True`` adds the buffering operator and stands in for System X.
"""

from __future__ import annotations

from repro.engines.volcano.base import drain
from repro.engines.volcano.builder import BuildOptions, build_tree
from repro.memsim.probe import NULL_PROBE, NullProbe
from repro.plan.descriptors import PhysicalPlan
from repro.plan.optimizer import Optimizer, PlannerConfig
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.storage.catalog import Catalog


class VolcanoEngine:
    """Iterator-based query engine over the shared optimizer."""

    def __init__(
        self,
        catalog: Catalog,
        generic: bool = False,
        buffered: bool = False,
        deopt: bool = False,
        planner_config: PlannerConfig | None = None,
    ):
        self.catalog = catalog
        self.options = BuildOptions(
            generic=generic, buffered=buffered, deopt=deopt
        )
        self.planner_config = (
            planner_config if planner_config is not None else PlannerConfig()
        )
        self.binder = Binder(catalog)

    def plan(
        self, sql: str, planner_config: PlannerConfig | None = None
    ) -> PhysicalPlan:
        bound = self.binder.bind(parse(sql))
        config = (
            planner_config
            if planner_config is not None
            else self.planner_config
        )
        return Optimizer(self.catalog, config).plan(bound)

    def execute(
        self,
        sql: str,
        probe: NullProbe = NULL_PROBE,
        planner_config: PlannerConfig | None = None,
    ) -> list[tuple]:
        return self.execute_plan(self.plan(sql, planner_config), probe)

    def execute_plan(
        self, plan: PhysicalPlan, probe: NullProbe = NULL_PROBE
    ) -> list[tuple]:
        root = build_tree(plan, self.options, probe)
        return drain(root)
