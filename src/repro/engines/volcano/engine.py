"""The iterator-engine façade (PostgreSQL / System X analogues).

``VolcanoEngine(generic=True)`` models the traditional interpreted
engine (PostgreSQL in Figure 8); ``generic=False`` is the "optimized
iterators" configuration of Figures 5–7; ``generic=False,
buffered=True`` adds the buffering operator and stands in for System X.
"""

from __future__ import annotations

import time

from repro.engines.volcano.base import drain
from repro.engines.volcano.builder import BuildOptions, build_tree
from repro.memsim.probe import NULL_PROBE, NullProbe
from repro.obs import Observability, default_observability
from repro.parallel.stats import ExecutionStats
from repro.plan.descriptors import PhysicalPlan
from repro.plan.optimizer import Optimizer, PlannerConfig
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.storage.catalog import Catalog


class VolcanoEngine:
    """Iterator-based query engine over the shared optimizer."""

    def __init__(
        self,
        catalog: Catalog,
        generic: bool = False,
        buffered: bool = False,
        deopt: bool = False,
        planner_config: PlannerConfig | None = None,
        obs: Observability | None = None,
    ):
        self.catalog = catalog
        self.options = BuildOptions(
            generic=generic, buffered=buffered, deopt=deopt
        )
        self.planner_config = (
            planner_config if planner_config is not None else PlannerConfig()
        )
        self.binder = Binder(catalog)
        self.obs = obs if obs is not None else default_observability()
        #: How the most recent execution ran (set per execute call).
        self.last_exec_stats: ExecutionStats | None = None

    def plan(
        self, sql: str, planner_config: PlannerConfig | None = None
    ) -> PhysicalPlan:
        bound = self.binder.bind(parse(sql))
        config = (
            planner_config
            if planner_config is not None
            else self.planner_config
        )
        return Optimizer(self.catalog, config).plan(bound)

    def execute(
        self,
        sql: str,
        probe: NullProbe = NULL_PROBE,
        planner_config: PlannerConfig | None = None,
    ) -> list[tuple]:
        return self.execute_plan(self.plan(sql, planner_config), probe)

    def execute_plan(
        self,
        plan: PhysicalPlan,
        probe: NullProbe = NULL_PROBE,
        params: tuple = (),
    ) -> list[tuple]:
        started = time.perf_counter()
        kind = "volcano-generic" if self.options.generic else (
            "systemx" if self.options.buffered else "volcano"
        )
        with self.obs.tracer.span("execute", "engine", engine=kind) as span:
            root = build_tree(plan, self.options, probe, params)
            rows = drain(root)
            if span is not None:
                span.set(rows=len(rows))
        self.last_exec_stats = ExecutionStats(
            parallel=False,
            rows=len(rows),
            elapsed_seconds=time.perf_counter() - started,
            reason=f"interpreted {kind} engine (iterator pipeline)",
        )
        return rows
