"""Query evaluation engines: the paper's comparison points.

* :mod:`repro.engines.volcano` — iterator engine (generic / optimized /
  buffered configurations).
* :mod:`repro.engines.hardcoded` — hand-written plans for the profiling
  microbenchmarks.
* :mod:`repro.engines.vectorized` — DSM column engine (MonetDB analog).

The paper's own contribution lives in :mod:`repro.core`.
"""

from repro.engines.vectorized import VectorizedEngine
from repro.engines.volcano import VolcanoEngine

__all__ = ["VectorizedEngine", "VolcanoEngine"]
