"""Hand-coded query implementations for the Section VI-A comparison.

The paper profiles five code versions of the same four microbenchmark
queries.  Two of them are hand-written plans rather than engines:

* **generic hard-coded** — the algorithm is hard-wired (no iterators),
  but field accesses and predicate evaluation still go through generic
  helper functions, one call per access;
* **optimized hard-coded** — direct tuple access by offset ("pointer
  arithmetic"): precompiled ``struct`` unpackers at constant offsets and
  primitive comparisons, with only the unavoidable calls left (page
  loads and output collection).

HIQUE's generated code goes one step further by also inlining predicate
evaluation into the loop body, which is why it edges out the optimized
hard-coded version in the paper's measurements.

All functions take a ``collect`` flag: the profiling harness counts
output tuples without materialising them (the paper does not
materialise results), while correctness tests collect and compare.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any

from repro.memsim import costs
from repro.memsim.probe import NULL_PROBE, NullProbe
from repro.storage.page import HEADER_SIZE
from repro.storage.table import Table

# -- generic helpers (the calls the generic style pays for) -----------------------


def _get_field(page, slot: int, index: int) -> Any:
    """Generic field accessor: the virtual-function stand-in."""
    return page.read_field(slot, index)


def _eq(a: Any, b: Any) -> bool:
    return a == b


def _lt(a: Any, b: Any) -> bool:
    return a < b


def _add_to_result(out: list | None, row: tuple) -> int:
    if out is not None:
        out.append(row)
    return 1


def _identity(value):
    """Un-inlined pass-through used to emulate compiling at -O0."""
    return value


# -- staging --------------------------------------------------------------------------


def _stage_generic(
    table: Table,
    fields: tuple[int, ...],
    probe: NullProbe,
    deopt: bool = False,
) -> list[tuple]:
    """Scan + project through generic accessor calls."""
    out: list[tuple] = []
    file_id = table.file.file_id
    row_bytes = len(fields) * 8
    stage_addr = (
        probe.space.alloc((table.num_rows + 1) * row_bytes)
        if probe.enabled
        else 0
    )
    for page_no in range(table.num_pages):
        page = table.read_page(page_no)
        for slot in range(page.num_tuples):
            if probe.enabled:
                probe.instr(costs.LOOP_ITER_INSTRUCTIONS)
                base = probe.space.page_addr(
                    file_id, page_no, page.slot_offset(slot)
                )
                for index in fields:
                    probe.call(1)
                    probe.load(
                        base + page.schema.offset_of(index),
                        page.schema[index].dtype.size,
                    )
                    probe.instr(costs.FIELD_ACCESS_INSTRUCTIONS)
                probe.call(1)  # add_to_result
                probe.load(stage_addr + len(out) * row_bytes, row_bytes)
            if deopt:
                row = tuple(
                    _identity(_get_field(page, slot, index))
                    for index in fields
                )
            else:
                row = tuple(
                    _get_field(page, slot, index) for index in fields
                )
            out.append(row)
    return out


def _stage_optimized(
    table: Table,
    fields: tuple[int, ...],
    probe: NullProbe,
    deopt: bool = False,
) -> list[tuple]:
    """Scan + project with precompiled unpackers at constant offsets."""
    out: list[tuple] = []
    append = out.append
    schema = table.schema
    tuple_size = schema.tuple_size
    decoders = [
        (schema.offset_of(index), schema.field_codec(index).unpack_from,
         schema[index].dtype)
        for index in fields
    ]
    file_id = table.file.file_id
    read_page = table.read_page
    traced = probe.enabled
    row_bytes = len(fields) * 8
    stage_addr = (
        probe.space.alloc((table.num_rows + 1) * row_bytes) if traced else 0
    )
    for page_no in range(table.num_pages):
        page = read_page(page_no)
        data = page.data
        if traced:
            page_base = probe.space.page_addr(file_id, page_no)
        offset = HEADER_SIZE
        for _slot in range(page.num_tuples):
            if traced:
                probe.instr(
                    costs.LOOP_ITER_INSTRUCTIONS
                    + len(decoders) * costs.FIELD_ACCESS_INSTRUCTIONS
                )
                for field_offset, _u, dtype in decoders:
                    probe.load(page_base + offset + field_offset, dtype.size)
                probe.load(stage_addr + len(out) * row_bytes, row_bytes)
            values = []
            for field_offset, unpack, dtype in decoders:
                value = unpack(data, offset + field_offset)[0]
                if dtype.is_string:
                    value = value.rstrip(b" ").decode()
                if deopt:
                    value = _identity(value)
                values.append(value)
            append(tuple(values))
            offset += tuple_size
    return out


# -- merge join (Join Query #1 shape) -----------------------------------------------------


def merge_join_hardcoded(
    left: Table,
    right: Table,
    left_key: int,
    right_key: int,
    left_fields: tuple[int, ...],
    right_fields: tuple[int, ...],
    style: str = "optimized",
    probe: NullProbe = NULL_PROBE,
    collect: bool = False,
    deopt: bool = False,
) -> list[tuple] | int:
    """Sort-stage both inputs, then merge join.

    ``left_key``/``right_key`` index into the *staged* field tuples.
    """
    stage = _stage_generic if style == "generic" else _stage_optimized
    left_rows = stage(left, left_fields, probe, deopt)
    right_rows = stage(right, right_fields, probe, deopt)
    left_rows.sort(key=itemgetter(left_key))
    right_rows.sort(key=itemgetter(right_key))
    _charge_sort(probe, len(left_rows))
    _charge_sort(probe, len(right_rows))

    out: list[tuple] | None = [] if collect else None
    count = 0
    generic = style == "generic"
    i = 0
    j = 0
    n_left = len(left_rows)
    n_right = len(right_rows)
    traced = probe.enabled
    lrb = len(left_fields) * 8
    rrb = len(right_fields) * 8
    if traced:
        left_addr = probe.space.alloc((n_left + 1) * lrb)
        right_addr = probe.space.alloc((n_right + 1) * rrb)
    while i < n_left and j < n_right:
        if traced:
            probe.instr(2 * costs.PREDICATE_INSTRUCTIONS)
            probe.load(left_addr + i * lrb, lrb)
            probe.load(right_addr + j * rrb, rrb)
            if generic:
                probe.call(2)  # comparator helpers
        left_row = left_rows[i]
        key = left_row[left_key]
        right_value = right_rows[j][right_key]
        if _lt(key, right_value) if generic else key < right_value:
            i += 1
            continue
        if _lt(right_value, key) if generic else key > right_value:
            j += 1
            continue
        group_start = j
        while j < n_right and (
            _eq(right_rows[j][right_key], key)
            if generic
            else right_rows[j][right_key] == key
        ):
            if traced:
                probe.instr(costs.LOOP_ITER_INSTRUCTIONS)
                probe.call(1)  # add_to_result
                probe.load(right_addr + j * rrb, rrb)
                if generic:
                    probe.call(1)
            count += _add_to_result(out, left_row + right_rows[j])
            j += 1
        i += 1
        while i < n_left and (
            _eq(left_rows[i][left_key], key)
            if generic
            else left_rows[i][left_key] == key
        ):
            left_row = left_rows[i]
            for back in range(group_start, j):
                if traced:
                    probe.instr(costs.LOOP_ITER_INSTRUCTIONS)
                    probe.call(1)
                    probe.load(right_addr + back * rrb, rrb)
                count += _add_to_result(out, left_row + right_rows[back])
            i += 1
    return out if collect else count


# -- hybrid hash-sort-merge join (Join Query #2 shape) --------------------------------------


def hybrid_join_hardcoded(
    left: Table,
    right: Table,
    left_key: int,
    right_key: int,
    left_fields: tuple[int, ...],
    right_fields: tuple[int, ...],
    num_partitions: int = 64,
    style: str = "optimized",
    probe: NullProbe = NULL_PROBE,
    collect: bool = False,
    deopt: bool = False,
) -> list[tuple] | int:
    """Coarse-partition both inputs, sort and merge partition pairs."""
    stage = _stage_generic if style == "generic" else _stage_optimized
    left_rows = stage(left, left_fields, probe, deopt)
    right_rows = stage(right, right_fields, probe, deopt)
    mask = num_partitions - 1
    left_parts: list[list[tuple]] = [[] for _ in range(num_partitions)]
    right_parts: list[list[tuple]] = [[] for _ in range(num_partitions)]
    lrb = len(left_fields) * 8
    rrb = len(right_fields) * 8
    band = 1 << 20
    part_addr = (
        probe.space.alloc(2 * num_partitions * band)
        if probe.enabled
        else 0
    )
    for row in left_rows:
        bucket = hash(row[left_key]) & mask
        left_parts[bucket].append(row)
        if probe.enabled:
            probe.instr(costs.HASH_INSTRUCTIONS)
            probe.load(
                part_addr + bucket * band
                + (len(left_parts[bucket]) * lrb) % band, lrb,
            )
    for row in right_rows:
        bucket = hash(row[right_key]) & mask
        right_parts[bucket].append(row)
        if probe.enabled:
            probe.instr(costs.HASH_INSTRUCTIONS)
            probe.load(
                part_addr + (num_partitions + bucket) * band
                + (len(right_parts[bucket]) * rrb) % band, rrb,
            )

    out: list[tuple] | None = [] if collect else None
    count = 0
    generic = style == "generic"
    traced = probe.enabled
    for left_part, right_part in zip(left_parts, right_parts):
        if not left_part or not right_part:
            continue
        left_part.sort(key=itemgetter(left_key))
        right_part.sort(key=itemgetter(right_key))
        _charge_sort(probe, len(left_part))
        _charge_sort(probe, len(right_part))
        i = 0
        j = 0
        n_left = len(left_part)
        n_right = len(right_part)
        while i < n_left and j < n_right:
            if traced:
                probe.instr(2 * costs.PREDICATE_INSTRUCTIONS)
                probe.load(part_addr + (i * lrb) % band, lrb)
                probe.load(part_addr + band + (j * rrb) % band, rrb)
                if generic:
                    probe.call(2)
            left_row = left_part[i]
            key = left_row[left_key]
            right_value = right_part[j][right_key]
            if key < right_value:
                i += 1
                continue
            if key > right_value:
                j += 1
                continue
            group_start = j
            while j < n_right and right_part[j][right_key] == key:
                if traced:
                    probe.instr(costs.LOOP_ITER_INSTRUCTIONS)
                    probe.call(1)
                    probe.load(part_addr + band + (j * rrb) % band, rrb)
                count += _add_to_result(out, left_row + right_part[j])
                j += 1
            i += 1
            while i < n_left and left_part[i][left_key] == key:
                left_row = left_part[i]
                for back in range(group_start, j):
                    if traced:
                        probe.instr(costs.LOOP_ITER_INSTRUCTIONS)
                        probe.call(1)
                        probe.load(
                            part_addr + band + (back * rrb) % band, rrb
                        )
                    count += _add_to_result(out, left_row + right_part[back])
                i += 1
    return out if collect else count


# -- hybrid hash-sort aggregation (Aggregation Query #1 shape) ---------------------------------


def hybrid_agg_hardcoded(
    table: Table,
    group_field: int,
    sum_fields: tuple[int, int],
    fields: tuple[int, ...],
    num_partitions: int = 64,
    style: str = "optimized",
    probe: NullProbe = NULL_PROBE,
    deopt: bool = False,
) -> list[tuple]:
    """Partition on the group key, sort partitions, aggregate per scan.

    ``group_field``/``sum_fields`` index into the staged field tuples.
    """
    stage = _stage_generic if style == "generic" else _stage_optimized
    rows = stage(table, fields, probe, deopt)
    mask = num_partitions - 1
    partitions: list[list[tuple]] = [[] for _ in range(num_partitions)]
    row_bytes = len(fields) * 8
    band = 1 << 20
    part_addr = (
        probe.space.alloc(num_partitions * band) if probe.enabled else 0
    )
    for row in rows:
        bucket = hash(row[group_field]) & mask
        partitions[bucket].append(row)
        if probe.enabled:
            probe.instr(costs.HASH_INSTRUCTIONS)
            probe.load(
                part_addr + bucket * band
                + (len(partitions[bucket]) * row_bytes) % band, row_bytes,
            )

    generic = style == "generic"
    traced = probe.enabled
    s1_field, s2_field = sum_fields
    out: list[tuple] = []
    append = out.append
    for partition in partitions:
        if not partition:
            continue
        partition.sort(key=itemgetter(group_field))
        _charge_sort(probe, len(partition))
        n = len(partition)
        i = 0
        while i < n:
            row = partition[i]
            key = row[group_field]
            total_1 = 0.0
            total_2 = 0.0
            while i < n:
                row = partition[i]
                if traced:
                    probe.instr(
                        costs.LOOP_ITER_INSTRUCTIONS
                        + 2 * costs.AGGREGATE_UPDATE_INSTRUCTIONS
                        + costs.PREDICATE_INSTRUCTIONS
                    )
                    probe.load(
                        part_addr + (i * row_bytes) % band, row_bytes
                    )
                    if generic:
                        probe.call(3)  # key compare + two accessors
                if row[group_field] != key:
                    break
                if deopt:
                    total_1 += _identity(row[s1_field])
                    total_2 += _identity(row[s2_field])
                else:
                    total_1 += row[s1_field]
                    total_2 += row[s2_field]
                i += 1
            append((key, total_1, total_2))
    return out


# -- map aggregation (Aggregation Query #2 shape) --------------------------------------------------


def map_agg_hardcoded(
    table: Table,
    group_field: int,
    sum_fields: tuple[int, int],
    fields: tuple[int, ...],
    style: str = "optimized",
    probe: NullProbe = NULL_PROBE,
    deopt: bool = False,
) -> list[tuple]:
    """Single-pass aggregation through a value directory."""
    stage = _stage_generic if style == "generic" else _stage_optimized
    rows = stage(table, fields, probe, deopt)
    generic = style == "generic"
    traced = probe.enabled
    s1_field, s2_field = sum_fields
    directory: dict[Any, int] = {}
    keys: list[Any] = []
    totals_1: list[float] = []
    totals_2: list[float] = []
    row_bytes = len(fields) * 8
    input_addr = (
        probe.space.alloc((len(rows) + 1) * row_bytes) if traced else 0
    )
    dir_addr = probe.space.alloc(1 << 22) if traced else 0
    row_index = 0
    for row in rows:
        if traced:
            probe.instr(
                costs.LOOP_ITER_INSTRUCTIONS
                + costs.HASH_INSTRUCTIONS
                + 2 * costs.AGGREGATE_UPDATE_INSTRUCTIONS
            )
            probe.load(input_addr + row_index * row_bytes, row_bytes)
            row_index += 1
            probe.load(
                dir_addr
                + (hash(row[group_field]) % max(len(directory), 1)) * 48,
                48,
            )
            if generic:
                probe.call(3)
        value = row[group_field]
        group = directory.get(value, -1)
        if group < 0:
            group = len(directory)
            directory[value] = group
            keys.append(value)
            totals_1.append(0.0)
            totals_2.append(0.0)
        if deopt:
            totals_1[group] += _identity(row[s1_field])
            totals_2[group] += _identity(row[s2_field])
        else:
            totals_1[group] += row[s1_field]
            totals_2[group] += row[s2_field]
    return [
        (keys[g], totals_1[g], totals_2[g]) for g in range(len(keys))
    ]


def _charge_sort(probe: NullProbe, n: int) -> None:
    if probe.enabled and n > 1:
        import math

        probe.instr(int(n * math.log2(n)) * costs.SORT_STEP_INSTRUCTIONS)
