"""Hand-coded query plans (the paper's Section VI-A baselines)."""

from repro.engines.hardcoded.queries import (
    hybrid_agg_hardcoded,
    hybrid_join_hardcoded,
    map_agg_hardcoded,
    merge_join_hardcoded,
)

__all__ = [
    "hybrid_agg_hardcoded",
    "hybrid_join_hardcoded",
    "map_agg_hardcoded",
    "merge_join_hardcoded",
]
