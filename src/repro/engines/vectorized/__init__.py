"""Vectorized DSM engine (the MonetDB analogue)."""

from repro.engines.vectorized.engine import VectorizedEngine
from repro.engines.vectorized.expressions import (
    vector_conjunction,
    vector_expr,
    vector_predicate,
)

__all__ = [
    "VectorizedEngine",
    "vector_conjunction",
    "vector_expr",
    "vector_predicate",
]
