"""The vectorized DSM engine — the MonetDB analogue of Figure 8.

Executes the shared optimizer's physical plans column-at-a-time over
vertically partitioned tables:

* scans touch only the referenced columns (the DSM advantage on wide
  TPC-H tuples);
* every operator materialises its full result before the next one runs
  (MonetDB's execution model, and the property the paper notes reduces
  "opportunities for exploiting cache locality across separate query
  operators");
* joins are sort-based array joins (``argsort`` + ``searchsorted`` +
  vectorised expansion), aggregation groups via factorised key ids and
  ``bincount``/``ufunc.at`` array primitives — array computations
  throughout, in the spirit of radix-cluster style processing.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.engines.vectorized.expressions import (
    vector_conjunction,
    vector_expr,
)
from repro.errors import ExecutionError, PlanError
from repro.obs import Observability, default_observability, maybe_span
from repro.parallel.stats import ExecutionStats
from repro.plan.descriptors import (
    Aggregate,
    Join,
    Limit,
    MultiwayJoin,
    PhysicalPlan,
    Project as ProjectOp,
    Restage,
    ScanStage,
    Sort,
)
from repro.plan.layout import ColumnLayout
from repro.plan.optimizer import Optimizer, PlannerConfig
from repro.sql.binder import Binder
from repro.sql.bound import (
    BoundAggregate,
    BoundArithmetic,
    BoundColumn,
    BoundParameter,
)
from repro.sql.parser import parse
from repro.storage.catalog import Catalog
from repro.storage.dsm import ColumnTable, from_table


@dataclass
class _Batch:
    """A materialised intermediate: one array per layout slot."""

    layout: ColumnLayout
    arrays: list[np.ndarray] = field(default_factory=list)

    @property
    def length(self) -> int:
        return len(self.arrays[0]) if self.arrays else 0

    def gather(self, index: np.ndarray) -> "_Batch":
        return _Batch(self.layout, [a[index] for a in self.arrays])


class VectorizedEngine:
    """Column-at-a-time engine over DSM tables."""

    def __init__(
        self,
        catalog: Catalog,
        planner_config: PlannerConfig | None = None,
        obs: Observability | None = None,
    ):
        self.catalog = catalog
        self.planner_config = (
            planner_config if planner_config is not None else PlannerConfig()
        )
        self.binder = Binder(catalog)
        self.obs = obs if obs is not None else default_observability()
        #: How the most recent execution ran (set per execute call).
        self.last_exec_stats: ExecutionStats | None = None
        self._columnar: dict[str, ColumnTable] = {}
        # Concurrent sessions may fault in the same DSM conversion; the
        # lock keeps the cache consistent (and the conversion single).
        self._columnar_lock = threading.Lock()

    # -- DSM loading -------------------------------------------------------------
    def column_table(self, name: str) -> ColumnTable:
        """The vertically partitioned copy of a stored table (cached).

        Conversion happens once, at "import time", exactly as the paper
        loads the data set into MonetDB before measuring queries.
        """
        key = name.lower()
        # Lock-free hit path (dict reads are atomic): concurrent queries
        # on converted tables never queue behind a cold conversion.
        table = self._columnar.get(key)
        if table is not None:
            return table
        with self._columnar_lock:
            table = self._columnar.get(key)
            if table is None:
                table = from_table(self.catalog.table(name))
                self._columnar[key] = table
            return table

    def preload(self) -> None:
        """Convert every catalogued table ahead of benchmarking."""
        for table in self.catalog.tables():
            self.column_table(table.name)

    def invalidate(self, name: str | None = None) -> None:
        with self._columnar_lock:
            if name is None:
                self._columnar.clear()
            else:
                self._columnar.pop(name.lower(), None)

    # -- execution ----------------------------------------------------------------
    def plan(
        self, sql: str, planner_config: PlannerConfig | None = None
    ) -> PhysicalPlan:
        bound = self.binder.bind(parse(sql))
        config = (
            planner_config
            if planner_config is not None
            else self.planner_config
        )
        return Optimizer(self.catalog, config).plan(bound)

    def execute(
        self, sql: str, planner_config: PlannerConfig | None = None
    ) -> list[tuple]:
        return self.execute_plan(self.plan(sql, planner_config))

    def execute_plan(
        self, plan: PhysicalPlan, params: tuple = ()
    ) -> list[tuple]:
        started = time.perf_counter()
        with self.obs.tracer.span(
            "execute", "engine", engine="vectorized"
        ) as span:
            batches: dict[int, _Batch] = {}
            for operator in plan.operators:
                with maybe_span(
                    f"{type(operator).__name__} o{operator.op_id}",
                    "node",
                    op_ids=str(operator.op_id),
                ) as op_span:
                    batch = self._run_operator(
                        plan, operator, batches, params
                    )
                    if op_span is not None:
                        op_span.set(rows=batch.length)
                batches[operator.op_id] = batch
            rows = _to_rows(batches[plan.root.op_id])
            if span is not None:
                span.set(rows=len(rows))
        self.last_exec_stats = ExecutionStats(
            parallel=False,
            rows=len(rows),
            elapsed_seconds=time.perf_counter() - started,
            reason="interpreted vectorized engine (column-at-a-time)",
        )
        return rows

    # -- operators --------------------------------------------------------------------
    def _run_operator(
        self,
        plan: PhysicalPlan,
        operator,
        batches: dict[int, _Batch],
        params: tuple = (),
    ) -> _Batch:
        if isinstance(operator, ScanStage):
            return self._run_scan(operator, params)
        if isinstance(operator, Restage):
            # Column engines re-materialise anyway; order-sensitive
            # consumers (merge joins) sort internally here.
            return batches[operator.input_op]
        if isinstance(operator, Join):
            return self._run_join(
                batches[operator.left_op],
                batches[operator.right_op],
                operator,
                params,
            )
        if isinstance(operator, MultiwayJoin):
            return self._run_multiway(plan, operator, batches)
        if isinstance(operator, Aggregate):
            return self._run_aggregate(
                batches[operator.input_op], operator, params
            )
        if isinstance(operator, ProjectOp):
            return self._run_project(
                batches[operator.input_op], operator, params
            )
        if isinstance(operator, Sort):
            return self._run_sort(batches[operator.input_op], operator)
        if isinstance(operator, Limit):
            batch = batches[operator.input_op]
            index = np.arange(min(operator.count, batch.length))
            return batch.gather(index)
        raise PlanError(
            f"vectorized engine cannot run {type(operator).__name__}"
        )

    def _run_scan(self, operator: ScanStage, params: tuple = ()) -> _Batch:
        column_table = self.column_table(operator.table.name)
        table_layout = ColumnLayout(
            _slot_for(operator.binding, column)
            for column in operator.table.schema
        )
        arrays = [
            column_table.column(column.name)
            for column in operator.table.schema
        ]
        mask = vector_conjunction(
            operator.filters, table_layout, arrays, column_table.num_rows,
            params,
        )
        selected = np.flatnonzero(mask)
        out_arrays = []
        for slot in operator.output_layout.slots:
            position = table_layout.position_of_key(slot.binding, slot.column)
            out_arrays.append(arrays[position][selected])
        return _Batch(operator.output_layout, out_arrays)

    def _run_join(
        self, left: _Batch, right: _Batch, operator: Join,
        params: tuple = (),
    ) -> _Batch:
        if operator.algorithm == "nested":
            left_index = np.repeat(np.arange(left.length), right.length)
            right_index = np.tile(np.arange(right.length), left.length)
        else:
            left_index, right_index = _equi_join_indexes(
                left.arrays[operator.left_key],
                right.arrays[operator.right_key],
            )
        arrays = [a[left_index] for a in left.arrays] + [
            a[right_index] for a in right.arrays
        ]
        batch = _Batch(operator.output_layout, arrays)
        if operator.residuals:
            mask = vector_conjunction(
                operator.residuals, batch.layout, batch.arrays,
                batch.length, params,
            )
            batch = batch.gather(np.flatnonzero(mask))
        return batch

    def _run_multiway(
        self, plan: PhysicalPlan, operator: MultiwayJoin, batches
    ) -> _Batch:
        current = batches[operator.input_ops[0]]
        current_key = operator.key_positions[0]
        for k in range(1, len(operator.input_ops)):
            right = batches[operator.input_ops[k]]
            left_index, right_index = _equi_join_indexes(
                current.arrays[current_key],
                right.arrays[operator.key_positions[k]],
            )
            layout = current.layout.concat(right.layout)
            arrays = [a[left_index] for a in current.arrays] + [
                a[right_index] for a in right.arrays
            ]
            current = _Batch(layout, arrays)
        return _Batch(operator.output_layout, current.arrays)

    def _run_aggregate(
        self, batch: _Batch, operator: Aggregate, params: tuple = ()
    ) -> _Batch:
        if batch.length == 0 and not operator.group_positions:
            # A global aggregate over no input yields exactly one row:
            # count/sum are zero, min/max/avg are NULL.  The vectorised
            # reductions below would instead emit their dtype sentinels
            # (e.g. int64 min for an empty max), so this row is built
            # eagerly with the row engines' semantics.
            return _Batch(
                operator.output_layout,
                [
                    np.array(
                        [_empty_global_value(output.expr, params)],
                        dtype=object,
                    )
                    for output in operator.outputs
                ],
            )
        group_ids, unique_index, num_groups = _group_ids(
            batch, operator.group_positions
        )
        out_arrays: list[np.ndarray] = []
        for output in operator.outputs:
            out_arrays.append(
                self._aggregate_output(
                    output.expr, batch, group_ids, unique_index, num_groups,
                    params,
                )
            )
        return _Batch(operator.output_layout, out_arrays)

    def _aggregate_output(
        self, expr, batch, group_ids, unique_index, num_groups,
        params: tuple = (),
    ) -> np.ndarray:
        if isinstance(expr, BoundAggregate):
            return _aggregate_array(
                expr, batch, group_ids, num_groups, params
            )
        if isinstance(expr, BoundArithmetic):
            left = self._aggregate_output(
                expr.left, batch, group_ids, unique_index, num_groups,
                params,
            )
            right = self._aggregate_output(
                expr.right, batch, group_ids, unique_index, num_groups,
                params,
            )
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            return left / right
        if isinstance(expr, BoundColumn):
            return batch.arrays[batch.layout.position(expr)][unique_index]
        if isinstance(expr, BoundParameter):
            return np.full(num_groups, params[expr.index])
        # BoundLiteral: broadcast.
        return np.full(num_groups, expr.value)

    def _run_project(
        self, batch: _Batch, operator: ProjectOp, params: tuple = ()
    ) -> _Batch:
        arrays = [
            np.asarray(
                vector_expr(output.expr, batch.layout, batch.arrays, params)
            )
            for output in operator.outputs
        ]
        # Broadcast scalar literals to the batch length.
        arrays = [
            a if a.ndim else np.full(batch.length, a) for a in arrays
        ]
        return _Batch(operator.output_layout, arrays)

    def _run_sort(self, batch: _Batch, operator: Sort) -> _Batch:
        if batch.length <= 1:
            # Nothing to order — also keeps object-dtype singleton rows
            # (empty-input global aggregates, which may hold None) away
            # from numpy key negation.
            return batch
        order = np.arange(batch.length)
        for position, ascending in reversed(operator.keys):
            keys = batch.arrays[position][order]
            if ascending:
                idx = np.argsort(keys, kind="stable")
            else:
                idx = _descending_argsort(keys)
            order = order[idx]
        return batch.gather(order)


# -- array helpers -----------------------------------------------------------------


def _slot_for(binding: str, column):
    from repro.plan.layout import ColumnSlot

    return ColumnSlot(binding, column.name, column.dtype)


def _equi_join_indexes(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised sort-merge equi-join: returns matching index pairs."""
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    starts = np.searchsorted(sorted_right, left_keys, side="left")
    ends = np.searchsorted(sorted_right, left_keys, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    left_index = np.repeat(np.arange(len(left_keys)), counts)
    bases = np.repeat(np.cumsum(counts) - counts, counts)
    offsets = np.arange(total) - bases
    right_index = order[np.repeat(starts, counts) + offsets]
    return left_index, right_index


def _group_ids(
    batch: _Batch, group_positions: tuple[int, ...]
) -> tuple[np.ndarray, np.ndarray, int]:
    """Factorise group keys: per-row group id, first-row index per group,
    and the number of groups (in first-occurrence order)."""
    n = batch.length
    if not group_positions:
        return (
            np.zeros(n, dtype=np.int64),
            np.zeros(1 if n else 1, dtype=np.int64),
            1,
        )
    combined = np.zeros(n, dtype=np.int64)
    for position in group_positions:
        _, inverse = np.unique(
            batch.arrays[position], return_inverse=True
        )
        combined = combined * (int(inverse.max(initial=0)) + 1) + inverse
    uniques, first_index, inverse = np.unique(
        combined, return_index=True, return_inverse=True
    )
    # Renumber groups by first appearance for deterministic output order.
    appearance = np.argsort(first_index, kind="stable")
    remap = np.empty(len(uniques), dtype=np.int64)
    remap[appearance] = np.arange(len(uniques))
    group_ids = remap[inverse]
    unique_index = first_index[appearance]
    return group_ids, unique_index, len(uniques)


def _empty_global_value(expr, params: tuple = ()):
    """One output value of a global aggregate over an empty input."""
    if isinstance(expr, BoundAggregate):
        if expr.func == "count":
            return 0
        if expr.func == "sum":
            return 0.0 if expr.dtype.code == "double" else 0
        return None  # min/max/avg of nothing is NULL
    if isinstance(expr, BoundParameter):
        return params[expr.index]
    if isinstance(expr, BoundArithmetic):
        left = _empty_global_value(expr.left, params)
        right = _empty_global_value(expr.right, params)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        return left / right
    return expr.value  # BoundLiteral (no group columns can appear)


def _aggregate_array(
    node: BoundAggregate,
    batch: _Batch,
    group_ids: np.ndarray,
    num_groups: int,
    params: tuple = (),
) -> np.ndarray:
    if node.func == "count":
        counts = np.bincount(group_ids, minlength=num_groups)
        return counts.astype(np.int64)
    if node.argument is None:
        raise ExecutionError(f"{node.func} requires an argument")
    values = vector_expr(node.argument, batch.layout, batch.arrays, params)
    values = np.asarray(values)
    if node.func == "sum":
        summed = np.bincount(
            group_ids, weights=values.astype(np.float64),
            minlength=num_groups,
        )
        if values.dtype.kind in "iu" and node.dtype.code == "int":
            return summed.astype(np.int64)
        return summed
    if node.func == "avg":
        summed = np.bincount(
            group_ids, weights=values.astype(np.float64),
            minlength=num_groups,
        )
        counts = np.bincount(group_ids, minlength=num_groups)
        return summed / np.maximum(counts, 1)
    if node.func == "min":
        out = _reduce_at(np.minimum, values, group_ids, num_groups)
        return out
    if node.func == "max":
        return _reduce_at(np.maximum, values, group_ids, num_groups)
    raise ExecutionError(f"unknown aggregate {node.func!r}")


def _reduce_at(ufunc, values, group_ids, num_groups):
    if values.dtype.kind == "S":
        # ufunc.at does not support byte strings: sort-based reduction.
        order = np.argsort(group_ids, kind="stable")
        sorted_ids = group_ids[order]
        sorted_values = values[order]
        boundaries = np.flatnonzero(
            np.r_[True, sorted_ids[1:] != sorted_ids[:-1]]
        )
        out = np.empty(num_groups, dtype=values.dtype)
        for b, start in enumerate(boundaries):
            end = (
                boundaries[b + 1] if b + 1 < len(boundaries) else len(order)
            )
            segment = np.sort(sorted_values[start:end])
            out[sorted_ids[start]] = (
                segment[0] if ufunc is np.minimum else segment[-1]
            )
        return out
    init = (
        np.iinfo(values.dtype).max
        if ufunc is np.minimum and values.dtype.kind in "iu"
        else np.finfo(np.float64).max
        if ufunc is np.minimum
        else np.iinfo(values.dtype).min
        if values.dtype.kind in "iu"
        else np.finfo(np.float64).min
    )
    out = np.full(num_groups, init, dtype=values.dtype if values.dtype.kind in "iu" else np.float64)
    ufunc.at(out, group_ids, values)
    return out


def _descending_argsort(keys: np.ndarray) -> np.ndarray:
    if keys.dtype.kind in "if":
        return np.argsort(-keys, kind="stable")
    # Non-negatable dtypes (byte strings, unsigned): sort descending by
    # negated *rank* so equal keys keep their current relative order —
    # reversing an ascending argsort would also reverse ties and break
    # the multi-key sort's stability chain.
    _, inverse = np.unique(keys, return_inverse=True)
    return np.argsort(-inverse, kind="stable")


def _to_rows(batch: _Batch) -> list[tuple]:
    """Materialise a batch into Python rows matching the row engines."""
    columns = []
    for slot, array in zip(batch.layout.slots, batch.arrays):
        if array.dtype.kind == "O":
            # Object columns already hold finished Python values (the
            # empty-input global-aggregate row, which may contain None).
            columns.append(array.tolist())
        elif array.dtype.kind == "S":
            columns.append(
                [v.rstrip(b" ").decode("utf-8") for v in array.tolist()]
            )
        elif array.dtype.kind == "b":
            columns.append([bool(v) for v in array.tolist()])
        elif array.dtype.kind == "f":
            columns.append([float(v) for v in array.tolist()])
        else:
            values = array.tolist()
            if slot.dtype.code == "double":
                columns.append([float(v) for v in values])
            else:
                columns.append(values)
    return list(zip(*columns)) if columns else []
