"""Vectorized (column-at-a-time) expression evaluation.

Bound expressions evaluate to whole NumPy arrays; comparisons evaluate
to boolean masks.  String columns are fixed-width byte arrays, so
literals are encoded and space-padded before comparing — keeping every
operation a single array primitive, which is the MonetDB execution model
the paper compares against.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ExecutionError
from repro.plan.layout import ColumnLayout
from repro.sql.bound import (
    BoundArithmetic,
    BoundColumn,
    BoundComparison,
    BoundExpr,
    BoundLiteral,
    BoundParameter,
)


def vector_expr(
    expr: BoundExpr,
    layout: ColumnLayout,
    arrays: Sequence[np.ndarray],
    params: Sequence = (),
) -> np.ndarray:
    """Evaluate a scalar expression over column arrays."""
    if isinstance(expr, BoundColumn):
        return arrays[layout.position(expr)]
    if isinstance(expr, BoundLiteral):
        return _literal_value(expr)
    if isinstance(expr, BoundParameter):
        value = params[expr.index]
        if isinstance(value, str):
            return value.encode("utf-8")
        return value
    if isinstance(expr, BoundArithmetic):
        left = vector_expr(expr.left, layout, arrays, params)
        right = vector_expr(expr.right, layout, arrays, params)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return left / right
        raise ExecutionError(f"unknown arithmetic op {expr.op!r}")
    raise ExecutionError(f"cannot vector-evaluate {expr!r}")


def vector_predicate(
    comparison: BoundComparison,
    layout: ColumnLayout,
    arrays: Sequence[np.ndarray],
    params: Sequence = (),
) -> np.ndarray:
    """Evaluate one comparison to a boolean mask."""
    left = vector_expr(comparison.left, layout, arrays, params)
    right = vector_expr(comparison.right, layout, arrays, params)
    left, right = _align_string_operands(left, right)
    op = comparison.op
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == ">":
        return left > right
    if op == "<=":
        return left <= right
    return left >= right


def vector_conjunction(
    comparisons: Sequence[BoundComparison],
    layout: ColumnLayout,
    arrays: Sequence[np.ndarray],
    length: int,
    params: Sequence = (),
) -> np.ndarray:
    """AND of all comparisons, as one mask (empty → all True)."""
    if not comparisons:
        return np.ones(length, dtype=bool)
    mask = vector_predicate(comparisons[0], layout, arrays, params)
    for comparison in comparisons[1:]:
        mask &= vector_predicate(comparison, layout, arrays, params)
    return mask


def _literal_value(literal: BoundLiteral):
    if isinstance(literal.value, str):
        return literal.value.encode("utf-8")
    return literal.value


def _align_string_operands(left, right):
    """Normalise byte-string operands for comparison.

    DSM arrays hold unpadded bytes (NumPy ``S`` comparisons ignore
    trailing NULs), so literals are stripped of the space padding the
    NSM codec would add; differing widths are widened to a common size.
    """
    left_is_bytes = isinstance(left, np.ndarray) and left.dtype.kind == "S"
    right_is_bytes = isinstance(right, np.ndarray) and right.dtype.kind == "S"
    if left_is_bytes and isinstance(right, bytes):
        return left, right.rstrip(b" ")
    if right_is_bytes and isinstance(left, bytes):
        return left.rstrip(b" "), right
    if left_is_bytes and right_is_bytes and left.dtype != right.dtype:
        width = max(left.dtype.itemsize, right.dtype.itemsize)
        return left.astype(f"S{width}"), right.astype(f"S{width}")
    return left, right
