"""Version-keyed cache of staged scan intermediates.

Staging — the partition/sort pass that converts a table's pages into
the layout a join or aggregation consumes — dominates per-query cost in
the paper's Table III breakdowns.  For a warm repeated query the pages
have not changed, so the staged structure has not either: entries are
keyed ``(table, version, signature)``, where ``version`` is the table's
monotonic mutation epoch and ``signature`` captures everything else
that shapes the staged output (prep kind and keys, projected columns,
rendered filters, the parameter vector).  A DML mutation moves the
version, so stale entries simply stop being reachable; the owning
database additionally drops them eagerly through the catalogue's
change listeners.

Generated join/merge templates sort their inputs *in place*, so both
``put`` and ``get`` copy the two container levels that execution
mutates (the outer list/dict and each bucket).  Row tuples are
immutable and shared.

The cache is bytes-bounded LRU: staged intermediates can dwarf the
plans that produced them, so the budget is expressed in (approximate)
payload bytes rather than entry count.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

#: Default budget: staged rows for a handful of warm statements.
DEFAULT_CAPACITY_BYTES = 32 * 1024 * 1024


@dataclass
class IntermediateCacheStats:
    """Point-in-time effectiveness counters."""

    capacity_bytes: int
    entries: int
    bytes: int
    hits: int
    misses: int
    evictions: int
    invalidations: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def staging_signature(op, params: tuple) -> tuple:
    """The non-version part of a scan's cache key.

    ``op`` is a :class:`~repro.plan.descriptors.ScanStage`.  The
    rendered filters carry literal values and parameter slot indexes;
    the parameter vector pins the slots' values, so two executions of
    one cached plan with different parameters never share an entry.
    """
    prep = op.prep
    return (
        op.binding,
        prep.kind,
        tuple(prep.keys),
        prep.num_partitions,
        prep.fine,
        tuple((s.binding, s.column) for s in op.output_layout.slots),
        repr(op.filters),
        tuple(params),
    )


def _copy_staged(value: Any) -> Any:
    """Copy the mutable container levels of a staged structure.

    Shapes per prep kind: flat row list (none/sort), list of bucket
    lists (coarse partition / partition-sort), dict key → row list
    (fine partition).  Rows are tuples and safe to share.
    """
    if isinstance(value, dict):
        return {key: list(rows) for key, rows in value.items()}
    if isinstance(value, list):
        if value and isinstance(value[0], list):
            return [list(bucket) for bucket in value]
        return list(value)
    return value


def _approx_bytes(value: Any) -> int:
    """Rough payload size: per-row overhead plus per-field slots."""
    if isinstance(value, dict):
        buckets = value.values()
    elif value and isinstance(value[0], list):
        buckets = value
    else:
        buckets = (value,)
    total = 64
    for bucket in buckets:
        total += 64
        for row in bucket:
            total += 56 + 16 * len(row)
    return total


class IntermediateCache:
    """Thread-safe, bytes-bounded LRU of staged scan outputs."""

    def __init__(self, capacity_bytes: int = DEFAULT_CAPACITY_BYTES):
        if capacity_bytes <= 0:
            raise ValueError("intermediate cache capacity must be positive")
        self.capacity_bytes = capacity_bytes
        #: (table, version, signature) → (staged value, size bytes)
        self._entries: "OrderedDict[tuple, tuple[Any, int]]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    def get(self, table: str, version: int, signature: tuple) -> Any:
        """The cached staged structure (a private copy), or None."""
        key = (table, version, signature)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            value = entry[0]
        # Copy outside the lock: hit copies can be large.
        return _copy_staged(value)

    def put(
        self, table: str, version: int, signature: tuple, value: Any
    ) -> None:
        """Store a copy of ``value``; evicts LRU entries over budget.

        A value too large for the whole budget is simply not admitted.
        """
        size = _approx_bytes(value)
        if size > self.capacity_bytes:
            return
        copied = _copy_staged(value)
        key = (table, version, signature)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (copied, size)
            self._bytes += size
            while self._bytes > self.capacity_bytes and len(self._entries) > 1:
                _, (_, evicted_size) = self._entries.popitem(last=False)
                self._bytes -= evicted_size
                self._evictions += 1

    def invalidate_table(self, table: str | None) -> int:
        """Drop entries for one table (or all with ``None``).

        DML makes old-version entries unreachable on its own; this
        frees their memory eagerly.  DDL *must* call it (or
        :meth:`clear`): a dropped-and-recreated table restarts its
        version epoch at zero, which would otherwise alias old entries.
        """
        with self._lock:
            if table is None:
                dropped = len(self._entries)
                self._entries.clear()
                self._bytes = 0
            else:
                doomed = [
                    key for key in self._entries if key[0] == table
                ]
                for key in doomed:
                    _, size = self._entries.pop(key)
                    self._bytes -= size
                dropped = len(doomed)
            self._invalidations += dropped
            return dropped

    def clear(self) -> int:
        """Drop everything; returns how many entries were dropped."""
        return self.invalidate_table(None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> IntermediateCacheStats:
        with self._lock:
            return IntermediateCacheStats(
                capacity_bytes=self.capacity_bytes,
                entries=len(self._entries),
                bytes=self._bytes,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
            )
