"""Compute-per-byte cost model behind adaptive backend placement.

HIQUE's generated code keeps per-tuple cost small and *predictable*,
which is exactly what makes operator cost estimable: a task batch's
work is roughly proportional to the bytes it touches (page bytes for
staged scans, row-chunk/partition bytes for joins, aggregates, sorts),
with a per-task dispatch overhead on top.  :class:`CostModel` holds
one effective seconds-per-byte rate per ``(batch kind, backend)``
pair:

* **seeded** from static estimates — staged scans favor the thread
  backend (page waits release the GIL and overlap, while the process
  backend must materialize and pickle page bytes in the parent),
  CPU-dense join/aggregate/sort batches favor the process backend
  (the GIL serializes them on threads);
* **refined online** — every batch the scheduler runs, on either
  backend and under any placement, reports its measured latency back
  through :meth:`observe`, which folds it into the rate as an
  exponential moving average; cross-query ``obs`` operator profiles
  can pre-seed rates for kinds this model has not run yet
  (:meth:`refine_from_profile`).

:meth:`choose` is deterministic: given a kind, payload size and task
count it compares the two backends' estimated costs (per-task
overheads and a one-off pool spin-up penalty included) and returns a
:class:`PlacementDecision` with a human-readable reason — the thread
backend wins ties and every batch below the ship floor, since keeping
work in-process is free while shipping never is.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.parallel.proc import ScanTask, shipped_bytes
from repro.parallel.stats import EXECUTOR_PROCESS, EXECUTOR_THREAD

__all__ = [
    "CostModel",
    "PlacementDecision",
    "batch_payload_bytes",
    "cost_kind",
]

#: Payload-size estimate for a scan task whose page bytes are not
#: materialized yet (the process backend reads them at submission
#: time).  Matches the storage layer's page size.
PAGE_BYTES = 4096


@dataclass(frozen=True)
class PlacementDecision:
    """Where one task batch should run, and why."""

    backend: str
    reason: str
    thread_seconds: float
    process_seconds: float


def batch_payload_bytes(tasks: list) -> int:
    """Approximate bytes of work a task batch carries.

    Scan tasks count page bytes (estimated from the page range when
    the bytes are not materialized yet); call tasks reuse the process
    backend's structural :func:`~repro.parallel.proc.shipped_bytes`
    accounting so both backends are costed on the same scale.
    """
    total = 0
    for task in tasks:
        if isinstance(task, ScanTask):
            if task.pages:
                total += sum(len(page) for page in task.pages)
            else:
                total += (task.page_hi - task.page_lo) * PAGE_BYTES
        else:
            total += shipped_bytes(task)
    return total


def cost_kind(label: str | None) -> str:
    """Map a batch label (``"join:o3"``) to a cost-model kind."""
    kind = (label or "").split(":", 1)[0]
    if kind == "join-team":
        return "join"
    return kind if kind in CostModel.SEEDS else "call"


class CostModel:
    """Learned per-kind compute-per-byte rates for both backends."""

    #: Static seconds-per-byte seeds per batch kind, ``(thread,
    #: process)``.  Absolute values only anchor the first decisions
    #: (observations replace them); the *ratios* encode the priors:
    #: staged scans overlap I/O on threads while the process backend
    #: pays parent-side page reads plus pickling, and CPU-dense
    #: batches escape the GIL on processes.
    SEEDS: dict[str, tuple[float, float]] = {
        "stage": (4e-9, 1.6e-8),
        "join": (4.0e-8, 1.6e-8),
        "aggregate": (3.0e-8, 1.4e-8),
        "restage": (2.4e-8, 1.6e-8),
        "sort": (3.0e-8, 1.6e-8),
        "call": (3.0e-8, 2.0e-8),
    }

    #: Fixed per-task dispatch overheads: a thread task is a lock
    #: acquisition and a closure call; a process task is a pickle
    #: round-trip through the pool's call queue.
    THREAD_TASK_SECONDS = 5e-5
    PROCESS_TASK_SECONDS = 1.5e-3
    #: One-off penalty when choosing the process backend would first
    #: have to build its worker pool.
    POOL_SPINUP_SECONDS = 0.15
    #: Batches below this payload never ship: the serialization floor
    #: dominates any conceivable compute win.
    MIN_SHIP_BYTES = 64 * 1024
    #: EMA weight of a new latency observation.
    ALPHA = 0.35
    #: Sane clamp for observed rates (seconds per byte).
    RATE_MIN, RATE_MAX = 1e-12, 1.0

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rates: dict[tuple[str, str], float] = {}
        self._samples: dict[tuple[str, str], int] = {}
        for kind, (thread_rate, process_rate) in self.SEEDS.items():
            self._rates[(kind, EXECUTOR_THREAD)] = thread_rate
            self._rates[(kind, EXECUTOR_PROCESS)] = process_rate

    # -- estimation -----------------------------------------------------------
    def rate(self, kind: str, backend: str) -> float:
        with self._lock:
            return self._rates.get(
                (kind, backend), self.SEEDS["call"][0]
            )

    def samples(self, kind: str, backend: str) -> int:
        with self._lock:
            return self._samples.get((kind, backend), 0)

    def estimate(
        self, kind: str, payload_bytes: int, tasks: int, warm: bool = True
    ) -> tuple[float, float]:
        """``(thread_seconds, process_seconds)`` for one batch."""
        thread_cost = (
            payload_bytes * self.rate(kind, EXECUTOR_THREAD)
            + tasks * self.THREAD_TASK_SECONDS
        )
        process_cost = (
            payload_bytes * self.rate(kind, EXECUTOR_PROCESS)
            + tasks * self.PROCESS_TASK_SECONDS
            + (0.0 if warm else self.POOL_SPINUP_SECONDS)
        )
        return thread_cost, process_cost

    def choose(
        self, kind: str, payload_bytes: int, tasks: int, warm: bool = True
    ) -> PlacementDecision:
        """Deterministically route one batch; threads win ties."""
        thread_cost, process_cost = self.estimate(
            kind, payload_bytes, tasks, warm
        )
        if payload_bytes < self.MIN_SHIP_BYTES:
            return PlacementDecision(
                backend=EXECUTOR_THREAD,
                reason=(
                    f"{payload_bytes}B batch below the "
                    f"{self.MIN_SHIP_BYTES // 1024}KiB ship floor"
                ),
                thread_seconds=thread_cost,
                process_seconds=process_cost,
            )
        reason = (
            f"{kind}: est thread {thread_cost * 1000:.1f}ms vs "
            f"process {process_cost * 1000:.1f}ms over "
            f"{payload_bytes / 1024:.0f}KiB/{tasks} task(s)"
        )
        backend = (
            EXECUTOR_PROCESS
            if process_cost < thread_cost
            else EXECUTOR_THREAD
        )
        return PlacementDecision(
            backend=backend,
            reason=reason,
            thread_seconds=thread_cost,
            process_seconds=process_cost,
        )

    # -- refinement -----------------------------------------------------------
    def observe(
        self,
        kind: str,
        backend: str,
        payload_bytes: int,
        tasks: int,
        seconds: float,
    ) -> None:
        """Fold one measured batch latency into the backend's rate.

        The per-task overhead share is subtracted first (floored at
        10% of the measurement so a wildly overhead-dominated batch
        still contributes a positive compute signal), and the sample
        is clamped before the EMA so a single pathological measurement
        cannot poison the model.
        """
        if payload_bytes <= 0 or seconds <= 0:
            return
        overhead = tasks * (
            self.PROCESS_TASK_SECONDS
            if backend == EXECUTOR_PROCESS
            else self.THREAD_TASK_SECONDS
        )
        compute = max(seconds - overhead, seconds * 0.1)
        sample = min(
            max(compute / payload_bytes, self.RATE_MIN), self.RATE_MAX
        )
        key = (kind, backend)
        with self._lock:
            current = self._rates.get(key)
            if current is None or not self._samples.get(key):
                self._rates[key] = sample
            else:
                self._rates[key] = (
                    (1.0 - self.ALPHA) * current + self.ALPHA * sample
                )
            self._samples[key] = self._samples.get(key, 0) + 1

    def refine_from_profile(self, kind_totals) -> None:
        """Pre-seed thread rates from cross-query operator profiles.

        ``kind_totals`` is what
        :meth:`~repro.obs.profile.ProfileAggregator.kind_totals`
        returns: folded node spans named after operator classes.
        Profiles do not attribute time per backend, so they only
        replace the static seed of a ``(kind, thread)`` rate that has
        no direct latency observations yet — direct measurements
        always win.
        """
        mapping = (
            ("ScanStage", "stage"),
            ("MultiwayJoin", "join"),
            ("Join", "join"),
            ("Aggregate", "aggregate"),
            ("Restage", "restage"),
            ("Sort", "sort"),
        )
        for total in kind_totals:
            name = getattr(total, "kind", "")
            kind = next(
                (model for prefix, model in mapping
                 if name.startswith(prefix)),
                None,
            )
            if kind is None:
                continue
            pages = getattr(total, "pages_hit", 0) + getattr(
                total, "pages_missed", 0
            )
            if kind == "stage" and pages:
                nbytes = pages * PAGE_BYTES
            else:
                nbytes = getattr(total, "rows", 0) * 64
            seconds = getattr(total, "self_seconds", 0.0)
            if nbytes <= 0 or seconds <= 0:
                continue
            key = (kind, EXECUTOR_THREAD)
            with self._lock:
                if self._samples.get(key):
                    continue
                self._rates[key] = min(
                    max(seconds / nbytes, self.RATE_MIN), self.RATE_MAX
                )

    def snapshot(self) -> dict[str, float]:
        """``"kind/backend" → rate`` view for tests and diagnostics."""
        with self._lock:
            return {
                f"{kind}/{backend}": rate
                for (kind, backend), rate in sorted(self._rates.items())
            }
