"""Parallel-execution configuration and per-query statistics."""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.morsel import DEFAULT_MORSEL_PAGES


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs for morsel-driven intra-query parallelism.

    ``workers`` sizes the scan worker pool; ``enabled`` turns the whole
    subsystem off (every query runs the serial composed entry point);
    ``min_pages`` keeps tiny tables serial, where thread fan-out costs
    more than it saves.
    """

    workers: int = 4
    morsel_pages: int = DEFAULT_MORSEL_PAGES
    enabled: bool = True
    #: Tables below this many pages are scanned serially.
    min_pages: int = 16
    #: Merging per-morsel partial sums reassociates floating-point
    #: addition, which can change DOUBLE sum/avg results in the last
    #: ulp relative to a serial scan.  Off by default so parallel
    #: execution is bit-identical to serial; switch on to parallelize
    #: float aggregation too (every other aggregate is exact and always
    #: eligible).
    allow_float_reorder: bool = False

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.morsel_pages <= 0:
            raise ValueError("morsel_pages must be positive")


@dataclass
class ExecutionStats:
    """How one query execution actually ran.

    Surfaced through ``HiqueEngine.last_exec_stats`` and the shell's
    timing line, so operators can see whether a statement went
    parallel and how the scan was divided.
    """

    parallel: bool = False
    #: Workers that actually ran (≤ configured when morsels are few).
    workers: int = 1
    morsels: int = 0
    pages: int = 0
    rows: int = 0
    elapsed_seconds: float = 0.0
    #: Why execution stayed serial ("" when it went parallel).
    reason: str = ""

    def describe(self) -> str:
        if self.parallel:
            return (
                f"parallel: {self.workers} workers, {self.morsels} morsels "
                f"over {self.pages} pages"
            )
        return f"serial ({self.reason})" if self.reason else "serial"
