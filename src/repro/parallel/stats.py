"""Parallel-execution configuration and per-query statistics."""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.parallel.morsel import DEFAULT_MORSEL_PAGES

#: Task backends selectable through ``ParallelConfig.executor``.
EXECUTOR_THREAD = "thread"
EXECUTOR_PROCESS = "process"
EXECUTOR_KINDS = (EXECUTOR_THREAD, EXECUTOR_PROCESS)

#: Reported (never configured) backend of a run whose batches were
#: split across both backends by the adaptive placement chooser.
EXECUTOR_MIXED = "mixed"

#: Placement policies selectable through ``ParallelConfig.placement``.
#: ``"thread"``/``"process"`` force every batch onto one backend
#: (equivalent to the legacy ``executor`` knob); ``"auto"`` routes each
#: node's task batches independently through the cost model, enabling
#: mixed placement inside one query.
PLACEMENT_AUTO = "auto"
PLACEMENT_KINDS = (EXECUTOR_THREAD, EXECUTOR_PROCESS, PLACEMENT_AUTO)

#: Environment default for the task backend (``thread``/``process``).
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: Environment default for the placement policy
#: (``thread``/``process``/``auto``).
PLACEMENT_ENV = "REPRO_PLACEMENT"

#: Environment default for cross-phase pipelined scheduling.
PIPELINE_ENV = "REPRO_PIPELINE"


def default_executor() -> str:
    """The task backend to use when none is chosen explicitly.

    Reads ``REPRO_EXECUTOR`` so deployments (and the CI matrix leg)
    can flip every engine onto the process backend without touching
    call sites; unset or empty means the thread backend.
    """
    configured = os.environ.get(EXECUTOR_ENV, "").strip().lower()
    if not configured:
        return EXECUTOR_THREAD
    if configured not in EXECUTOR_KINDS:
        raise ValueError(
            f"{EXECUTOR_ENV} must be one of {EXECUTOR_KINDS}, "
            f"got {configured!r}"
        )
    return configured


def default_placement() -> str:
    """The placement policy to use when none is chosen explicitly.

    Reads ``REPRO_PLACEMENT`` so deployments (and CI legs) can flip
    every engine onto adaptive placement without touching call sites;
    unset or empty means "follow the ``executor`` knob", preserving
    the pre-placement behavior exactly.
    """
    configured = os.environ.get(PLACEMENT_ENV, "").strip().lower()
    if not configured:
        return ""
    if configured not in PLACEMENT_KINDS:
        raise ValueError(
            f"{PLACEMENT_ENV} must be one of {PLACEMENT_KINDS}, "
            f"got {configured!r}"
        )
    return configured


def default_pipeline() -> bool:
    """Whether pipelined (dependency-driven) scheduling is on by default.

    Reads ``REPRO_PIPELINE`` so a deployment (and the CI leg) can flip
    every engine onto the pipelined scheduler without touching call
    sites; unset or empty means barrier scheduling.
    """
    configured = os.environ.get(PIPELINE_ENV, "").strip().lower()
    if not configured:
        return False
    if configured in ("1", "true", "on", "yes"):
        return True
    if configured in ("0", "false", "off", "no"):
        return False
    raise ValueError(
        f"{PIPELINE_ENV} must be a boolean flag (1/0/on/off), "
        f"got {configured!r}"
    )


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs for morsel-driven intra-query parallelism.

    ``workers`` sizes the worker pool shared by every parallel phase;
    ``enabled`` turns the whole subsystem off (every query runs the
    serial composed entry point); ``min_pages`` keeps tiny table scans
    serial and ``min_rows`` keeps small intermediates (join inputs,
    aggregation inputs, final sorts) serial, where thread fan-out costs
    more than it saves.

    ``executor`` picks the task backend: ``"thread"`` runs tasks on an
    in-process pool (best for latency-bound scans, whose page waits
    overlap under the GIL), ``"process"`` ships O2 tasks to a
    :class:`~concurrent.futures.ProcessPoolExecutor` whose workers
    re-import the generated module from the compiler's work directory
    (best for CPU-bound in-memory phases, which the GIL serializes on
    threads).  The process backend pays a serialization toll — page
    bytes and row chunks are pickled per task — and falls back to the
    thread backend, with a stats note, for O0 closure plans and for
    tasks whose payloads refuse to pickle.
    """

    workers: int = 4
    morsel_pages: int = DEFAULT_MORSEL_PAGES
    enabled: bool = True
    #: Task backend: ``"thread"`` (in-process pool) or ``"process"``.
    executor: str = EXECUTOR_THREAD
    #: Placement policy: ``"thread"``/``"process"`` force one backend
    #: for every batch, ``"auto"`` routes each node's batches through
    #: the compute-per-byte cost model (mixed placement inside one
    #: query), and ``""`` (the default) follows the ``executor`` knob
    #: unchanged.  Defaults to the ``REPRO_PLACEMENT`` environment
    #: variable, else ``""``.
    placement: str = field(default_factory=default_placement)
    #: Dependency-driven cross-phase scheduling: operators launch the
    #: moment their inputs are complete instead of at phase barriers,
    #: so independent scans run concurrently and a CPU-bound join can
    #: overlap a latency-bound scan.  Results stay byte-identical —
    #: only wall-clock scheduling changes.  Defaults to the
    #: ``REPRO_PIPELINE`` environment flag, else off.
    pipeline: bool = field(default_factory=default_pipeline)
    #: Upper bound, in seconds, on waiting for a task result while the
    #: backend makes no progress (time queued behind other healthy
    #: batches on the shared pool does not count).  ``None`` waits
    #: forever; a bound turns a hung or wedged worker into a clean
    #: ``ExecutionError`` instead of a stalled query.  The process
    #: backend kills its worker pool on expiry; thread workers cannot
    #: be killed, so the thread backend abandons the stalled pool (the
    #: wedged task keeps running detached, the rest of its batch is
    #: poisoned) and later runs get a fresh one.
    task_timeout: float | None = None
    #: Tables below this many pages are scanned serially.
    min_pages: int = 16
    #: Materialized operator inputs below this many rows (summed over
    #: both join sides) run the operator's serial generated function.
    min_rows: int = 2048
    #: Merging per-morsel partial sums reassociates floating-point
    #: addition, which can change DOUBLE sum/avg results in the last
    #: ulp relative to a serial scan.  Off by default so parallel
    #: execution is bit-identical to serial; switch on to parallelize
    #: float aggregation too (every other aggregate is exact and always
    #: eligible — staging, joins and sorts never reassociate floats, so
    #: they stay parallel and exact regardless of this knob).
    allow_float_reorder: bool = False

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.morsel_pages <= 0:
            raise ValueError("morsel_pages must be positive")
        if self.min_rows <= 0:
            raise ValueError("min_rows must be positive")
        if self.executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"executor must be one of {EXECUTOR_KINDS}, "
                f"got {self.executor!r}"
            )
        if self.placement and self.placement not in PLACEMENT_KINDS:
            raise ValueError(
                f"placement must be one of {PLACEMENT_KINDS} (or empty "
                f"to follow the executor knob), got {self.placement!r}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")

    def effective_placement(self) -> str:
        """The placement policy actually in force for a run.

        An empty ``placement`` defers to the legacy ``executor`` knob
        (whose values are exactly the two forced policies).
        """
        return self.placement or self.executor


@dataclass
class PhaseStats:
    """Wall time and fan-out of one phase of a scheduled execution.

    ``workers == 1`` means the phase's operators ran their serial
    generated functions (below thresholds, or serial by design like a
    final LIMIT); ``tasks`` counts the units of work the phase
    dispatched (morsels, partition pairs, row chunks).  ``backend``
    records which task backend actually ran the phase — ``"process"``
    implies every task's inputs and outputs crossed a process boundary
    (pickled page bytes / row chunks), so its ``seconds`` include that
    serialization overhead.  ``overlap_seconds`` is how much of this
    phase's wall time ran concurrently with other operator nodes —
    another phase's, or a sibling of the same phase (two table scans
    staging side by side) — nonzero only under the pipelined
    scheduler, where e.g. independent scans stage together and a join
    can run while a later input is still staging; ``Σ seconds −
    overlap`` therefore approximates the critical path.
    """

    name: str
    seconds: float = 0.0
    workers: int = 1
    tasks: int = 0
    backend: str = EXECUTOR_THREAD
    #: Seconds of this phase's wall time spent overlapped with other
    #: phases (pipelined scheduling only; 0.0 under phase barriers).
    overlap_seconds: float = 0.0

    def describe(self) -> str:
        suffix = ""
        if self.backend == EXECUTOR_PROCESS:
            suffix = "p"
        elif self.backend == EXECUTOR_MIXED:
            suffix = "m"
        base = (
            f"{self.name} {self.seconds * 1000:.1f} ms/"
            f"{self.workers}w{suffix}"
        )
        if self.overlap_seconds > 0:
            base += f" ({self.overlap_seconds * 1000:.1f} overlapped)"
        return base


@dataclass
class ExecutionStats:
    """How one query execution actually ran.

    Surfaced through ``HiqueEngine.last_exec_stats`` and the shell's
    timing line, so operators can see whether a statement went
    parallel, how each phase (stage → join → aggregate → final) was
    divided, and why any part stayed serial.
    """

    parallel: bool = False
    #: Task backend that ran the parallel phases: ``"thread"``,
    #: ``"process"`` (only when at least one phase actually shipped
    #: tasks to worker processes), or ``"mixed"`` when the adaptive
    #: placement chooser split one query's batches across both.
    backend: str = EXECUTOR_THREAD
    #: Placement policy in force for this run (``"thread"``,
    #: ``"process"`` or ``"auto"``; ``""`` for serial executions).
    placement: str = ""
    #: True when the dependency-driven (pipelined) scheduler ran this
    #: query, i.e. operators launched as their inputs completed rather
    #: than at phase barriers.
    pipelined: bool = False
    #: Workers that actually ran (≤ configured when tasks are few).
    workers: int = 1
    morsels: int = 0
    pages: int = 0
    rows: int = 0
    elapsed_seconds: float = 0.0
    #: Why execution stayed serial ("" when it went parallel).
    reason: str = ""
    #: Per-phase timing/fan-out breakdown, in stage → join →
    #: aggregate → final order (empty when the scheduler never ran).
    phases: list[PhaseStats] = field(default_factory=list)
    #: Phase-level serial decisions, kept even when the query as a
    #: whole went parallel (e.g. a float-gated aggregation).
    notes: list[str] = field(default_factory=list)

    def describe(self) -> str:
        if self.parallel:
            mode = (
                f"{self.backend}, pipelined"
                if self.pipelined
                else self.backend
            )
            if self.placement == PLACEMENT_AUTO:
                mode += ", adaptive"
            base = f"parallel: {self.workers} workers ({mode})"
            if self.morsels:
                base += f", {self.morsels} morsels over {self.pages} pages"
            if self.phases:
                base += "; " + ", ".join(
                    phase.describe() for phase in self.phases
                )
            return base
        return f"serial ({self.reason})" if self.reason else "serial"
