"""The parallel execution subsystem.

Three layers turn the single-threaded reproduction into a concurrent
engine:

* **thread-safe storage** — the buffer manager latches its frame table
  (pool-level lock for lookup/eviction, per-frame pin counts so pinned
  pages are never evicted under a reader), page files use positioned
  reads, and the catalogue gates DDL behind a
  :class:`~repro.parallel.latch.ReadWriteLatch`;
* **morsel-driven intra-query parallelism** — a
  :class:`~repro.parallel.morsel.MorselDispatcher` slices table scans
  into page-range morsels and the
  :class:`~repro.parallel.executor.ParallelExecutor` runs generated
  scan/partial-aggregation code per morsel with thread-local state,
  merging partials order-preservingly;
* **a concurrent service** — the query service admits concurrent
  readers through the catalogue's read gate instead of a global
  execution lock (see :mod:`repro.service.service`).

This ``__init__`` stays import-light (the storage layer imports the
latch); the executor is imported lazily on first attribute access.
"""

from repro.parallel.latch import ReadWriteLatch
from repro.parallel.merge import (
    Desc,
    chunk_bounds,
    kway_merge,
    merge_ordered_runs,
    merge_sorted_runs,
)
from repro.parallel.morsel import (
    DEFAULT_MORSEL_PAGES,
    AffinityDispatcher,
    Morsel,
    MorselDispatcher,
    TaskDispatcher,
    coarse_morsel_pages,
    morsels_for,
)
from repro.parallel.stats import (
    EXECUTOR_KINDS,
    EXECUTOR_MIXED,
    EXECUTOR_PROCESS,
    EXECUTOR_THREAD,
    PLACEMENT_AUTO,
    PLACEMENT_KINDS,
    ExecutionStats,
    ParallelConfig,
    PhaseStats,
)

__all__ = [
    "AffinityDispatcher",
    "BackendRetired",
    "CostModel",
    "DEFAULT_MORSEL_PAGES",
    "Desc",
    "EXECUTOR_KINDS",
    "EXECUTOR_MIXED",
    "EXECUTOR_PROCESS",
    "EXECUTOR_THREAD",
    "ExecutionStats",
    "Morsel",
    "MorselDispatcher",
    "PLACEMENT_AUTO",
    "PLACEMENT_KINDS",
    "ParallelConfig",
    "ParallelExecutor",
    "PartitionHandoff",
    "PhaseStats",
    "PlacementDecision",
    "ProcessBackend",
    "ReadWriteLatch",
    "TaskDispatcher",
    "TaskNotPicklable",
    "ThreadBackend",
    "chunk_bounds",
    "coarse_morsel_pages",
    "kway_merge",
    "merge_aggregate_partials",
    "merge_ordered_runs",
    "merge_sorted_runs",
    "morsels_for",
]


def __getattr__(name: str):
    # ``executor``/``backend``/``cost`` pull in the core/errors stack;
    # importing them here eagerly would cycle through storage →
    # parallel → core → storage.
    if name in (
        "ParallelExecutor",
        "PartitionHandoff",
        "merge_aggregate_partials",
    ):
        from repro.parallel import executor

        return getattr(executor, name)
    if name in (
        "BackendRetired",
        "ProcessBackend",
        "TaskNotPicklable",
        "ThreadBackend",
    ):
        from repro.parallel import backend

        return getattr(backend, name)
    if name in ("CostModel", "PlacementDecision"):
        from repro.parallel import cost

        return getattr(cost, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
