"""Morsel-driven parallel execution of generated query code.

The serial executor calls a generated module's composed ``run_query``
entry point.  This executor instead walks the physical plan's operator
list itself — a *phase scheduler* — and drives each operator's
generated entry points with a worker pool wherever an order-preserving
parallel strategy exists:

* **stage** — every table scan (staged or not) is split into page-range
  :class:`~repro.parallel.morsel.Morsel`\\ s; each worker runs the same
  generated scan–filter–project(–prep) loop over its slices, and the
  per-morsel results are reassembled to exactly the serial staging
  output: plain chunks concatenate in page order, sorted runs go
  through a stability-preserving k-way merge, partitions merge bucket
  by bucket (see :mod:`repro.parallel.merge`);
* **join** — hash/hybrid joins run their generated ``*_pair`` entry
  point per partition pair, merge and nested-loops joins per outer row
  chunk (with the inner side pre-sliced by binary search for merges);
  per-task output buffers concatenate in task order, which is the
  serial emission order;
* **aggregate** — map and global aggregation fold row chunks into
  thread-local partial states through the generated ``*_partial``
  function, merged group by group here; sort/hybrid aggregation
  consumes its (parallel-)staged input through the serial generated
  function, which is exact by construction;
* **final** — ORDER BY runs as per-chunk sorted runs plus a
  mixed-direction k-way merge; projections fuse into the scan they
  consume; LIMIT is a serial slice.

Workers pull work units from shared dispatchers, so load balances
dynamically; every merge is order-preserving, which keeps parallel
output row-for-row identical to a serial run for every plan shape.
Operators below the configured size thresholds — and the few without a
parallel strategy (restaging, join teams) — simply run their serial
generated function in plan order, so a scheduled run degrades
gracefully instead of falling back wholesale.  :class:`ExecutionStats`
reports the per-phase timings, worker counts and any serial decisions.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.emitter import OPT_O2
from repro.core.executor import build_context, run_compiled
from repro.core.templates.aggregate import collect_aggregates
from repro.errors import MapDirectoryOverflow
from repro.memsim.probe import NULL_PROBE, NullProbe
from repro.parallel.merge import (
    chunk_bounds,
    lower_bound,
    merge_fine_partition_runs,
    merge_ordered_runs,
    merge_partition_runs,
    merge_partition_sorted_runs,
    merge_sorted_runs,
)
from repro.parallel.morsel import MorselDispatcher, TaskDispatcher
from repro.parallel.stats import ExecutionStats, ParallelConfig, PhaseStats
from repro.plan.descriptors import (
    AGG_MAP,
    Aggregate,
    JOIN_HASH,
    JOIN_MERGE,
    JOIN_NESTED,
    Join,
    Limit,
    MultiwayJoin,
    PREP_NONE,
    PREP_PARTITION,
    PREP_PARTITION_SORT,
    PREP_SORT,
    Project,
    Restage,
    ScanStage,
    Sort,
)
from repro.sql.bound import (
    BoundAggregate,
    BoundArithmetic,
    BoundColumn,
    BoundParameter,
)
from repro.storage.types import DOUBLE

#: Canonical phase order for reporting.
PHASE_ORDER = ("stage", "join", "aggregate", "final")

_PHASE_OF = {
    ScanStage: "stage",
    Restage: "stage",
    Join: "join",
    MultiwayJoin: "join",
    Aggregate: "aggregate",
    Project: "final",
    Sort: "final",
    Limit: "final",
}


@dataclass
class _Report:
    """What a scheduled run did: per-phase stats plus serial notes."""

    skips: list[str] = field(default_factory=list)
    phases: dict[str, PhaseStats] = field(default_factory=dict)
    morsels: int = 0
    pages: int = 0

    def skip(self, reason: str) -> None:
        if reason not in self.skips:
            self.skips.append(reason)

    def note(
        self, phase: str, seconds: float, workers: int, tasks: int
    ) -> None:
        entry = self.phases.get(phase)
        if entry is None:
            self.phases[phase] = PhaseStats(
                name=phase, seconds=seconds, workers=workers, tasks=tasks
            )
        else:
            entry.seconds += seconds
            entry.workers = max(entry.workers, workers)
            entry.tasks += tasks

    @property
    def went_parallel(self) -> bool:
        return any(phase.workers > 1 for phase in self.phases.values())

    def max_workers(self) -> int:
        return max(
            (phase.workers for phase in self.phases.values()), default=1
        )

    def ordered_phases(self) -> list[PhaseStats]:
        return [
            self.phases[name] for name in PHASE_ORDER if name in self.phases
        ]


class ParallelExecutor:
    """Runs prepared queries over a shared worker pool.

    One instance per engine; thread-safe, so concurrent sessions share
    the pool and their work units interleave.  ``run()`` never changes
    result semantics: every parallel strategy reassembles its partial
    results order-preservingly, and anything else runs the serial
    generated functions in plan order.
    """

    def __init__(self, config: ParallelConfig | None = None):
        self.config = config if config is not None else ParallelConfig()
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self.parallel_runs = 0
        self.serial_runs = 0

    # -- lifecycle ---------------------------------------------------------------
    def _submit(self, fn, count: int) -> list:
        """Create the pool if needed and submit ``count`` tasks.

        Pool creation and submission share one critical section with
        :meth:`reconfigure`/:meth:`close`, so a task is never submitted
        to a pool that has been retired.
        """
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.config.workers,
                    thread_name_prefix="repro-morsel",
                )
            return [self._pool.submit(fn) for _ in range(count)]

    def run_tasks(self, tasks: list, config: ParallelConfig) -> tuple[list, int]:
        """Run zero-arg callables on the pool; results in task order.

        Workers claim indices from a :class:`TaskDispatcher`, so a slow
        task never stalls the queue behind it.  Returns ``(results,
        actual_workers)``; the first task exception (if any) is
        re-raised after all workers drain.
        """
        dispatcher = TaskDispatcher(len(tasks))
        out: list = [None] * len(tasks)
        workers = min(config.workers, len(tasks))

        def drain() -> None:
            while True:
                index = dispatcher.next()
                if index is None:
                    return
                out[index] = tasks[index]()

        self.drain_futures(self._submit(drain, workers))
        return out, workers

    @staticmethod
    def drain_futures(futures: list, collect=None) -> None:
        """Await every worker future, then re-raise the first error.

        Draining all futures before raising keeps no worker running
        against state the caller is about to unwind; ``collect``
        receives each successful result in submission order.
        """
        error: BaseException | None = None
        for future in futures:
            try:
                result = future.result()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if error is None:
                    error = exc
            else:
                if collect is not None:
                    collect(result)
        if error is not None:
            raise error

    def reconfigure(self, config: ParallelConfig) -> None:
        """Swap the configuration and retire the current worker pool.

        Safe against in-flight runs: they captured the old config on
        entry and already hold futures on the old pool, which drains
        them before shutting down; later runs lazily build a fresh pool
        sized to the new configuration.
        """
        with self._lock:
            pool, self._pool = self._pool, None
            self.config = config
        if pool is not None:
            pool.shutdown(wait=True)

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # -- execution ----------------------------------------------------------------
    def run(
        self,
        prepared,
        params: tuple = (),
        probe: NullProbe = NULL_PROBE,
    ) -> tuple[list[tuple], ExecutionStats]:
        """Execute a :class:`~repro.core.engine.PreparedQuery`.

        Returns ``(rows, stats)``; rows are identical to what the serial
        entry point produces for the same inputs.
        """
        started = time.perf_counter()
        # One consistent view of the knobs for the whole run, even if a
        # concurrent reconfigure() swaps self.config mid-execution.
        config = self.config
        reason = self._ineligible(prepared, probe, config)
        if reason:
            rows = run_compiled(
                prepared.compiled, prepared.plan, probe=probe, params=params
            )
            return rows, self.note_serial(
                len(rows), time.perf_counter() - started, reason
            )

        report = _Report()
        rows = _ScheduledRun(
            self, prepared, tuple(params), config, report
        ).execute()
        elapsed = time.perf_counter() - started
        if not report.went_parallel:
            with self._lock:
                self.serial_runs += 1
            return rows, ExecutionStats(
                parallel=False,
                rows=len(rows),
                elapsed_seconds=elapsed,
                reason="; ".join(report.skips) or "no parallelizable phase",
                phases=report.ordered_phases(),
                notes=list(report.skips),
            )
        with self._lock:
            self.parallel_runs += 1
        return rows, ExecutionStats(
            parallel=True,
            workers=report.max_workers(),
            morsels=report.morsels,
            pages=report.pages,
            rows=len(rows),
            elapsed_seconds=elapsed,
            phases=report.ordered_phases(),
            notes=list(report.skips),
        )

    def note_serial(
        self, num_rows: int, elapsed_seconds: float, reason: str
    ) -> ExecutionStats:
        """Account for a serial execution and describe it.

        Also used by the engine when a parallel attempt aborts (map
        directory overflow) and the re-planned query runs serially
        outside :meth:`run`.
        """
        with self._lock:
            self.serial_runs += 1
        return ExecutionStats(
            parallel=False,
            rows=num_rows,
            elapsed_seconds=elapsed_seconds,
            reason=reason,
        )

    @staticmethod
    def _ineligible(
        prepared, probe: NullProbe, config: ParallelConfig
    ) -> str:
        """A reason to skip scheduling entirely, or "" to schedule."""
        if not config.enabled:
            return "parallel execution disabled"
        if config.workers <= 1:
            return "single worker configured"
        if probe.enabled:
            return "traced execution (probe is not thread-safe)"
        if prepared.compiled.traced:
            # A traced module dereferences ctx.probe internals; without
            # a probe the serial path raises the proper ExecutionError.
            return "traced module (runs on the serial entry point)"
        return ""


class _ScheduledRun:
    """One execution of a plan through the phase scheduler."""

    def __init__(
        self,
        executor: ParallelExecutor,
        prepared,
        params: tuple,
        config: ParallelConfig,
        report: _Report,
    ):
        self.executor = executor
        self.prepared = prepared
        self.plan = prepared.plan
        self.namespace = prepared.compiled.namespace
        self.names = prepared.generated.function_names
        self.params = params
        self.config = config
        self.report = report
        self.ctx = build_context(
            self.plan, opt_level=prepared.compiled.opt_level, params=params
        )
        #: op_id → materialized result (None for a scan fused away).
        self.results: dict[int, object] = {}

    def execute(self) -> list[tuple]:
        operators = list(self.plan.operators)
        index = 0
        while index < len(operators):
            op = operators[index]
            consumed = 1
            if isinstance(op, ScanStage):
                following = (
                    operators[index + 1]
                    if index + 1 < len(operators)
                    else None
                )
                consumed = self._scan(op, following)
            elif isinstance(op, Join):
                self._join(op)
            elif isinstance(op, Aggregate):
                self._aggregate(op)
            elif isinstance(op, Sort):
                self._sort(op)
            else:
                self._serial(op)
            index += consumed
        return self.results[self.plan.root.op_id]

    # -- shared helpers ---------------------------------------------------------------
    def _serial(self, op) -> None:
        """Run one operator's serial generated function in plan order."""
        started = time.perf_counter()
        fn = self.namespace[self.names[op.op_id]]
        args = [self.results[input_id] for input_id in op.inputs]
        self.results[op.op_id] = fn(self.ctx, *args)
        self.report.note(
            _PHASE_OF[type(op)], time.perf_counter() - started, 1, 1
        )

    def _chunk_size(self, num_rows: int) -> int:
        """Rows per chunk: ~4 chunks per worker, floored so tiny chunks
        never dominate dispatch overhead."""
        per_worker = -(-num_rows // (self.config.workers * 4))
        return max(per_worker, self.config.min_rows // 8, 1)

    def _float_gated(self, op: Aggregate) -> bool:
        """True when merging this aggregate's partials would reassociate
        DOUBLE addition and the config demands bit-identical results."""
        if self.config.allow_float_reorder:
            return False
        for node in collect_aggregates(op):
            if (
                node.func in ("sum", "avg")
                and node.argument is not None
                and node.argument.dtype == DOUBLE
            ):
                return True
        return False

    # -- stage phase -------------------------------------------------------------------
    def _scan(self, op: ScanStage, following) -> int:
        """Morsel-parallel scan + staging; returns operators consumed."""
        table = op.table
        config = self.config
        if table.num_pages < config.min_pages:
            self.report.skip(
                f"table {op.binding!r}: {table.num_pages} pages "
                f"(< min_pages {config.min_pages})"
            )
            self._serial(op)
            return 1
        if op.prep.kind == PREP_PARTITION_SORT and op.prep.fine:
            # The template emits a value-directory dict for this combo;
            # merge_partition_sorted_runs expects coarse bucket lists.
            # The optimizer never builds it today — stay serial rather
            # than corrupt results if a future planner change does.
            self.report.skip(
                f"table {op.binding!r}: fine partition-sort staging "
                f"has no parallel merge"
            )
            self._serial(op)
            return 1
        dispatcher = MorselDispatcher(table.num_pages, config.morsel_pages)
        if dispatcher.num_morsels < 2:
            self.report.skip(f"table {op.binding!r}: single morsel")
            self._serial(op)
            return 1

        fused = self._fusable_consumer(op, following)
        scan_fn = self.namespace[self.names[op.op_id]]
        post_fn = None
        if isinstance(fused, Aggregate):
            post_fn = self.namespace[self.names[fused.op_id] + "_partial"]
        elif isinstance(fused, Project):
            post_fn = self.namespace[self.names[fused.op_id]]

        started = time.perf_counter()
        workers = min(config.workers, dispatcher.num_morsels)
        ctx = self.ctx

        def drain() -> dict[int, object]:
            """One worker: pull morsels until the dispatcher is dry."""
            partials: dict[int, object] = {}
            while True:
                morsel = dispatcher.next()
                if morsel is None:
                    return partials
                rows = scan_fn(ctx, morsel.page_lo, morsel.page_hi)
                partials[morsel.seq] = (
                    post_fn(ctx, rows) if post_fn is not None else rows
                )

        by_seq: dict[int, object] = {}
        self.executor.drain_futures(
            self.executor._submit(drain, workers), by_seq.update
        )
        ordered = [by_seq[seq] for seq in sorted(by_seq)]
        self.report.note(
            "stage", time.perf_counter() - started, workers,
            dispatcher.num_morsels,
        )
        self.report.morsels += dispatcher.num_morsels
        self.report.pages += table.num_pages

        if isinstance(fused, Aggregate):
            started = time.perf_counter()
            input_layout = self.plan.op(fused.input_op).output_layout
            rows = merge_aggregate_partials(
                fused,
                input_layout,
                ordered,
                self.params,
                directory_order=self.prepared.compiled.opt_level == OPT_O2,
            )
            self.results[op.op_id] = None
            self.results[fused.op_id] = rows
            self.report.note(
                "aggregate", time.perf_counter() - started, 1, 1
            )
            return 2
        if isinstance(fused, Project):
            rows = []
            for chunk in ordered:
                rows.extend(chunk)
            self.results[op.op_id] = None
            self.results[fused.op_id] = rows
            return 2

        prep = op.prep
        if prep.kind == PREP_SORT:
            value: object = merge_sorted_runs(ordered, prep.keys)
        elif prep.kind == PREP_PARTITION:
            value = (
                merge_fine_partition_runs(ordered)
                if prep.fine
                else merge_partition_runs(ordered)
            )
        elif prep.kind == PREP_PARTITION_SORT:
            value = merge_partition_sorted_runs(ordered, prep.keys)
        else:
            rows = []
            for chunk in ordered:
                rows.extend(chunk)
            value = rows
        self.results[op.op_id] = value
        return 1

    def _fusable_consumer(self, op: ScanStage, following):
        """The next operator, when its work can ride inside scan tasks.

        Only unstaged scans fuse (staged consumers need the complete
        sorted/partitioned input), and only with the one operator that
        consumes them: a projection (a pure per-row map) or a map/global
        aggregation whose generated ``*_partial`` exists and whose
        merge is exact under the float-reorder policy.
        """
        if following is None or op.prep.kind != PREP_NONE:
            return None
        if isinstance(following, Project) and following.input_op == op.op_id:
            return following
        if (
            isinstance(following, Aggregate)
            and following.input_op == op.op_id
        ):
            if following.group_positions and following.algorithm != AGG_MAP:
                return None
            name = self.names[following.op_id] + "_partial"
            if name not in self.namespace:
                return None
            if self._float_gated(following):
                return None
            return following
        return None

    # -- join phase --------------------------------------------------------------------
    def _join(self, op: Join) -> None:
        pair_fn = self.namespace.get(self.names[op.op_id] + "_pair")
        if pair_fn is None:
            self.report.skip("join module lacks a pair entry point")
            self._serial(op)
            return
        left = self.results[op.left_op]
        right = self.results[op.right_op]
        config = self.config
        if op.algorithm in (JOIN_MERGE, JOIN_NESTED):
            total = len(left) + len(right)
        elif op.algorithm == JOIN_HASH:
            total = sum(len(rows) for rows in left.values()) + sum(
                len(rows) for rows in right.values()
            )
        else:
            total = sum(len(rows) for rows in left) + sum(
                len(rows) for rows in right
            )
        if total < config.min_rows:
            self.report.skip(
                f"join input {total} rows (< min_rows {config.min_rows})"
            )
            self._serial(op)
            return

        ctx = self.ctx
        tasks: list = []
        if op.algorithm in (JOIN_MERGE, JOIN_NESTED):
            bounds = chunk_bounds(len(left), self._chunk_size(len(left)))
            if len(bounds) < 2:
                self.report.skip("join outer input yields a single chunk")
                self._serial(op)
                return
            for lo, hi in bounds:
                chunk = left[lo:hi]
                if op.algorithm == JOIN_MERGE:
                    # Each outer chunk only needs inner rows from its
                    # first key onward; the merge body skips the rest.
                    start = lower_bound(
                        right, op.right_key, chunk[0][op.left_key]
                    )
                    inner = right[start:]
                else:
                    inner = right
                tasks.append(
                    lambda c=chunk, r=inner: pair_fn(ctx, c, r)
                )
        elif op.algorithm == JOIN_HASH:
            # Serial emission order: left directory insertion order,
            # skipping keys with no right-side partition.
            keys = [key for key in left if key in right]
            if len(keys) < 2:
                self.report.skip("fewer than two matching fine partitions")
                self._serial(op)
                return
            tasks = [
                lambda k=key: pair_fn(ctx, left[k], right[k])
                for key in keys
            ]
        else:  # hybrid: corresponding coarse partitions
            if len(left) < 2:
                self.report.skip("single coarse partition")
                self._serial(op)
                return
            tasks = [
                lambda i=index: pair_fn(ctx, left[i], right[i])
                for index in range(len(left))
            ]

        started = time.perf_counter()
        chunks, workers = self.executor.run_tasks(tasks, config)
        out: list = []
        for chunk in chunks:
            out.extend(chunk)
        self.results[op.op_id] = out
        self.report.note(
            "join", time.perf_counter() - started, workers, len(tasks)
        )

    # -- aggregate phase ---------------------------------------------------------------
    def _aggregate(self, op: Aggregate) -> None:
        config = self.config
        partial = self.namespace.get(self.names[op.op_id] + "_partial")
        if partial is None or (
            op.group_positions and op.algorithm != AGG_MAP
        ):
            # Sort/hybrid aggregation folds its (parallel-)staged input
            # through the serial generated function — exact, since the
            # staged input is byte-identical to a serial run's.
            self._serial(op)
            return
        if self._float_gated(op):
            self.report.skip(
                "DOUBLE sum/avg is order-sensitive "
                "(allow_float_reorder is off)"
            )
            self._serial(op)
            return
        rows = self.results[op.input_op]
        if len(rows) < config.min_rows:
            self.report.skip(
                f"aggregate input {len(rows)} rows "
                f"(< min_rows {config.min_rows})"
            )
            self._serial(op)
            return
        bounds = chunk_bounds(len(rows), self._chunk_size(len(rows)))
        if len(bounds) < 2:
            self._serial(op)
            return
        ctx = self.ctx
        tasks = [
            lambda lo=lo, hi=hi: partial(ctx, rows[lo:hi])
            for lo, hi in bounds
        ]
        started = time.perf_counter()
        partials, workers = self.executor.run_tasks(tasks, config)
        input_layout = self.plan.op(op.input_op).output_layout
        self.results[op.op_id] = merge_aggregate_partials(
            op,
            input_layout,
            partials,
            self.params,
            directory_order=self.prepared.compiled.opt_level == OPT_O2,
        )
        self.report.note(
            "aggregate", time.perf_counter() - started, workers, len(tasks)
        )

    # -- final phase -------------------------------------------------------------------
    def _sort(self, op: Sort) -> None:
        rows = self.results[op.input_op]
        config = self.config
        if len(rows) < config.min_rows:
            self.report.skip(
                f"sort input {len(rows)} rows (< min_rows {config.min_rows})"
            )
            self._serial(op)
            return
        bounds = chunk_bounds(len(rows), self._chunk_size(len(rows)))
        if len(bounds) < 2:
            self._serial(op)
            return
        sort_fn = self.namespace[self.names[op.op_id]]
        ctx = self.ctx
        # Each task sorts a contiguous slice copy with the generated
        # ORDER BY function; the k-way merge's run-order tie-break then
        # reproduces the serial stable sort exactly.
        tasks = [
            lambda lo=lo, hi=hi: sort_fn(ctx, rows[lo:hi])
            for lo, hi in bounds
        ]
        started = time.perf_counter()
        runs, workers = self.executor.run_tasks(tasks, config)
        self.results[op.op_id] = merge_ordered_runs(runs, op.keys)
        self.report.note(
            "final", time.perf_counter() - started, workers, len(tasks)
        )


# -- aggregate merging ------------------------------------------------------------------
#
# Generated ``*_partial`` functions return ``{group key: [state, ...]}``
# with one 4-slot state ``[sum, count, minimum, maximum]`` per aggregate
# node, in :func:`collect_aggregates` order.  The representation is
# mergeable without knowing the aggregate function: sums and counts add,
# minima/maxima compare.

_SUM, _COUNT, _MIN, _MAX = range(4)


def merge_aggregate_partials(
    op: Aggregate,
    input_layout,
    partials: list[dict],
    params: tuple = (),
    directory_order: bool = True,
) -> list[tuple]:
    """Fold per-chunk partial states and finalize output rows.

    Partials must arrive in chunk (page/row) order: group keys are
    merged first-seen, which reproduces the serial scan's discovery
    order and therefore the serial output order (for map aggregation,
    via the reconstructed value directories of Figure 4(b)).
    """
    merged: dict[tuple, list[list]] = {}
    for partial in partials:
        for key, states in partial.items():
            acc = merged.get(key)
            if acc is None:
                # Adopt the worker-local states outright (each partial
                # dict is owned by exactly one chunk).
                merged[key] = states
            else:
                for state, other in zip(acc, states):
                    state[_SUM] += other[_SUM]
                    state[_COUNT] += other[_COUNT]
                    if other[_MIN] is not None and (
                        state[_MIN] is None or other[_MIN] < state[_MIN]
                    ):
                        state[_MIN] = other[_MIN]
                    if other[_MAX] is not None and (
                        state[_MAX] is None or other[_MAX] > state[_MAX]
                    ):
                        state[_MAX] = other[_MAX]

    aggregates = collect_aggregates(op)
    if not op.group_positions:
        # A global aggregate yields exactly one row even over no input.
        if not merged:
            merged[()] = _empty_states(aggregates)
        keys = [()]
    else:
        keys = list(merged)
        if directory_order and op.algorithm == AGG_MAP and op.directory_sizes:
            keys = _map_directory_order(op, keys)

    index_of = {node: k for k, node in enumerate(aggregates)}
    position_of = {pos: i for i, pos in enumerate(op.group_positions)}

    def evaluate(expr, key: tuple, states: list[list]):
        if isinstance(expr, BoundAggregate):
            return _state_result(expr.func, states[index_of[expr]])
        if isinstance(expr, BoundArithmetic):
            left = evaluate(expr.left, key, states)
            right = evaluate(expr.right, key, states)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            return left / right
        if isinstance(expr, BoundColumn):
            return key[position_of[input_layout.position(expr)]]
        if isinstance(expr, BoundParameter):
            return params[expr.index]
        return expr.value  # BoundLiteral

    return [
        tuple(
            evaluate(output.expr, key, merged[key]) for output in op.outputs
        )
        for key in keys
    ]


def _state_result(func: str, state: list):
    if func == "count":
        return state[_COUNT]
    if func == "sum":
        return state[_SUM]
    if func == "avg":
        return state[_SUM] / state[_COUNT] if state[_COUNT] else None
    if func == "min":
        return state[_MIN]
    return state[_MAX]


def _empty_states(aggregates: list[BoundAggregate]) -> list[list]:
    return [
        [0.0 if node.dtype == DOUBLE else 0, 0, None, None]
        for node in aggregates
    ]


def _map_directory_order(op: Aggregate, keys: list[tuple]) -> list[tuple]:
    """Order groups the way serial map aggregation emits them.

    The serial template walks group offsets ``Σ_i M_i[v_i]·Π_{j>i}|M_j|``
    in ascending order, with each value directory ``M_i`` built in
    first-seen order.  Walking merged keys in first-seen order rebuilds
    identical directories (a new attribute value always arrives with a
    new key), and overflowing a directory raises the same
    :class:`MapDirectoryOverflow` the generated code would, so the
    caller's hybrid-aggregation fallback engages exactly as in serial
    execution.
    """
    sizes = [max(size, 1) for size in op.directory_sizes]
    directories: list[dict] = [{} for _ in op.group_positions]
    for key in keys:
        for g, value in enumerate(key):
            directory = directories[g]
            if value not in directory:
                if len(directory) >= sizes[g]:
                    raise MapDirectoryOverflow()
                directory[value] = len(directory)
    multipliers = []
    for g in range(len(sizes)):
        product = 1
        for j in range(g + 1, len(sizes)):
            product *= sizes[j]
        multipliers.append(product)
    return sorted(
        keys,
        key=lambda key: sum(
            directories[g][key[g]] * multipliers[g]
            for g in range(len(key))
        ),
    )
