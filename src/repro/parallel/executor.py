"""Morsel-driven parallel execution of generated query code.

The serial executor calls a generated module's composed ``run_query``
entry point.  This executor instead drives the module's *morsel-aware*
entry points directly:

* the generated staging function for the plan's scan is called once per
  :class:`~repro.parallel.morsel.Morsel` with an explicit page range —
  the same inlined scan–filter–project loop, restricted to a slice of
  the table;
* for aggregation plans, each worker folds its morsels into
  *thread-local partial states* through the generated ``*_partial``
  function; partials are merged here, group by group, and finalized
  against the plan's output expressions;
* projections run per morsel (a pure row map); final ORDER BY / LIMIT
  run once over the merged result through the generated functions.

Workers pull morsels from a shared :class:`MorselDispatcher`, so load
balances dynamically; partial results are reassembled in morsel order,
which keeps parallel output row-for-row identical to a serial run.

Plans outside the supported shape — joins, staged (sorted/partitioned)
inputs, traced runs — fall back to the serial entry point; the
:class:`ExecutionStats` returned with every result says which way the
query went and why.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.emitter import OPT_O2
from repro.core.executor import build_context, run_compiled
from repro.core.templates.aggregate import collect_aggregates
from repro.errors import MapDirectoryOverflow
from repro.memsim.probe import NULL_PROBE, NullProbe
from repro.parallel.morsel import MorselDispatcher
from repro.parallel.stats import ExecutionStats, ParallelConfig
from repro.plan.descriptors import (
    AGG_MAP,
    Aggregate,
    Limit,
    PREP_NONE,
    PhysicalPlan,
    Project,
    ScanStage,
    Sort,
)
from repro.sql.bound import (
    BoundAggregate,
    BoundArithmetic,
    BoundColumn,
    BoundParameter,
)
from repro.storage.types import DOUBLE


@dataclass
class _ParallelShape:
    """A plan sliced into its morsel-parallel and serial parts."""

    scan: ScanStage
    aggregate: Aggregate | None = None
    project: Project | None = None
    #: Final Sort/Limit operators, run serially over the merged rows.
    tail: list = field(default_factory=list)


def analyze_plan(plan: PhysicalPlan) -> tuple[_ParallelShape | None, str]:
    """Decide whether a plan fits the morsel-parallel shape.

    Supported: one unstaged table scan, optionally followed by either a
    projection or an aggregation (ungrouped, or grouped with map
    aggregation — the algorithms whose input needs no global order),
    then any run of Sort/Limit.  Everything else — joins, restaging,
    sort/hybrid aggregation — reports a reason and runs serially.
    """
    operators = list(plan.operators)
    scan = operators[0]
    if not isinstance(scan, ScanStage):
        return None, "plan does not start with a table scan"
    if any(isinstance(op, ScanStage) for op in operators[1:]):
        return None, "multi-table plan (joins run serially)"
    if scan.prep.kind != PREP_NONE:
        return None, f"scan staging prep {scan.prep.kind!r} needs global order"

    shape = _ParallelShape(scan=scan)
    rest = operators[1:]
    if rest and isinstance(rest[0], Aggregate):
        aggregate = rest[0]
        if aggregate.group_positions and aggregate.algorithm != AGG_MAP:
            return (
                None,
                f"{aggregate.algorithm} aggregation needs ordered input",
            )
        shape.aggregate = aggregate
        rest = rest[1:]
    elif rest and isinstance(rest[0], Project):
        shape.project = rest[0]
        rest = rest[1:]
    for op in rest:
        if not isinstance(op, (Sort, Limit)):
            return None, f"operator {type(op).__name__} is not parallelized"
        shape.tail.append(op)
    return shape, ""


class ParallelExecutor:
    """Runs prepared queries over a shared worker pool.

    One instance per engine; thread-safe, so concurrent sessions share
    the pool and their morsels interleave.  ``run()`` never changes
    result semantics: it either executes the morsel-parallel shape with
    order-preserving merges or delegates to the serial entry point.
    """

    def __init__(self, config: ParallelConfig | None = None):
        self.config = config if config is not None else ParallelConfig()
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self.parallel_runs = 0
        self.serial_runs = 0

    # -- lifecycle ---------------------------------------------------------------
    def _submit(self, fn, count: int) -> list:
        """Create the pool if needed and submit ``count`` tasks.

        Pool creation and submission share one critical section with
        :meth:`reconfigure`/:meth:`close`, so a task is never submitted
        to a pool that has been retired.
        """
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.config.workers,
                    thread_name_prefix="repro-morsel",
                )
            return [self._pool.submit(fn) for _ in range(count)]

    def reconfigure(self, config: ParallelConfig) -> None:
        """Swap the configuration and retire the current worker pool.

        Safe against in-flight runs: they captured the old config on
        entry and already hold futures on the old pool, which drains
        them before shutting down; later runs lazily build a fresh pool
        sized to the new configuration.
        """
        with self._lock:
            pool, self._pool = self._pool, None
            self.config = config
        if pool is not None:
            pool.shutdown(wait=True)

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # -- execution ----------------------------------------------------------------
    def run(
        self,
        prepared,
        params: tuple = (),
        probe: NullProbe = NULL_PROBE,
    ) -> tuple[list[tuple], ExecutionStats]:
        """Execute a :class:`~repro.core.engine.PreparedQuery`.

        Returns ``(rows, stats)``; rows are identical to what the serial
        entry point produces for the same inputs.
        """
        started = time.perf_counter()
        # One consistent view of the knobs for the whole run, even if a
        # concurrent reconfigure() swaps self.config mid-execution.
        config = self.config
        shape, reason = self._classify(prepared, probe, config)
        if shape is None:
            rows = run_compiled(
                prepared.compiled, prepared.plan, probe=probe, params=params
            )
            return rows, self.note_serial(
                len(rows), time.perf_counter() - started, reason
            )

        rows, morsels, pages, workers = self._run_parallel(
            prepared, shape, params, config
        )
        with self._lock:
            self.parallel_runs += 1
        stats = ExecutionStats(
            parallel=True,
            workers=workers,
            morsels=morsels,
            pages=pages,
            rows=len(rows),
            elapsed_seconds=time.perf_counter() - started,
        )
        return rows, stats

    def note_serial(
        self, num_rows: int, elapsed_seconds: float, reason: str
    ) -> ExecutionStats:
        """Account for a serial execution and describe it.

        Also used by the engine when a parallel attempt aborts (map
        directory overflow) and the re-planned query runs serially
        outside :meth:`run`.
        """
        with self._lock:
            self.serial_runs += 1
        return ExecutionStats(
            parallel=False,
            rows=num_rows,
            elapsed_seconds=elapsed_seconds,
            reason=reason,
        )

    def _classify(
        self, prepared, probe: NullProbe, config: ParallelConfig
    ) -> tuple[_ParallelShape | None, str]:
        """(shape, "") to go parallel; (None, reason) for the serial path."""
        if not config.enabled:
            return None, "parallel execution disabled"
        if config.workers <= 1:
            return None, "single worker configured"
        if probe.enabled:
            return None, "traced execution (probe is not thread-safe)"
        if prepared.compiled.traced:
            # A traced module dereferences ctx.probe internals; without
            # a probe the serial path raises the proper ExecutionError.
            return None, "traced module (runs on the serial entry point)"
        shape, reason = analyze_plan(prepared.plan)
        if shape is None:
            return None, reason
        if shape.scan.table.num_pages < config.min_pages:
            return None, (
                f"table has {shape.scan.table.num_pages} pages "
                f"(< min_pages {config.min_pages})"
            )
        if shape.aggregate is not None:
            name = prepared.generated.function_names[shape.aggregate.op_id]
            if f"{name}_partial" not in prepared.compiled.namespace:
                return None, "generated module lacks a partial-aggregation entry"
            if not config.allow_float_reorder:
                for node in collect_aggregates(shape.aggregate):
                    if (
                        node.func in ("sum", "avg")
                        and node.argument is not None
                        and node.argument.dtype == DOUBLE
                    ):
                        return None, (
                            "DOUBLE sum/avg is order-sensitive "
                            "(allow_float_reorder is off)"
                        )
        return shape, ""

    def _run_parallel(
        self,
        prepared,
        shape: _ParallelShape,
        params: tuple,
        config: ParallelConfig,
    ) -> tuple[list[tuple], int, int, int]:
        plan = prepared.plan
        namespace = prepared.compiled.namespace
        names = prepared.generated.function_names
        ctx = build_context(
            plan, opt_level=prepared.compiled.opt_level, params=params
        )

        scan_fn = namespace[names[shape.scan.op_id]]
        post_fn = None
        if shape.aggregate is not None:
            post_fn = namespace[f"{names[shape.aggregate.op_id]}_partial"]
        elif shape.project is not None:
            post_fn = namespace[names[shape.project.op_id]]

        table = shape.scan.table
        dispatcher = MorselDispatcher(table.num_pages, config.morsel_pages)
        num_morsels = dispatcher.num_morsels
        num_workers = min(config.workers, num_morsels)

        def drain() -> dict[int, list]:
            """One worker: pull morsels until the dispatcher is dry."""
            partials: dict[int, list] = {}
            while True:
                morsel = dispatcher.next()
                if morsel is None:
                    return partials
                rows = scan_fn(ctx, morsel.page_lo, morsel.page_hi)
                partials[morsel.seq] = (
                    post_fn(ctx, rows) if post_fn is not None else rows
                )

        futures = self._submit(drain, num_workers)
        by_seq: dict[int, list] = {}
        for future in futures:
            by_seq.update(future.result())
        ordered = [by_seq[seq] for seq in sorted(by_seq)]

        if shape.aggregate is not None:
            input_layout = plan.op(shape.aggregate.input_op).output_layout
            rows = merge_aggregate_partials(
                shape.aggregate,
                input_layout,
                ordered,
                params,
                # O0 map aggregation is generic hashing: it emits groups
                # in first-seen order and never overflows a directory.
                directory_order=prepared.compiled.opt_level == OPT_O2,
            )
        else:
            rows = []
            for chunk in ordered:
                rows.extend(chunk)

        for op in shape.tail:
            rows = namespace[names[op.op_id]](ctx, rows)
        return rows, num_morsels, table.num_pages, num_workers


# -- aggregate merging ------------------------------------------------------------------
#
# Generated ``*_partial`` functions return ``{group key: [state, ...]}``
# with one 4-slot state ``[sum, count, minimum, maximum]`` per aggregate
# node, in :func:`collect_aggregates` order.  The representation is
# mergeable without knowing the aggregate function: sums and counts add,
# minima/maxima compare.

_SUM, _COUNT, _MIN, _MAX = range(4)


def merge_aggregate_partials(
    op: Aggregate,
    input_layout,
    partials: list[dict],
    params: tuple = (),
    directory_order: bool = True,
) -> list[tuple]:
    """Fold per-morsel partial states and finalize output rows.

    Partials must arrive in morsel order: group keys are merged
    first-seen, which reproduces the serial scan's discovery order and
    therefore the serial output order (for map aggregation, via the
    reconstructed value directories of Figure 4(b)).
    """
    merged: dict[tuple, list[list]] = {}
    for partial in partials:
        for key, states in partial.items():
            acc = merged.get(key)
            if acc is None:
                # Adopt the worker-local states outright (each partial
                # dict is owned by exactly one morsel).
                merged[key] = states
            else:
                for state, other in zip(acc, states):
                    state[_SUM] += other[_SUM]
                    state[_COUNT] += other[_COUNT]
                    if other[_MIN] is not None and (
                        state[_MIN] is None or other[_MIN] < state[_MIN]
                    ):
                        state[_MIN] = other[_MIN]
                    if other[_MAX] is not None and (
                        state[_MAX] is None or other[_MAX] > state[_MAX]
                    ):
                        state[_MAX] = other[_MAX]

    aggregates = collect_aggregates(op)
    if not op.group_positions:
        # A global aggregate yields exactly one row even over no input.
        if not merged:
            merged[()] = _empty_states(aggregates)
        keys = [()]
    else:
        keys = list(merged)
        if directory_order and op.algorithm == AGG_MAP and op.directory_sizes:
            keys = _map_directory_order(op, keys)

    index_of = {node: k for k, node in enumerate(aggregates)}
    position_of = {pos: i for i, pos in enumerate(op.group_positions)}

    def evaluate(expr, key: tuple, states: list[list]):
        if isinstance(expr, BoundAggregate):
            return _state_result(expr.func, states[index_of[expr]])
        if isinstance(expr, BoundArithmetic):
            left = evaluate(expr.left, key, states)
            right = evaluate(expr.right, key, states)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            return left / right
        if isinstance(expr, BoundColumn):
            return key[position_of[input_layout.position(expr)]]
        if isinstance(expr, BoundParameter):
            return params[expr.index]
        return expr.value  # BoundLiteral

    return [
        tuple(
            evaluate(output.expr, key, merged[key]) for output in op.outputs
        )
        for key in keys
    ]


def _state_result(func: str, state: list):
    if func == "count":
        return state[_COUNT]
    if func == "sum":
        return state[_SUM]
    if func == "avg":
        return state[_SUM] / state[_COUNT] if state[_COUNT] else None
    if func == "min":
        return state[_MIN]
    return state[_MAX]


def _empty_states(aggregates: list[BoundAggregate]) -> list[list]:
    return [
        [0.0 if node.dtype == DOUBLE else 0, 0, None, None]
        for node in aggregates
    ]


def _map_directory_order(op: Aggregate, keys: list[tuple]) -> list[tuple]:
    """Order groups the way serial map aggregation emits them.

    The serial template walks group offsets ``Σ_i M_i[v_i]·Π_{j>i}|M_j|``
    in ascending order, with each value directory ``M_i`` built in
    first-seen order.  Walking merged keys in first-seen order rebuilds
    identical directories (a new attribute value always arrives with a
    new key), and overflowing a directory raises the same
    :class:`MapDirectoryOverflow` the generated code would, so the
    caller's hybrid-aggregation fallback engages exactly as in serial
    execution.
    """
    sizes = [max(size, 1) for size in op.directory_sizes]
    directories: list[dict] = [{} for _ in op.group_positions]
    for key in keys:
        for g, value in enumerate(key):
            directory = directories[g]
            if value not in directory:
                if len(directory) >= sizes[g]:
                    raise MapDirectoryOverflow()
                directory[value] = len(directory)
    multipliers = []
    for g in range(len(sizes)):
        product = 1
        for j in range(g + 1, len(sizes)):
            product *= sizes[j]
        multipliers.append(product)
    return sorted(
        keys,
        key=lambda key: sum(
            directories[g][key[g]] * multipliers[g]
            for g in range(len(key))
        ),
    )
