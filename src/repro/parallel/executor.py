"""Morsel-driven parallel execution of generated query code.

The serial executor calls a generated module's composed ``run_query``
entry point.  This executor instead walks the physical plan's operator
list itself — a *phase scheduler* — and drives each operator's
generated entry points with a worker pool wherever an order-preserving
parallel strategy exists:

* **stage** — every table scan (staged or not) is split into page-range
  :class:`~repro.parallel.morsel.Morsel`\\ s; each worker runs the same
  generated scan–filter–project(–prep) loop over its slices, and the
  per-morsel results are reassembled to exactly the serial staging
  output: plain chunks concatenate in page order, sorted runs go
  through a stability-preserving k-way merge, partitions merge bucket
  by bucket (see :mod:`repro.parallel.merge`);
* **join** — hash/hybrid joins run their generated ``*_pair`` entry
  point per partition pair, merge and nested-loops joins per outer row
  chunk (with the inner side pre-sliced by binary search for merges);
  per-task output buffers concatenate in task order, which is the
  serial emission order;
* **aggregate** — map and global aggregation fold row chunks into
  thread-local partial states through the generated ``*_partial``
  function, merged group by group here; sort/hybrid aggregation
  consumes its (parallel-)staged input through the serial generated
  function, which is exact by construction;
* **final** — ORDER BY runs as per-chunk sorted runs plus a
  mixed-direction k-way merge; projections fuse into the scan they
  consume; LIMIT is a serial slice.

* **restage** — re-staging a large intermediate (sorting or
  partitioning it for its next consumer) runs the generated
  ``*_chunk`` entry point per contiguous row chunk, with the per-chunk
  sorted runs / partition sets reassembled by the same merge
  finishers parallel scan staging uses;
* **join teams** — a multiway merge team runs the generated team
  function per chunk of its first input (the other inputs pre-sliced
  by binary search, exactly like a chunked binary merge join); a
  hybrid team runs it per corresponding coarse partition.

Each phase's units of work are *pure-data task descriptions*
(:class:`~repro.parallel.proc.CallTask`,
:class:`~repro.parallel.proc.ScanTask`) executed by a pluggable
:mod:`~repro.parallel.backend`: the thread backend claims tasks
dynamically from a shared dispatcher and runs generated code against
the live context, while the process backend pickles the same tasks to
``ProcessPoolExecutor`` workers that re-import the generated module
from the compiler's work directory — CPU-bound in-memory phases scale
past the GIL that way.  Every merge is order-preserving, which keeps
parallel output row-for-row identical to a serial run for every plan
shape and either backend.  Operators below the configured size
thresholds simply run their serial generated function in plan order,
so a scheduled run degrades gracefully instead of falling back
wholesale.

Scheduling comes in two flavours.  The default walks the operator
list with a barrier after each operator.  With
``ParallelConfig.pipeline`` on, the run instead builds a *dependency
graph*: every operator (with a scan and its fusable consumer collapsed
into one node) is keyed by the op ids it produces, tracks completion
of its input operators' task sets, and launches the moment the last
one finishes — so independent scans stage concurrently, a CPU-bound
join overlaps a latency-bound scan of a later input, and a restage
starts the instant the join feeding it completes.  Task order inside
every node is unchanged, each node's finisher still reassembles
results order-preservingly, and node results only become visible to
dependents after the completion handshake, so pipelined rows are
byte-identical to barrier rows — only the wall-clock interleaving
changes.  (Per-partition completion collapses to per-input completion
because every page-range staging task contributes rows to every
partition; a pair task's inputs are therefore "staged" exactly when
both sides' staging task sets drain.)  :class:`ExecutionStats` reports
the per-phase timings, worker counts, the backend that ran each phase,
cross-phase overlap seconds and any serial decisions.
"""

from __future__ import annotations

import pickle
import threading
import time
from dataclasses import dataclass, field

from repro.core.emitter import OPT_O2
from repro.core.executor import build_context, run_compiled
from repro.core.templates.aggregate import collect_aggregates
from repro.errors import MapDirectoryOverflow
from repro.memsim.probe import NULL_PROBE, NullProbe
from repro.obs import (
    Observability,
    current_span,
    default_observability,
    maybe_span,
)
from repro.parallel.backend import (
    BackendRetired,
    PoolAbandoned,
    ProcessBackend,
    TaskNotPicklable,
    ThreadBackend,
)
from repro.parallel.cost import (
    CostModel,
    batch_payload_bytes,
    cost_kind,
)
from repro.parallel.merge import (
    chunk_bounds,
    lower_bound,
    merge_fine_partition_runs,
    merge_ordered_runs,
    merge_partition_runs,
    merge_partition_sorted_runs,
    merge_sorted_runs,
)
from repro.parallel.intermediates import staging_signature
from repro.parallel.morsel import coarse_morsel_pages, morsels_for
from repro.parallel.proc import CallTask, ScanTask
from repro.parallel.stats import (
    EXECUTOR_MIXED,
    EXECUTOR_PROCESS,
    EXECUTOR_THREAD,
    PLACEMENT_AUTO,
    ExecutionStats,
    ParallelConfig,
    PhaseStats,
)
from repro.plan.descriptors import (
    AGG_MAP,
    Aggregate,
    JOIN_HASH,
    JOIN_HYBRID,
    JOIN_MERGE,
    JOIN_NESTED,
    Join,
    Limit,
    MultiwayJoin,
    PREP_NONE,
    PREP_PARTITION,
    PREP_PARTITION_SORT,
    PREP_SORT,
    Project,
    Restage,
    ScanStage,
    Sort,
)
from repro.sql.bound import (
    BoundAggregate,
    BoundArithmetic,
    BoundColumn,
    BoundParameter,
)
from repro.storage.types import DOUBLE

#: Canonical phase order for reporting.
PHASE_ORDER = ("stage", "join", "aggregate", "final")


def _picklable(value) -> bool:
    try:
        pickle.dumps(value)
    except Exception:  # noqa: BLE001 - any failure means "keep local"
        return False
    return True

_PHASE_OF = {
    ScanStage: "stage",
    Restage: "stage",
    Join: "join",
    MultiwayJoin: "join",
    Aggregate: "aggregate",
    Project: "final",
    Sort: "final",
    Limit: "final",
}


@dataclass
class _Report:
    """What a scheduled run did: per-phase stats plus serial notes.

    Thread-safe: under pipelined scheduling several operator nodes
    report concurrently, so every mutation goes through one lock.
    """

    skips: list[str] = field(default_factory=list)
    phases: dict[str, PhaseStats] = field(default_factory=dict)
    morsels: int = 0
    pages: int = 0
    #: Whether the adaptive placement chooser routed this run's batches
    #: (set once at run entry; drives mixed-backend reporting).
    adaptive: bool = False
    #: ``(batch kind, backend)`` → batches the chooser routed there.
    placements: dict[tuple[str, str], int] = field(default_factory=dict)
    #: Partition-staged scans that published buckets incrementally.
    handoffs: int = 0
    #: Process-backend serialization accounting for this run.
    shipped_tasks: int = 0
    shipped_bytes: int = 0
    #: ``(phase, started, ended)`` wall-clock spans of every phase
    #: contribution, for cross-phase overlap accounting.
    spans: list[tuple[str, float, float]] = field(default_factory=list)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def skip(self, reason: str, mark_span: bool = True) -> None:
        # When tracing, mark the scheduling node so EXPLAIN ANALYZE can
        # flag the serial fallback per operator, not just in run notes.
        # Run-level skips (backend fallback) happen under the engine's
        # execute span, which the category guard excludes.  A cache
        # reuse passes ``mark_span=False``: it is a win, not a
        # fallback, and carries its own span attribute.
        if mark_span:
            span = current_span()
            if span is not None and span.category == "node":
                span.set(serial=True, serial_reason=reason[:160])
        with self._lock:
            if reason not in self.skips:
                self.skips.append(reason)

    def note(
        self,
        phase: str,
        started: float,
        ended: float,
        workers: int,
        tasks: int,
        backend: str = EXECUTOR_THREAD,
    ) -> None:
        seconds = ended - started
        with self._lock:
            self.spans.append((phase, started, ended))
            entry = self.phases.get(phase)
            if entry is None:
                self.phases[phase] = PhaseStats(
                    name=phase,
                    seconds=seconds,
                    workers=workers,
                    tasks=tasks,
                    backend=backend,
                )
            else:
                entry.seconds += seconds
                entry.workers = max(entry.workers, workers)
                entry.tasks += tasks
                if backend != entry.backend:
                    if self.adaptive:
                        # The chooser split this phase across backends.
                        entry.backend = EXECUTOR_MIXED
                    elif backend == EXECUTOR_PROCESS:
                        entry.backend = backend

    def add_scan(self, morsels: int, pages: int) -> None:
        with self._lock:
            self.morsels += morsels
            self.pages += pages

    def add_placement(self, kind: str, backend: str) -> None:
        with self._lock:
            key = (kind, backend)
            self.placements[key] = self.placements.get(key, 0) + 1

    def add_handoff(self) -> None:
        with self._lock:
            self.handoffs += 1

    def add_shipped(self, tasks: int, nbytes: int) -> None:
        with self._lock:
            self.shipped_tasks += tasks
            self.shipped_bytes += nbytes

    @property
    def went_parallel(self) -> bool:
        return any(phase.workers > 1 for phase in self.phases.values())

    def backend_used(self) -> str:
        """The backend label this run reports.

        ``"process"`` when any phase shipped tasks out of process;
        under adaptive placement, ``"mixed"`` when the chooser split
        the run's batches across both backends (serial phases, whose
        backend field is just the thread default, do not count).
        """
        if self.adaptive:
            backends = {
                phase.backend
                for phase in self.phases.values()
                if phase.workers > 1
            }
            if EXECUTOR_MIXED in backends or (
                EXECUTOR_THREAD in backends and EXECUTOR_PROCESS in backends
            ):
                return EXECUTOR_MIXED
            if EXECUTOR_PROCESS in backends:
                return EXECUTOR_PROCESS
            return EXECUTOR_THREAD
        if any(
            phase.backend == EXECUTOR_PROCESS
            for phase in self.phases.values()
        ):
            return EXECUTOR_PROCESS
        return EXECUTOR_THREAD

    def max_workers(self) -> int:
        return max(
            (phase.workers for phase in self.phases.values()), default=1
        )

    def ordered_phases(self) -> list[PhaseStats]:
        self._apply_overlaps()
        return [
            self.phases[name] for name in PHASE_ORDER if name in self.phases
        ]

    def _apply_overlaps(self) -> None:
        """Fill each phase's ``overlap_seconds`` from the span log.

        A phase's overlap is the portion of its spans covered by the
        union of every *other* span — another phase's, or another
        operator node of the same phase (two table scans staging
        concurrently count: they are exactly the barrier the pipelined
        scheduler removes).  Under barrier scheduling nodes run one
        after another, spans never intersect, and every overlap is 0.
        """
        totals: dict[str, float] = {}
        for index, (name, lo, hi) in enumerate(self.spans):
            others = _merge_spans(
                [
                    (other_lo, other_hi)
                    for other_index, (_, other_lo, other_hi) in enumerate(
                        self.spans
                    )
                    if other_index != index
                ]
            )
            totals[name] = totals.get(name, 0.0) + _span_intersection(
                lo, hi, others
            )
        for name, stats in self.phases.items():
            stats.overlap_seconds = totals.get(name, 0.0)


def _merge_spans(spans: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union a span list into sorted, disjoint intervals."""
    merged: list[list[float]] = []
    for lo, hi in sorted(spans):
        if merged and lo <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], hi)
        else:
            merged.append([lo, hi])
    return [(lo, hi) for lo, hi in merged]


def _span_intersection(
    lo: float, hi: float, others: list[tuple[float, float]]
) -> float:
    """Length of ``[lo, hi)`` covered by the disjoint ``others``."""
    total = 0.0
    for other_lo, other_hi in others:
        if other_lo >= hi:
            break
        total += max(0.0, min(hi, other_hi) - max(lo, other_lo))
    return total


class ParallelExecutor:
    """Runs prepared queries over a shared worker pool.

    One instance per engine; thread-safe, so concurrent sessions share
    the pool and their work units interleave.  ``run()`` never changes
    result semantics: every parallel strategy reassembles its partial
    results order-preservingly, and anything else runs the serial
    generated functions in plan order.
    """

    #: Pool headroom multiplier for pipelined scheduling: up to this
    #: many operator nodes' batches can hold their full worker fan-out
    #: simultaneously before queuing (deeper plans still complete —
    #: extra batches just wait for free slots).
    PIPELINE_BATCHES = 4

    def __init__(
        self,
        config: ParallelConfig | None = None,
        obs: Observability | None = None,
    ):
        self.config = config if config is not None else ParallelConfig()
        self.obs = obs if obs is not None else default_observability()
        self._lock = threading.Lock()
        self._thread = self._new_thread_backend(self.config)
        #: Process pool, created lazily on the first run that actually
        #: ships tasks (most queries never pay for worker processes).
        self._process: ProcessBackend | None = None
        #: Compute-per-byte model behind ``placement="auto"``.  Owned
        #: by the executor (not a run) so rates learned from measured
        #: batch latencies persist across queries and reconfigures.
        self.cost = CostModel()
        #: Zero-arg callable yielding cross-query operator profile
        #: totals (:meth:`~repro.obs.profile.ProfileAggregator.kind_totals`),
        #: wired by the embedding database so the cost model starts
        #: from observed per-operator rates instead of static seeds.
        self.profile_source = None
        self._profile_seeded = False
        #: Optional :class:`~repro.parallel.intermediates.IntermediateCache`
        #: wired by the embedding database; when set, staged scan
        #: outputs are reused across executions keyed on the table's
        #: version epoch (see :meth:`_ScheduledRun._scan`).
        self.intermediates = None
        self.parallel_runs = 0
        self.serial_runs = 0

    def _seed_cost_model(self) -> None:
        """Pre-seed cost rates from cross-query profiles, once.

        Called lazily on the first adaptive run; profile totals are
        advisory, so any failure reading them is swallowed and the
        static seeds stand.
        """
        source = self.profile_source
        if source is None or self._profile_seeded:
            return
        self._profile_seeded = True
        try:
            totals = source()
        except Exception:  # noqa: BLE001 - profiles are advisory
            return
        self.cost.refine_from_profile(totals)

    def _new_thread_backend(self, config: ParallelConfig) -> ThreadBackend:
        return ThreadBackend(
            config.workers,
            task_timeout=config.task_timeout,
            concurrent_batches=(
                self.PIPELINE_BATCHES if config.pipeline else 1
            ),
            registry=self.obs.registry,
        )

    # -- lifecycle ---------------------------------------------------------------
    def thread_backend(self) -> ThreadBackend:
        with self._lock:
            return self._thread

    def process_backend(self) -> ProcessBackend:
        with self._lock:
            if self._process is None:
                self._process = ProcessBackend(
                    self.config.workers,
                    task_timeout=self.config.task_timeout,
                    registry=self.obs.registry,
                )
            return self._process

    def reconfigure(self, config: ParallelConfig) -> None:
        """Swap the configuration and retire the current worker pools.

        Safe against in-flight runs: they captured the old config and
        backends on entry and already hold futures on the old pools,
        which drain them before shutting down; later runs lazily build
        fresh pools sized to the new configuration.
        """
        with self._lock:
            thread, self._thread = self._thread, self._new_thread_backend(
                config
            )
            process, self._process = self._process, None
            self.config = config
        thread.close()
        if process is not None:
            process.close()

    def close(self) -> None:
        with self._lock:
            thread, self._thread = self._thread, self._new_thread_backend(
                self.config
            )
            process, self._process = self._process, None
        thread.close()
        if process is not None:
            process.close()

    # -- execution ----------------------------------------------------------------
    def run(
        self,
        prepared,
        params: tuple = (),
        probe: NullProbe = NULL_PROBE,
    ) -> tuple[list[tuple], ExecutionStats]:
        """Execute a :class:`~repro.core.engine.PreparedQuery`.

        Returns ``(rows, stats)``; rows are identical to what the serial
        entry point produces for the same inputs.
        """
        started = time.perf_counter()
        # One consistent view of the knobs for the whole run, even if a
        # concurrent reconfigure() swaps self.config mid-execution.
        config = self.config
        reason = self._ineligible(prepared, probe, config)
        if reason:
            rows = run_compiled(
                prepared.compiled, prepared.plan, probe=probe, params=params
            )
            return rows, self.note_serial(
                len(rows), time.perf_counter() - started, reason
            )

        report = _Report()
        placement = config.effective_placement()
        process: ProcessBackend | None = None
        chooser: CostModel | None = None
        if placement in (EXECUTOR_PROCESS, PLACEMENT_AUTO):
            adaptive = placement == PLACEMENT_AUTO
            prefix = "adaptive placement: " if adaptive else ""
            if prepared.compiled.opt_level != OPT_O2:
                # O0 generated code calls closures living in this
                # process's context; those cannot cross a process
                # boundary, so the whole run rides the thread backend.
                report.skip(
                    f"{prefix}O0 closure plan: process backend fell "
                    "back to the thread backend"
                )
            elif not _picklable(tuple(params)):
                # Every shipped task carries the parameter vector; a
                # value that refuses to pickle dooms all of them, so
                # decide once up front instead of per batch.
                report.skip(
                    f"{prefix}unpicklable parameter vector: process "
                    "backend fell back to the thread backend"
                )
            else:
                process = self.process_backend()
                if adaptive:
                    chooser = self.cost
                    report.adaptive = True
                    self._seed_cost_model()
        scheduled = _ScheduledRun(
            self, prepared, tuple(params), config, report, process,
            chooser,
        )
        rows = scheduled.execute()
        elapsed = time.perf_counter() - started
        if not report.went_parallel:
            with self._lock:
                self.serial_runs += 1
            return rows, ExecutionStats(
                parallel=False,
                rows=len(rows),
                elapsed_seconds=elapsed,
                reason="; ".join(report.skips) or "no parallelizable phase",
                phases=report.ordered_phases(),
                notes=list(report.skips),
            )
        with self._lock:
            self.parallel_runs += 1
        notes = list(report.skips)
        if report.shipped_tasks:
            notes.append(
                f"process backend shipped {report.shipped_tasks} task(s), "
                f"~{report.shipped_bytes / 1024:.0f} KiB of payloads "
                f"serialized"
            )
        if report.adaptive and report.placements:
            routed = ", ".join(
                f"{kind}→{backend}×{count}"
                for (kind, backend), count in sorted(
                    report.placements.items()
                )
            )
            notes.append(f"adaptive placement routed {routed}")
        if report.handoffs:
            notes.append(
                f"incremental partition hand-off on {report.handoffs} "
                "staging node(s)"
            )
        return rows, ExecutionStats(
            parallel=True,
            backend=report.backend_used(),
            placement=placement,
            pipelined=scheduled.pipelined,
            workers=report.max_workers(),
            morsels=report.morsels,
            pages=report.pages,
            rows=len(rows),
            elapsed_seconds=elapsed,
            phases=report.ordered_phases(),
            notes=notes,
        )

    def note_serial(
        self, num_rows: int, elapsed_seconds: float, reason: str
    ) -> ExecutionStats:
        """Account for a serial execution and describe it.

        Also used by the engine when a parallel attempt aborts (map
        directory overflow) and the re-planned query runs serially
        outside :meth:`run`.
        """
        with self._lock:
            self.serial_runs += 1
        return ExecutionStats(
            parallel=False,
            rows=num_rows,
            elapsed_seconds=elapsed_seconds,
            reason=reason,
        )

    @staticmethod
    def _ineligible(
        prepared, probe: NullProbe, config: ParallelConfig
    ) -> str:
        """A reason to skip scheduling entirely, or "" to schedule."""
        if not config.enabled:
            return "parallel execution disabled"
        if config.workers <= 1:
            return "single worker configured"
        if probe.enabled:
            return "traced execution (probe is not thread-safe)"
        if prepared.compiled.traced:
            # A traced module dereferences ctx.probe internals; without
            # a probe the serial path raises the proper ExecutionError.
            return "traced module (runs on the serial entry point)"
        return ""


@dataclass(frozen=True)
class _Node:
    """One unit of the dependency graph: an operator (or fused pair).

    ``op_ids`` are the operator ids this node materializes results
    for; ``deps`` the operator ids that must be materialized first.
    ``run`` executes the node to completion — dispatching its task
    batch and finishing the merge — and is the only code that writes
    this node's entries of the shared results map.
    """

    op_ids: tuple[int, ...]
    deps: tuple[int, ...]
    run: object  # zero-arg callable


class _ScheduledRun:
    """One execution of a plan through the phase scheduler."""

    def __init__(
        self,
        executor: ParallelExecutor,
        prepared,
        params: tuple,
        config: ParallelConfig,
        report: _Report,
        process: ProcessBackend | None = None,
        chooser: CostModel | None = None,
    ):
        self.executor = executor
        self.prepared = prepared
        self.plan = prepared.plan
        self.namespace = prepared.compiled.namespace
        self.names = prepared.generated.function_names
        self.params = params
        self.config = config
        self.report = report
        #: Non-None when this run ships eligible batches out of process.
        self.process = process
        #: Non-None when ``placement="auto"`` routes each batch through
        #: the cost model (requires a live process backend to route to).
        self.chooser = chooser
        self.module_spec = prepared.compiled.module_spec()
        #: Span the scheduler's node spans parent under.  Captured on
        #: the constructing thread (where the engine's execute span is
        #: active): node runners later execute on pipeline driver
        #: threads, whose contexts start empty.
        self.parent_span = current_span()
        self.ctx = build_context(
            self.plan, opt_level=prepared.compiled.opt_level, params=params
        )
        #: op_id → materialized result (None for a scan fused away).
        self.results: dict[int, object] = {}
        #: ScanStage op ids whose partition staging may publish buckets
        #: incrementally (see :class:`PartitionHandoff`).  Only
        #: thread-placement pipelined runs qualify: hand-off pair tasks
        #: are blocking thunks, which cannot ship out of process.
        self._handoff_ops: frozenset[int] = (
            self._handoff_eligible()
            if config.pipeline and process is None
            else frozenset()
        )
        #: Whether the dependency-driven driver actually ran (set by
        #: :meth:`execute`; False for single-node plans even when the
        #: config asks for pipelining).
        self.pipelined = False

    def execute(self) -> list[tuple]:
        nodes = self._build_nodes()
        # A single-node plan has nothing to pipeline; note which
        # scheduler actually ran so the stats report execution, not
        # configuration.
        self.pipelined = self.config.pipeline and len(nodes) > 1
        if self.pipelined:
            self._run_pipelined(nodes)
        else:
            for node in nodes:
                node.run()
        return self._input(self.plan.root.op_id)

    def _handoff_eligible(self) -> frozenset[int]:
        """ScanStage op ids allowed to publish buckets incrementally.

        Eligible: a partition-prep scan consumed by exactly one
        :class:`Join` that walks its partitions pairwise — fine
        partitions feeding a hash join, coarse partitions feeding a
        hybrid join.  A self-join consuming one staging on both sides
        appears twice in the consumers map and is naturally excluded
        (its pair enumeration needs the whole directory at once), as
        is anything feeding a join team, restage or aggregate.
        """
        consumers: dict[int, list] = {}
        for op in self.plan.operators:
            for input_id in op.inputs:
                consumers.setdefault(input_id, []).append(op)
        eligible = set()
        for op in self.plan.operators:
            if not isinstance(op, ScanStage):
                continue
            if op.prep.kind != PREP_PARTITION:
                continue
            users = consumers.get(op.op_id, [])
            if len(users) != 1 or not isinstance(users[0], Join):
                continue
            join = users[0]
            if op.prep.fine and join.algorithm == JOIN_HASH:
                eligible.add(op.op_id)
            elif not op.prep.fine and join.algorithm == JOIN_HYBRID:
                eligible.add(op.op_id)
        return frozenset(eligible)

    def _input(self, op_id: int):
        """One operator input, with incremental hand-offs materialized.

        Most consumers need the complete staging output; a hand-off
        reaching one of them blocks until the merge thread finishes,
        then caches the ordinary merged result in its place.
        """
        value = self.results[op_id]
        if isinstance(value, PartitionHandoff):
            value = value.result()
            self.results[op_id] = value
        return value

    # -- the task graph ----------------------------------------------------------------
    def _build_nodes(self) -> list["_Node"]:
        """The dependency graph: one node per operator, scans fused.

        A scan and its fusable consumer (projection / partial-able
        aggregation) collapse into one node producing both op ids, so
        the fused post-function still rides inside the scan tasks.
        Node order is plan order, which the barrier driver executes
        directly; the pipelined driver only honors ``deps``.
        """
        operators = list(self.plan.operators)
        nodes: list[_Node] = []
        index = 0
        while index < len(operators):
            op = operators[index]
            if isinstance(op, ScanStage):
                following = (
                    operators[index + 1]
                    if index + 1 < len(operators)
                    else None
                )
                fused = self._fusable_consumer(op, following)
                if fused is not None:
                    op_ids = (op.op_id, fused.op_id)
                    nodes.append(
                        _Node(
                            op_ids=op_ids,
                            deps=(),
                            run=self._with_node_span(
                                op_ids, self._fused_scan_runner(op, fused)
                            ),
                        )
                    )
                    index += 2
                    continue
                nodes.append(
                    _Node(
                        op_ids=(op.op_id,),
                        deps=(),
                        run=self._with_node_span(
                            (op.op_id,), self._scan_runner(op)
                        ),
                    )
                )
            else:
                nodes.append(
                    _Node(
                        op_ids=(op.op_id,),
                        deps=tuple(op.inputs),
                        run=self._with_node_span(
                            (op.op_id,), self._op_runner(op)
                        ),
                    )
                )
            index += 1
        return nodes

    def _node_label(self, op_ids: tuple[int, ...]) -> str:
        return "+".join(
            f"{type(self.plan.op(op_id)).__name__} o{op_id}"
            for op_id in op_ids
        )

    def _with_node_span(self, op_ids: tuple[int, ...], run):
        """Wrap a node runner in a scheduler-node span (when tracing).

        The span parents under the engine's execute span captured at
        construction and is *activated* for the duration of the run, so
        batch dispatch, merge finishers and buffer-pool attribution all
        land under the right node — on the barrier driver (the calling
        thread) and on pipelined driver threads alike.
        """
        if self.parent_span is None:
            return run
        label = self._node_label(op_ids)

        def traced() -> None:
            span = self.parent_span.child(
                label, "node", op_ids=",".join(str(i) for i in op_ids)
            )
            try:
                with span.activate():
                    run()
            finally:
                span.finish()
                rows = _result_rows(self.results.get(op_ids[-1]))
                if rows is not None:
                    span.set(rows=rows)

        return traced

    def _scan_runner(self, op: ScanStage):
        return lambda: self._scan(op, None)

    def _fused_scan_runner(self, op: ScanStage, fused):
        def run() -> None:
            if not self._scan(op, fused):
                # The scan stayed serial (below thresholds), so the
                # consumer did not ride inside the scan tasks; give it
                # its own chance at parallel execution.
                self._dispatch(fused)

        return run

    def _op_runner(self, op):
        return lambda: self._dispatch(op)

    def _dispatch(self, op) -> None:
        if isinstance(op, Join):
            self._join(op)
        elif isinstance(op, MultiwayJoin):
            self._multiway(op)
        elif isinstance(op, Restage):
            self._restage(op)
        elif isinstance(op, Aggregate):
            self._aggregate(op)
        elif isinstance(op, Sort):
            self._sort(op)
        else:
            self._serial(op)

    def _run_pipelined(self, nodes: list["_Node"]) -> None:
        """Dependency-driven execution: launch nodes as inputs finish.

        Each ready node runs on its own driver thread; its batch fans
        out on the shared worker pools, so independent nodes' tasks
        interleave.  A node's results become visible to dependents only
        through the completion handshake under ``cond`` (the lock
        gives the happens-before edge), and every started driver is
        joined before control returns — on error too, so no task ever
        runs against state the caller is unwinding.
        """
        cond = threading.Condition()
        done: set[int] = set()
        pending = list(nodes)
        errors: list[BaseException] = []
        finished = [0]
        threads: list[threading.Thread] = []

        def drive(node: "_Node") -> None:
            try:
                node.run()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                with cond:
                    errors.append(exc)
                    finished[0] += 1
                    cond.notify_all()
            else:
                with cond:
                    done.update(node.op_ids)
                    finished[0] += 1
                    cond.notify_all()

        with cond:
            while not errors and finished[0] < len(nodes):
                ready = [
                    node for node in pending if done.issuperset(node.deps)
                ]
                for node in ready:
                    pending.remove(node)
                    thread = threading.Thread(
                        target=drive,
                        args=(node,),
                        name="repro-pipeline",
                        daemon=True,
                    )
                    threads.append(thread)
                    thread.start()
                if errors or finished[0] >= len(nodes):
                    break
                cond.wait()
        for thread in threads:
            thread.join()
        if errors:
            # Prefer the root cause: a pool abandonment is collateral
            # damage from a timeout in a *different* node, and which
            # driver reports first is a race.
            raise next(
                (
                    error
                    for error in errors
                    if not isinstance(error, PoolAbandoned)
                ),
                errors[0],
            )

    # -- shared helpers ---------------------------------------------------------------
    def _read_pages(self, binding: str, page_lo: int, page_hi: int) -> tuple:
        """Materialize a scan task's raw page bytes for shipping.

        Reads go through the live buffer pool in the parent, so worker
        processes never touch storage; ``bytes()`` snapshots each page
        buffer before it crosses the pickle boundary.
        """
        table = self.ctx.tables[binding]
        return tuple(
            bytes(table.read_page(page_no).data)
            for page_no in range(page_lo, page_hi)
        )

    def _thunk(self, task):
        """Materialize one task description for in-process execution."""
        fn = self.namespace[task.func]
        ctx = self.ctx
        if isinstance(task, ScanTask):
            post = (
                self.namespace[task.post_func]
                if task.post_func is not None
                else None
            )

            def run_scan():
                rows = fn(ctx, task.page_lo, task.page_hi)
                return post(ctx, rows) if post is not None else rows

            return run_scan
        return lambda: fn(ctx, *task.args)

    def _run_batch(
        self, tasks: list, label: str | None = None, affinity=None
    ) -> tuple[list, int, str]:
        """Run one phase's task batch on the active backend.

        Returns ``(results, workers, backend_name)`` with results in
        task order.  Under ``placement="auto"`` the cost model routes
        the batch to whichever backend it estimates cheaper; under any
        placement the measured batch latency feeds back into the model,
        so forced thread/process runs calibrate later adaptive ones.
        A batch whose payloads refuse to pickle — or whose process pool
        was retired by a concurrent reconfigure — re-runs on the thread
        backend: the scheduler's structure (and therefore result order)
        is identical either way, only the substrate changes.  ``label``
        names the scheduling node in watchdog diagnostics and task
        spans; ``affinity`` (one partition id per task) makes thread
        dispatch sticky per worker with stealing fallback.
        """
        node_span = current_span()
        payload = batch_payload_bytes(tasks)
        kind = cost_kind(label)
        cost = self.executor.cost
        use_process = self.process is not None
        if use_process and self.chooser is not None:
            decision = self.chooser.choose(
                kind, payload, len(tasks), warm=self.process.warm
            )
            use_process = decision.backend == EXECUTOR_PROCESS
            if node_span is not None:
                node_span.set(
                    placement=decision.backend,
                    placement_reason=decision.reason,
                )
        if use_process:
            try:
                task_meta: list | None = (
                    [] if node_span is not None else None
                )
                started = time.perf_counter()
                results, workers, shipped = self.process.run_batch(
                    self.module_spec,
                    self.params,
                    tasks,
                    self._read_pages,
                    label=label,
                    task_meta=task_meta,
                )
                cost.observe(
                    kind, EXECUTOR_PROCESS, payload, len(tasks),
                    time.perf_counter() - started,
                )
                self.report.add_shipped(len(tasks), shipped)
                if self.chooser is not None:
                    self.report.add_placement(kind, EXECUTOR_PROCESS)
                if node_span is not None:
                    for meta in task_meta:
                        node_span.child(
                            f"task {meta['index']}",
                            "task",
                            start=meta["started"],
                            end=meta["ended"],
                            thread_id=meta["thread_id"],
                            pid=meta["pid"],
                            index=meta["index"],
                            queue_seconds=max(
                                0.0, meta["started"] - meta["submitted"]
                            ),
                        )
                    node_span.set(
                        tasks=len(tasks),
                        workers=workers,
                        backend=EXECUTOR_PROCESS,
                        shipped_bytes=shipped,
                    )
                return results, workers, EXECUTOR_PROCESS
            except BackendRetired as exc:
                # Subclass of TaskNotPicklable — catch it first so the
                # note names the real cause.
                self.report.skip(
                    "process pool retired mid-query "
                    f"({str(exc)[:80]}): batch re-ran on the thread "
                    "backend"
                )
            except TaskNotPicklable as exc:
                self.report.skip(
                    "unpicklable task payload "
                    f"({str(exc)[:80]}): batch re-ran on the thread "
                    "backend"
                )
        if node_span is not None:
            thunks = self._traced_thunks(tasks, node_span)
        else:
            thunks = [self._thunk(task) for task in tasks]
        started = time.perf_counter()
        results, workers = self.executor.thread_backend().run_thunks(
            thunks, self.config.workers, label=label, affinity=affinity
        )
        cost.observe(
            kind, EXECUTOR_THREAD, payload, len(tasks),
            time.perf_counter() - started,
        )
        if self.chooser is not None:
            self.report.add_placement(kind, EXECUTOR_THREAD)
        if node_span is not None:
            if self.chooser is not None and use_process:
                # The chooser picked the process backend but the batch
                # fell back; report where it actually ran.
                node_span.set(
                    placement=EXECUTOR_THREAD,
                    placement_reason=(
                        "process batch fell back to the thread backend"
                    ),
                )
            node_span.set(
                tasks=len(tasks), workers=workers, backend=EXECUTOR_THREAD
            )
        return results, workers, EXECUTOR_THREAD

    def _traced_thunks(self, tasks: list, node_span) -> list:
        """Wrap each task's thunk in a task span under the node span."""
        return self._wrap_traced(
            [self._thunk(task) for task in tasks], node_span
        )

    def _wrap_traced(self, inners: list, node_span) -> list:
        """Wrap raw thunks in task spans under the node span.

        The wrapper runs on a claim-worker thread (empty context), so
        it activates its span explicitly; the span start vs batch
        submission time is the task's queue wait.
        """
        submitted = time.perf_counter()
        thunks = []
        for index, inner in enumerate(inners):

            def run(inner=inner, index=index):
                started = time.perf_counter()
                span = node_span.child(
                    f"task {index}",
                    "task",
                    start=started,
                    index=index,
                    queue_seconds=started - submitted,
                )
                with span.activate():
                    try:
                        return inner()
                    finally:
                        span.finish()

            thunks.append(run)
        return thunks

    def _run_thunks(
        self, thunks: list, label: str | None = None
    ) -> tuple[list, int]:
        """Run raw thunks on the thread backend (with task spans).

        The substrate for batches that exist only as live closures —
        incremental hand-off pairs, whose thunks block on bucket
        publication — and therefore can never ship out of process.
        """
        node_span = current_span()
        if node_span is not None:
            thunks = self._wrap_traced(thunks, node_span)
        results, workers = self.executor.thread_backend().run_thunks(
            thunks, self.config.workers, label=label
        )
        if node_span is not None:
            node_span.set(
                tasks=len(thunks), workers=workers, backend=EXECUTOR_THREAD
            )
        return results, workers

    def _serial(self, op) -> None:
        """Run one operator's serial generated function in plan order."""
        started = time.perf_counter()
        fn = self.namespace[self.names[op.op_id]]
        args = [self._input(input_id) for input_id in op.inputs]
        self.results[op.op_id] = fn(self.ctx, *args)
        self.report.note(
            _PHASE_OF[type(op)], started, time.perf_counter(), 1, 1
        )

    def _chunk_size(self, num_rows: int) -> int:
        """Rows per chunk: ~4 chunks per worker, floored so tiny chunks
        never dominate dispatch overhead."""
        per_worker = -(-num_rows // (self.config.workers * 4))
        return max(per_worker, self.config.min_rows // 8, 1)

    def _float_gated(self, op: Aggregate) -> bool:
        """True when merging this aggregate's partials would reassociate
        DOUBLE addition and the config demands bit-identical results."""
        if self.config.allow_float_reorder:
            return False
        for node in collect_aggregates(op):
            if (
                node.func in ("sum", "avg")
                and node.argument is not None
                and node.argument.dtype == DOUBLE
            ):
                return True
        return False

    # -- stage phase -------------------------------------------------------------------
    def _scan(self, op: ScanStage, fused) -> bool:
        """Morsel-parallel scan + staging.

        ``fused`` is the already-resolved fusable consumer (or None);
        returns whether the consumer's result was produced here — False
        means the scan stayed serial and the caller must still run the
        consumer itself.
        """
        table = op.table
        config = self.config
        # Version-keyed intermediate reuse: an unfused, non-hand-off
        # staged scan whose table has not mutated since a previous
        # execution can skip the whole scan + staging + merge pass.
        cache = self.executor.intermediates
        signature = None
        if (
            cache is not None
            and fused is None
            and op.op_id not in self._handoff_ops
        ):
            signature = staging_signature(op, self.params)
            staged = cache.get(table.name.lower(), table.version, signature)
            if staged is not None:
                self.results[op.op_id] = staged
                self.report.skip(
                    f"table {op.binding!r}: staging reused a cached "
                    f"intermediate (version {table.version})",
                    mark_span=False,
                )
                span = current_span()
                if span is not None and span.category == "node":
                    span.set(staging_cached=True)
                self.report.note(
                    "stage", time.perf_counter(), time.perf_counter(), 1, 1
                )
                return False
        if table.num_pages < config.min_pages:
            self.report.skip(
                f"table {op.binding!r}: {table.num_pages} pages "
                f"(< min_pages {config.min_pages})"
            )
            self._serial(op)
            return False
        if op.prep.kind == PREP_PARTITION_SORT and op.prep.fine:
            # The template emits a value-directory dict for this combo;
            # merge_partition_sorted_runs expects coarse bucket lists.
            # The optimizer never builds it today — stay serial rather
            # than corrupt results if a future planner change does.
            self.report.skip(
                f"table {op.binding!r}: fine partition-sort staging "
                f"has no parallel merge"
            )
            self._serial(op)
            return False
        pages_per = config.morsel_pages
        if self.process is not None:
            # Process morsels are coarser: each one's page bytes are
            # pickled across the boundary, so fewer, larger units keep
            # the serialization toll amortized.
            pages_per = coarse_morsel_pages(
                table.num_pages, config.workers, config.morsel_pages
            )
        morsels = morsels_for(table.num_pages, pages_per)
        if len(morsels) < 2:
            self.report.skip(f"table {op.binding!r}: single morsel")
            self._serial(op)
            return False

        scan_name = self.names[op.op_id]
        post_name = None
        if isinstance(fused, Aggregate):
            post_name = self.names[fused.op_id] + "_partial"
        elif isinstance(fused, Project):
            post_name = self.names[fused.op_id]

        started = time.perf_counter()
        tasks = [
            ScanTask(
                func=scan_name,
                binding=op.binding,
                page_lo=morsel.page_lo,
                page_hi=morsel.page_hi,
                post_func=post_name,
            )
            for morsel in morsels
        ]
        # Page-range affinity: partition the table's page space evenly
        # across workers and tag each morsel with its stripe, so the
        # same worker walks the same contiguous pages on every run
        # (sequential reads, warm buffer-pool reuse) with stealing as
        # the skew fallback.  Process dispatch ignores the tags.
        affinity = [
            min(
                morsel.page_lo * config.workers // max(table.num_pages, 1),
                config.workers - 1,
            )
            for morsel in morsels
        ]
        ordered, workers, backend = self._run_batch(
            tasks, label=f"stage:o{op.op_id}", affinity=affinity
        )
        self.report.note(
            "stage", started, time.perf_counter(), workers,
            len(morsels), backend,
        )
        self.report.add_scan(len(morsels), table.num_pages)

        if isinstance(fused, Aggregate):
            started = time.perf_counter()
            input_layout = self.plan.op(fused.input_op).output_layout
            with maybe_span("merge", "merge", kind="aggregate-partials"):
                rows = merge_aggregate_partials(
                    fused,
                    input_layout,
                    ordered,
                    self.params,
                    directory_order=(
                        self.prepared.compiled.opt_level == OPT_O2
                    ),
                )
            self.results[op.op_id] = None
            self.results[fused.op_id] = rows
            self.report.note(
                "aggregate", started, time.perf_counter(), 1, 1
            )
            return True
        if isinstance(fused, Project):
            rows = []
            for chunk in ordered:
                rows.extend(chunk)
            self.results[op.op_id] = None
            self.results[fused.op_id] = rows
            return True

        if op.op_id in self._handoff_ops:
            # Incremental hand-off: publish partition buckets as their
            # merges finish, so the consuming join launches pair tasks
            # on ready buckets while siblings still merge.
            handoff = PartitionHandoff(ordered, fine=op.prep.fine)
            handoff.start()
            self.results[op.op_id] = handoff
            self.report.add_handoff()
            return False

        with maybe_span("merge", "merge", kind=op.prep.kind):
            staged = _merge_prep_partials(op.prep, ordered)
        self.results[op.op_id] = staged
        if signature is not None:
            cache.put(table.name.lower(), table.version, signature, staged)
        return False

    def _fusable_consumer(self, op: ScanStage, following):
        """The next operator, when its work can ride inside scan tasks.

        Only unstaged scans fuse (staged consumers need the complete
        sorted/partitioned input), and only with the one operator that
        consumes them: a projection (a pure per-row map) or a map/global
        aggregation whose generated ``*_partial`` exists and whose
        merge is exact under the float-reorder policy.
        """
        if following is None or op.prep.kind != PREP_NONE:
            return None
        if isinstance(following, Project) and following.input_op == op.op_id:
            return following
        if (
            isinstance(following, Aggregate)
            and following.input_op == op.op_id
        ):
            if following.group_positions and following.algorithm != AGG_MAP:
                return None
            name = self.names[following.op_id] + "_partial"
            if name not in self.namespace:
                return None
            if self._float_gated(following):
                return None
            return following
        return None

    # -- join phase --------------------------------------------------------------------
    def _join(self, op: Join) -> None:
        pair_name = self.names[op.op_id] + "_pair"
        if pair_name not in self.namespace:
            self.report.skip("join module lacks a pair entry point")
            self._serial(op)
            return
        left = self.results[op.left_op]
        right = self.results[op.right_op]
        if isinstance(left, PartitionHandoff) or isinstance(
            right, PartitionHandoff
        ):
            self._join_incremental(op, pair_name)
            return
        config = self.config
        if op.algorithm in (JOIN_MERGE, JOIN_NESTED):
            total = len(left) + len(right)
        elif op.algorithm == JOIN_HASH:
            total = sum(len(rows) for rows in left.values()) + sum(
                len(rows) for rows in right.values()
            )
        else:
            total = sum(len(rows) for rows in left) + sum(
                len(rows) for rows in right
            )
        if total < config.min_rows:
            self.report.skip(
                f"join input {total} rows (< min_rows {config.min_rows})"
            )
            self._serial(op)
            return

        tasks: list = []
        if op.algorithm in (JOIN_MERGE, JOIN_NESTED):
            bounds = chunk_bounds(len(left), self._chunk_size(len(left)))
            if len(bounds) < 2:
                self.report.skip("join outer input yields a single chunk")
                self._serial(op)
                return
            for lo, hi in bounds:
                chunk = left[lo:hi]
                if op.algorithm == JOIN_MERGE:
                    # Each outer chunk only needs inner rows from its
                    # first key onward; the merge body skips the rest.
                    start = lower_bound(
                        right, op.right_key, chunk[0][op.left_key]
                    )
                    inner = right[start:]
                else:
                    inner = right
                tasks.append(CallTask(func=pair_name, args=(chunk, inner)))
        elif op.algorithm == JOIN_HASH:
            # Serial emission order: left directory insertion order,
            # skipping keys with no right-side partition.
            keys = [key for key in left if key in right]
            if len(keys) < 2:
                self.report.skip("fewer than two matching fine partitions")
                self._serial(op)
                return
            tasks = [
                CallTask(func=pair_name, args=(left[key], right[key]))
                for key in keys
            ]
        else:  # hybrid: corresponding coarse partitions
            if len(left) < 2:
                self.report.skip("single coarse partition")
                self._serial(op)
                return
            tasks = [
                CallTask(func=pair_name, args=(left[index], right[index]))
                for index in range(len(left))
            ]

        started = time.perf_counter()
        chunks, workers, backend = self._run_batch(
            tasks, label=f"join:o{op.op_id}"
        )
        out: list = []
        for chunk in chunks:
            out.extend(chunk)
        self.results[op.op_id] = out
        self.report.note(
            "join", started, time.perf_counter(), workers, len(tasks),
            backend,
        )

    def _join_incremental(self, op: Join, pair_name: str) -> None:
        """Hash/hybrid join consuming incrementally published buckets.

        Pair tasks are blocking thunks: each waits for its own bucket
        pair's publication, so the first pairs run while sibling
        buckets still merge on the hand-off thread.  Task order —
        hence output concatenation order — matches the barrier join
        exactly; only launch timing changes.
        """
        left = self.results[op.left_op]
        right = self.results[op.right_op]
        config = self.config
        total = _partition_rows(left) + _partition_rows(right)
        if total < config.min_rows:
            self.report.skip(
                f"join input {total} rows (< min_rows {config.min_rows})"
            )
            self._serial(op)
            return
        if op.algorithm == JOIN_HASH:
            # Serial emission order: left directory insertion order
            # (the hand-off enumerates keys first-seen across runs,
            # exactly like the barrier merge), skipping keys with no
            # right-side partition.
            left_keys = (
                left.keys
                if isinstance(left, PartitionHandoff)
                else list(left)
            )
            right_keys = (
                right.key_set
                if isinstance(right, PartitionHandoff)
                else right
            )
            keys = [key for key in left_keys if key in right_keys]
            if len(keys) < 2:
                self.report.skip("fewer than two matching fine partitions")
                self._serial(op)
                return
        else:  # hybrid: corresponding coarse partitions
            count = (
                len(left.keys)
                if isinstance(left, PartitionHandoff)
                else len(left)
            )
            if count < 2:
                self.report.skip("single coarse partition")
                self._serial(op)
                return
            keys = list(range(count))

        fn = self.namespace[pair_name]
        ctx = self.ctx

        def bucket(side, key):
            return (
                side.bucket(key)
                if isinstance(side, PartitionHandoff)
                else side[key]
            )

        thunks = [
            (
                lambda key=key: fn(
                    ctx, bucket(left, key), bucket(right, key)
                )
            )
            for key in keys
        ]
        started = time.perf_counter()
        chunks, workers = self._run_thunks(
            thunks, label=f"join:o{op.op_id}"
        )
        out: list = []
        for chunk in chunks:
            out.extend(chunk)
        self.results[op.op_id] = out
        self.report.note(
            "join", started, time.perf_counter(), workers, len(thunks),
            EXECUTOR_THREAD,
        )

    def _multiway(self, op: MultiwayJoin) -> None:
        """Parallelize a join team as chained per-chunk/-partition tasks.

        A merge team runs the generated n-ary merge per chunk of its
        first input, the other inputs pre-sliced from the chunk's first
        key by binary search — the same decomposition as a chunked
        binary merge join, applied to all n inputs at once.  A hybrid
        team runs the team function per corresponding coarse partition
        (each task gets single-partition slices of every input).  Task
        outputs concatenate in task order, which is the serial emission
        order, so team results stay byte-identical.
        """
        name = self.names[op.op_id]
        inputs = [self._input(input_id) for input_id in op.input_ops]
        config = self.config
        if op.algorithm == JOIN_MERGE:
            total = sum(len(rows) for rows in inputs)
        else:
            total = sum(
                len(bucket) for parts in inputs for bucket in parts
            )
        if total < config.min_rows:
            self.report.skip(
                f"join team input {total} rows "
                f"(< min_rows {config.min_rows})"
            )
            self._serial(op)
            return

        tasks: list = []
        if op.algorithm == JOIN_MERGE:
            first = inputs[0]
            bounds = chunk_bounds(len(first), self._chunk_size(len(first)))
            if len(bounds) < 2:
                self.report.skip(
                    "join team first input yields a single chunk"
                )
                self._serial(op)
                return
            key0 = op.key_positions[0]
            for lo, hi in bounds:
                chunk = first[lo:hi]
                args: list = [chunk]
                for k in range(1, len(inputs)):
                    # Every row of input k whose key could match this
                    # chunk lies at or after the chunk's first key.
                    start = lower_bound(
                        inputs[k], op.key_positions[k], chunk[0][key0]
                    )
                    args.append(inputs[k][start:])
                tasks.append(CallTask(func=name, args=tuple(args)))
        else:  # hybrid team: one task per corresponding coarse partition
            if len(inputs[0]) < 2:
                self.report.skip("join team has a single coarse partition")
                self._serial(op)
                return
            tasks = [
                CallTask(
                    func=name,
                    args=tuple([parts[index]] for parts in inputs),
                )
                for index in range(len(inputs[0]))
            ]

        started = time.perf_counter()
        chunks, workers, backend = self._run_batch(
            tasks, label=f"join-team:o{op.op_id}"
        )
        out: list = []
        for chunk in chunks:
            out.extend(chunk)
        self.results[op.op_id] = out
        self.report.note(
            "join", started, time.perf_counter(), workers, len(tasks),
            backend,
        )

    # -- aggregate phase ---------------------------------------------------------------
    def _aggregate(self, op: Aggregate) -> None:
        config = self.config
        partial_name = self.names[op.op_id] + "_partial"
        if partial_name not in self.namespace or (
            op.group_positions and op.algorithm != AGG_MAP
        ):
            # Sort/hybrid aggregation folds its (parallel-)staged input
            # through the serial generated function — exact, since the
            # staged input is byte-identical to a serial run's.
            self._serial(op)
            return
        if self._float_gated(op):
            self.report.skip(
                "DOUBLE sum/avg is order-sensitive "
                "(allow_float_reorder is off)"
            )
            self._serial(op)
            return
        rows = self._input(op.input_op)
        if len(rows) < config.min_rows:
            self.report.skip(
                f"aggregate input {len(rows)} rows "
                f"(< min_rows {config.min_rows})"
            )
            self._serial(op)
            return
        bounds = chunk_bounds(len(rows), self._chunk_size(len(rows)))
        if len(bounds) < 2:
            self._serial(op)
            return
        tasks = [
            CallTask(func=partial_name, args=(rows[lo:hi],))
            for lo, hi in bounds
        ]
        started = time.perf_counter()
        partials, workers, backend = self._run_batch(
            tasks, label=f"aggregate:o{op.op_id}"
        )
        input_layout = self.plan.op(op.input_op).output_layout
        with maybe_span("merge", "merge", kind="aggregate-partials"):
            self.results[op.op_id] = merge_aggregate_partials(
                op,
                input_layout,
                partials,
                self.params,
                directory_order=self.prepared.compiled.opt_level == OPT_O2,
            )
        self.report.note(
            "aggregate", started, time.perf_counter(), workers,
            len(tasks), backend,
        )

    # -- restage -----------------------------------------------------------------------
    def _restage(self, op: Restage) -> None:
        """Chunk-parallel re-staging of a large intermediate.

        Each task runs the generated ``*_chunk`` entry point over one
        contiguous row chunk; chunk outputs reassemble through the same
        order-preserving finishers as parallel scan staging (stable
        k-way merges for sorts, run-order bucket merges for
        partitions), so the restaged structure is byte-identical to the
        serial function's.
        """
        chunk_name = self.names[op.op_id] + "_chunk"
        if chunk_name not in self.namespace:
            self.report.skip("restage module lacks a chunk entry point")
            self._serial(op)
            return
        if op.prep.kind == PREP_PARTITION_SORT and op.prep.fine:
            # Same guard as scan staging: no parallel merge exists for
            # the fine partition-sort combination (the optimizer never
            # builds it today).
            self.report.skip(
                "restage: fine partition-sort staging has no parallel "
                "merge"
            )
            self._serial(op)
            return
        rows = self._input(op.input_op)
        config = self.config
        if len(rows) < config.min_rows:
            self.report.skip(
                f"restage input {len(rows)} rows "
                f"(< min_rows {config.min_rows})"
            )
            self._serial(op)
            return
        bounds = chunk_bounds(len(rows), self._chunk_size(len(rows)))
        if len(bounds) < 2:
            self.report.skip("restage input yields a single chunk")
            self._serial(op)
            return
        tasks = [
            CallTask(func=chunk_name, args=(rows[lo:hi],))
            for lo, hi in bounds
        ]
        started = time.perf_counter()
        partials, workers, backend = self._run_batch(
            tasks, label=f"restage:o{op.op_id}"
        )
        with maybe_span("merge", "merge", kind=op.prep.kind):
            self.results[op.op_id] = _merge_prep_partials(op.prep, partials)
        self.report.note(
            "stage", started, time.perf_counter(), workers, len(tasks),
            backend,
        )

    # -- final phase -------------------------------------------------------------------
    def _sort(self, op: Sort) -> None:
        rows = self._input(op.input_op)
        config = self.config
        if len(rows) < config.min_rows:
            self.report.skip(
                f"sort input {len(rows)} rows (< min_rows {config.min_rows})"
            )
            self._serial(op)
            return
        bounds = chunk_bounds(len(rows), self._chunk_size(len(rows)))
        if len(bounds) < 2:
            self._serial(op)
            return
        # Each task sorts a contiguous slice copy with the generated
        # ORDER BY function; the k-way merge's run-order tie-break then
        # reproduces the serial stable sort exactly.
        tasks = [
            CallTask(func=self.names[op.op_id], args=(rows[lo:hi],))
            for lo, hi in bounds
        ]
        started = time.perf_counter()
        runs, workers, backend = self._run_batch(
            tasks, label=f"sort:o{op.op_id}"
        )
        with maybe_span("merge", "merge", kind="ordered-runs"):
            self.results[op.op_id] = merge_ordered_runs(runs, op.keys)
        self.report.note(
            "final", started, time.perf_counter(), workers, len(tasks),
            backend,
        )


class PartitionHandoff:
    """Incrementally merged partition-staging output.

    Wraps the per-task partial partition sets of one partition-prep
    scan and merges them bucket by bucket on a background thread,
    publishing each bucket the moment its own merge completes — so a
    consuming hash/hybrid join launches ``*_pair`` tasks on finished
    buckets while sibling buckets still merge.  Key enumeration and
    the per-bucket merges replicate
    :func:`~repro.parallel.merge.merge_fine_partition_runs` /
    :func:`~repro.parallel.merge.merge_partition_runs` exactly
    (first-seen key order, adopt-the-first-run's-bucket-then-extend in
    run order), so every bucket — and the fully merged
    :meth:`result` — is byte-identical to the barrier merge.
    """

    def __init__(self, partials: list, fine: bool, pace=None):
        self.partials = partials
        self.fine = fine
        #: Test hook: called with each key right after its bucket
        #: publishes (lets tests pace the merge thread deterministically).
        self._pace = pace
        if fine:
            # Key enumeration is cheap (dict key walks, no row moves),
            # so consumers know the full first-seen key order up front.
            keys: list = []
            seen: set = set()
            for partial in partials:
                for key in partial:
                    if key not in seen:
                        seen.add(key)
                        keys.append(key)
            self.keys = keys
            self.key_set = seen
        else:
            count = len(partials[0]) if partials else 0
            self.keys = list(range(count))
            self.key_set = set(self.keys)
        # Snapshotted before any merging: the per-bucket merges extend
        # the first run's lists *in place*, so counting the partials
        # later would race the merge thread and double-count rows.
        if fine:
            self._total_rows = sum(
                len(rows)
                for partial in partials
                for rows in partial.values()
            )
        else:
            self._total_rows = sum(
                len(bucket) for partial in partials for bucket in partial
            )
        self._merged: dict = {}
        self._cond = threading.Condition()
        self._error: BaseException | None = None
        self._thread: threading.Thread | None = None
        self._done = False
        self._result = None

    def start(self) -> None:
        """Begin merging buckets on a background thread."""
        self._thread = threading.Thread(
            target=self._merge_all, name="repro-handoff", daemon=True
        )
        self._thread.start()

    def _merge_all(self) -> None:
        try:
            for key in self.keys:
                if self.fine:
                    bucket = None
                    for partial in self.partials:
                        rows = partial.get(key)
                        if rows is None:
                            continue
                        if bucket is None:
                            # Adopt the first run's bucket outright —
                            # exactly what merge_fine_partition_runs
                            # does (each partial is owned by one task).
                            bucket = rows
                        else:
                            bucket.extend(rows)
                else:
                    bucket = self.partials[0][key]
                    for partial in self.partials[1:]:
                        bucket.extend(partial[key])
                with self._cond:
                    self._merged[key] = bucket
                    self._cond.notify_all()
                if self._pace is not None:
                    self._pace(key)
        except BaseException as exc:  # noqa: BLE001 - rethrown to consumers
            with self._cond:
                self._error = exc
                self._cond.notify_all()
        else:
            with self._cond:
                self._done = True
                self._cond.notify_all()

    def bucket(self, key):
        """Block until ``key``'s merged bucket is published, return it."""
        with self._cond:
            while key not in self._merged and self._error is None:
                self._cond.wait()
            if key in self._merged:
                return self._merged[key]
            raise self._error

    def merged_count(self) -> int:
        """Buckets published so far (observability and tests)."""
        with self._cond:
            return len(self._merged)

    def result(self):
        """The complete merged staging output (blocks until done).

        For consumers that cannot use incremental buckets (a serial
        fallback, a restage, the plan root): identical to what the
        barrier merge would have produced.
        """
        if self._result is not None:
            return self._result
        if self._thread is not None:
            self._thread.join()
        elif not self._done:
            # Never started: merge inline on the consumer's thread.
            self._merge_all()
        with self._cond:
            if self._error is not None:
                raise self._error
        if self.fine:
            self._result = {key: self._merged[key] for key in self.keys}
        else:
            self._result = [self._merged[key] for key in self.keys]
        return self._result

    def total_rows(self) -> int:
        """Rows across all partial runs (snapshotted pre-merge)."""
        return self._total_rows


def _partition_rows(value) -> int:
    """Total rows of a (possibly still merging) partition staging."""
    if isinstance(value, PartitionHandoff):
        return value.total_rows()
    if isinstance(value, dict):
        return sum(len(rows) for rows in value.values())
    return sum(len(rows) for rows in value)


def _result_rows(result) -> int | None:
    """Row count of a node result when it is a plain row list.

    Staged results may instead be partition dicts or coarse partition
    lists; those report no row count rather than a misleading one.
    """
    if isinstance(result, list) and (
        not result or isinstance(result[0], tuple)
    ):
        return len(result)
    return None


def _merge_prep_partials(prep, partials: list):
    """Reassemble per-chunk/per-morsel staging outputs for one prep.

    Shared by parallel scan staging and parallel restaging: the chunk
    structure differs (page-range morsels vs row chunks) but the
    partial outputs and their order-preserving finishers are the same.
    Callers must keep the fine partition-sort combination serial —
    there is no parallel merge for its value-directory shape.
    """
    if prep.kind == PREP_SORT:
        return merge_sorted_runs(partials, prep.keys)
    if prep.kind == PREP_PARTITION:
        return (
            merge_fine_partition_runs(partials)
            if prep.fine
            else merge_partition_runs(partials)
        )
    if prep.kind == PREP_PARTITION_SORT:
        return merge_partition_sorted_runs(partials, prep.keys)
    # PREP_NONE: plain chunks concatenate in task order.
    rows: list = []
    for chunk in partials:
        rows.extend(chunk)
    return rows


# -- aggregate merging ------------------------------------------------------------------
#
# Generated ``*_partial`` functions return ``{group key: [state, ...]}``
# with one 4-slot state ``[sum, count, minimum, maximum]`` per aggregate
# node, in :func:`collect_aggregates` order.  The representation is
# mergeable without knowing the aggregate function: sums and counts add,
# minima/maxima compare.

_SUM, _COUNT, _MIN, _MAX = range(4)


def merge_aggregate_partials(
    op: Aggregate,
    input_layout,
    partials: list[dict],
    params: tuple = (),
    directory_order: bool = True,
) -> list[tuple]:
    """Fold per-chunk partial states and finalize output rows.

    Partials must arrive in chunk (page/row) order: group keys are
    merged first-seen, which reproduces the serial scan's discovery
    order and therefore the serial output order (for map aggregation,
    via the reconstructed value directories of Figure 4(b)).
    """
    merged: dict[tuple, list[list]] = {}
    for partial in partials:
        for key, states in partial.items():
            acc = merged.get(key)
            if acc is None:
                # Adopt the worker-local states outright (each partial
                # dict is owned by exactly one chunk).
                merged[key] = states
            else:
                for state, other in zip(acc, states):
                    state[_SUM] += other[_SUM]
                    state[_COUNT] += other[_COUNT]
                    if other[_MIN] is not None and (
                        state[_MIN] is None or other[_MIN] < state[_MIN]
                    ):
                        state[_MIN] = other[_MIN]
                    if other[_MAX] is not None and (
                        state[_MAX] is None or other[_MAX] > state[_MAX]
                    ):
                        state[_MAX] = other[_MAX]

    aggregates = collect_aggregates(op)
    if not op.group_positions:
        # A global aggregate yields exactly one row even over no input.
        if not merged:
            merged[()] = _empty_states(aggregates)
        keys = [()]
    else:
        keys = list(merged)
        if directory_order and op.algorithm == AGG_MAP and op.directory_sizes:
            keys = _map_directory_order(op, keys)

    index_of = {node: k for k, node in enumerate(aggregates)}
    position_of = {pos: i for i, pos in enumerate(op.group_positions)}

    def evaluate(expr, key: tuple, states: list[list]):
        if isinstance(expr, BoundAggregate):
            return _state_result(expr.func, states[index_of[expr]])
        if isinstance(expr, BoundArithmetic):
            left = evaluate(expr.left, key, states)
            right = evaluate(expr.right, key, states)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            return left / right
        if isinstance(expr, BoundColumn):
            return key[position_of[input_layout.position(expr)]]
        if isinstance(expr, BoundParameter):
            return params[expr.index]
        return expr.value  # BoundLiteral

    return [
        tuple(
            evaluate(output.expr, key, merged[key]) for output in op.outputs
        )
        for key in keys
    ]


def _state_result(func: str, state: list):
    if func == "count":
        return state[_COUNT]
    if func == "sum":
        return state[_SUM]
    if func == "avg":
        return state[_SUM] / state[_COUNT] if state[_COUNT] else None
    if func == "min":
        return state[_MIN]
    return state[_MAX]


def _empty_states(aggregates: list[BoundAggregate]) -> list[list]:
    return [
        [0.0 if node.dtype == DOUBLE else 0, 0, None, None]
        for node in aggregates
    ]


def _map_directory_order(op: Aggregate, keys: list[tuple]) -> list[tuple]:
    """Order groups the way serial map aggregation emits them.

    The serial template walks group offsets ``Σ_i M_i[v_i]·Π_{j>i}|M_j|``
    in ascending order, with each value directory ``M_i`` built in
    first-seen order.  Walking merged keys in first-seen order rebuilds
    identical directories (a new attribute value always arrives with a
    new key), and overflowing a directory raises the same
    :class:`MapDirectoryOverflow` the generated code would, so the
    caller's hybrid-aggregation fallback engages exactly as in serial
    execution.
    """
    sizes = [max(size, 1) for size in op.directory_sizes]
    directories: list[dict] = [{} for _ in op.group_positions]
    for key in keys:
        for g, value in enumerate(key):
            directory = directories[g]
            if value not in directory:
                if len(directory) >= sizes[g]:
                    raise MapDirectoryOverflow()
                directory[value] = len(directory)
    multipliers = []
    for g in range(len(sizes)):
        product = 1
        for j in range(g + 1, len(sizes)):
            product *= sizes[j]
        multipliers.append(product)
    return sorted(
        keys,
        key=lambda key: sum(
            directories[g][key[g]] * multipliers[g]
            for g in range(len(key))
        ),
    )
