"""Morsel-driven parallel execution of generated query code.

The serial executor calls a generated module's composed ``run_query``
entry point.  This executor instead walks the physical plan's operator
list itself — a *phase scheduler* — and drives each operator's
generated entry points with a worker pool wherever an order-preserving
parallel strategy exists:

* **stage** — every table scan (staged or not) is split into page-range
  :class:`~repro.parallel.morsel.Morsel`\\ s; each worker runs the same
  generated scan–filter–project(–prep) loop over its slices, and the
  per-morsel results are reassembled to exactly the serial staging
  output: plain chunks concatenate in page order, sorted runs go
  through a stability-preserving k-way merge, partitions merge bucket
  by bucket (see :mod:`repro.parallel.merge`);
* **join** — hash/hybrid joins run their generated ``*_pair`` entry
  point per partition pair, merge and nested-loops joins per outer row
  chunk (with the inner side pre-sliced by binary search for merges);
  per-task output buffers concatenate in task order, which is the
  serial emission order;
* **aggregate** — map and global aggregation fold row chunks into
  thread-local partial states through the generated ``*_partial``
  function, merged group by group here; sort/hybrid aggregation
  consumes its (parallel-)staged input through the serial generated
  function, which is exact by construction;
* **final** — ORDER BY runs as per-chunk sorted runs plus a
  mixed-direction k-way merge; projections fuse into the scan they
  consume; LIMIT is a serial slice.

Each phase's units of work are *pure-data task descriptions*
(:class:`~repro.parallel.proc.CallTask`,
:class:`~repro.parallel.proc.ScanTask`) executed by a pluggable
:mod:`~repro.parallel.backend`: the thread backend claims tasks
dynamically from a shared dispatcher and runs generated code against
the live context, while the process backend pickles the same tasks to
``ProcessPoolExecutor`` workers that re-import the generated module
from the compiler's work directory — CPU-bound in-memory phases scale
past the GIL that way.  Every merge is order-preserving, which keeps
parallel output row-for-row identical to a serial run for every plan
shape and either backend.  Operators below the configured size
thresholds — and the few without a parallel strategy (restaging, join
teams) — simply run their serial generated function in plan order, so
a scheduled run degrades gracefully instead of falling back wholesale.
:class:`ExecutionStats` reports the per-phase timings, worker counts,
the backend that ran each phase and any serial decisions.
"""

from __future__ import annotations

import pickle
import threading
import time
from dataclasses import dataclass, field

from repro.core.emitter import OPT_O2
from repro.core.executor import build_context, run_compiled
from repro.core.templates.aggregate import collect_aggregates
from repro.errors import MapDirectoryOverflow
from repro.memsim.probe import NULL_PROBE, NullProbe
from repro.parallel.backend import (
    ProcessBackend,
    TaskNotPicklable,
    ThreadBackend,
)
from repro.parallel.merge import (
    chunk_bounds,
    lower_bound,
    merge_fine_partition_runs,
    merge_ordered_runs,
    merge_partition_runs,
    merge_partition_sorted_runs,
    merge_sorted_runs,
)
from repro.parallel.morsel import coarse_morsel_pages, morsels_for
from repro.parallel.proc import CallTask, ScanTask
from repro.parallel.stats import (
    EXECUTOR_PROCESS,
    EXECUTOR_THREAD,
    ExecutionStats,
    ParallelConfig,
    PhaseStats,
)
from repro.plan.descriptors import (
    AGG_MAP,
    Aggregate,
    JOIN_HASH,
    JOIN_MERGE,
    JOIN_NESTED,
    Join,
    Limit,
    MultiwayJoin,
    PREP_NONE,
    PREP_PARTITION,
    PREP_PARTITION_SORT,
    PREP_SORT,
    Project,
    Restage,
    ScanStage,
    Sort,
)
from repro.sql.bound import (
    BoundAggregate,
    BoundArithmetic,
    BoundColumn,
    BoundParameter,
)
from repro.storage.types import DOUBLE

#: Canonical phase order for reporting.
PHASE_ORDER = ("stage", "join", "aggregate", "final")


def _picklable(value) -> bool:
    try:
        pickle.dumps(value)
    except Exception:  # noqa: BLE001 - any failure means "keep local"
        return False
    return True

_PHASE_OF = {
    ScanStage: "stage",
    Restage: "stage",
    Join: "join",
    MultiwayJoin: "join",
    Aggregate: "aggregate",
    Project: "final",
    Sort: "final",
    Limit: "final",
}


@dataclass
class _Report:
    """What a scheduled run did: per-phase stats plus serial notes."""

    skips: list[str] = field(default_factory=list)
    phases: dict[str, PhaseStats] = field(default_factory=dict)
    morsels: int = 0
    pages: int = 0
    #: Process-backend serialization accounting for this run.
    shipped_tasks: int = 0
    shipped_bytes: int = 0

    def skip(self, reason: str) -> None:
        if reason not in self.skips:
            self.skips.append(reason)

    def note(
        self,
        phase: str,
        seconds: float,
        workers: int,
        tasks: int,
        backend: str = EXECUTOR_THREAD,
    ) -> None:
        entry = self.phases.get(phase)
        if entry is None:
            self.phases[phase] = PhaseStats(
                name=phase,
                seconds=seconds,
                workers=workers,
                tasks=tasks,
                backend=backend,
            )
        else:
            entry.seconds += seconds
            entry.workers = max(entry.workers, workers)
            entry.tasks += tasks
            if backend == EXECUTOR_PROCESS:
                entry.backend = backend

    @property
    def went_parallel(self) -> bool:
        return any(phase.workers > 1 for phase in self.phases.values())

    def backend_used(self) -> str:
        """``"process"`` when any phase shipped tasks out of process."""
        if any(
            phase.backend == EXECUTOR_PROCESS
            for phase in self.phases.values()
        ):
            return EXECUTOR_PROCESS
        return EXECUTOR_THREAD

    def max_workers(self) -> int:
        return max(
            (phase.workers for phase in self.phases.values()), default=1
        )

    def ordered_phases(self) -> list[PhaseStats]:
        return [
            self.phases[name] for name in PHASE_ORDER if name in self.phases
        ]


class ParallelExecutor:
    """Runs prepared queries over a shared worker pool.

    One instance per engine; thread-safe, so concurrent sessions share
    the pool and their work units interleave.  ``run()`` never changes
    result semantics: every parallel strategy reassembles its partial
    results order-preservingly, and anything else runs the serial
    generated functions in plan order.
    """

    def __init__(self, config: ParallelConfig | None = None):
        self.config = config if config is not None else ParallelConfig()
        self._lock = threading.Lock()
        self._thread = ThreadBackend(self.config.workers)
        #: Process pool, created lazily on the first run that actually
        #: ships tasks (most queries never pay for worker processes).
        self._process: ProcessBackend | None = None
        self.parallel_runs = 0
        self.serial_runs = 0

    # -- lifecycle ---------------------------------------------------------------
    def thread_backend(self) -> ThreadBackend:
        with self._lock:
            return self._thread

    def process_backend(self) -> ProcessBackend:
        with self._lock:
            if self._process is None:
                self._process = ProcessBackend(
                    self.config.workers,
                    task_timeout=self.config.task_timeout,
                )
            return self._process

    def reconfigure(self, config: ParallelConfig) -> None:
        """Swap the configuration and retire the current worker pools.

        Safe against in-flight runs: they captured the old config and
        backends on entry and already hold futures on the old pools,
        which drain them before shutting down; later runs lazily build
        fresh pools sized to the new configuration.
        """
        with self._lock:
            thread, self._thread = self._thread, ThreadBackend(
                config.workers
            )
            process, self._process = self._process, None
            self.config = config
        thread.close()
        if process is not None:
            process.close()

    def close(self) -> None:
        with self._lock:
            thread, self._thread = self._thread, ThreadBackend(
                self.config.workers
            )
            process, self._process = self._process, None
        thread.close()
        if process is not None:
            process.close()

    # -- execution ----------------------------------------------------------------
    def run(
        self,
        prepared,
        params: tuple = (),
        probe: NullProbe = NULL_PROBE,
    ) -> tuple[list[tuple], ExecutionStats]:
        """Execute a :class:`~repro.core.engine.PreparedQuery`.

        Returns ``(rows, stats)``; rows are identical to what the serial
        entry point produces for the same inputs.
        """
        started = time.perf_counter()
        # One consistent view of the knobs for the whole run, even if a
        # concurrent reconfigure() swaps self.config mid-execution.
        config = self.config
        reason = self._ineligible(prepared, probe, config)
        if reason:
            rows = run_compiled(
                prepared.compiled, prepared.plan, probe=probe, params=params
            )
            return rows, self.note_serial(
                len(rows), time.perf_counter() - started, reason
            )

        report = _Report()
        process: ProcessBackend | None = None
        if config.executor == EXECUTOR_PROCESS:
            if prepared.compiled.opt_level != OPT_O2:
                # O0 generated code calls closures living in this
                # process's context; those cannot cross a process
                # boundary, so the whole run rides the thread backend.
                report.skip(
                    "O0 closure plan: process backend fell back to "
                    "the thread backend"
                )
            elif not _picklable(tuple(params)):
                # Every shipped task carries the parameter vector; a
                # value that refuses to pickle dooms all of them, so
                # decide once up front instead of per batch.
                report.skip(
                    "unpicklable parameter vector: process backend "
                    "fell back to the thread backend"
                )
            else:
                process = self.process_backend()
        rows = _ScheduledRun(
            self, prepared, tuple(params), config, report, process
        ).execute()
        elapsed = time.perf_counter() - started
        if not report.went_parallel:
            with self._lock:
                self.serial_runs += 1
            return rows, ExecutionStats(
                parallel=False,
                rows=len(rows),
                elapsed_seconds=elapsed,
                reason="; ".join(report.skips) or "no parallelizable phase",
                phases=report.ordered_phases(),
                notes=list(report.skips),
            )
        with self._lock:
            self.parallel_runs += 1
        notes = list(report.skips)
        if report.shipped_tasks:
            notes.append(
                f"process backend shipped {report.shipped_tasks} task(s), "
                f"~{report.shipped_bytes / 1024:.0f} KiB of payloads "
                f"serialized"
            )
        return rows, ExecutionStats(
            parallel=True,
            backend=report.backend_used(),
            workers=report.max_workers(),
            morsels=report.morsels,
            pages=report.pages,
            rows=len(rows),
            elapsed_seconds=elapsed,
            phases=report.ordered_phases(),
            notes=notes,
        )

    def note_serial(
        self, num_rows: int, elapsed_seconds: float, reason: str
    ) -> ExecutionStats:
        """Account for a serial execution and describe it.

        Also used by the engine when a parallel attempt aborts (map
        directory overflow) and the re-planned query runs serially
        outside :meth:`run`.
        """
        with self._lock:
            self.serial_runs += 1
        return ExecutionStats(
            parallel=False,
            rows=num_rows,
            elapsed_seconds=elapsed_seconds,
            reason=reason,
        )

    @staticmethod
    def _ineligible(
        prepared, probe: NullProbe, config: ParallelConfig
    ) -> str:
        """A reason to skip scheduling entirely, or "" to schedule."""
        if not config.enabled:
            return "parallel execution disabled"
        if config.workers <= 1:
            return "single worker configured"
        if probe.enabled:
            return "traced execution (probe is not thread-safe)"
        if prepared.compiled.traced:
            # A traced module dereferences ctx.probe internals; without
            # a probe the serial path raises the proper ExecutionError.
            return "traced module (runs on the serial entry point)"
        return ""


class _ScheduledRun:
    """One execution of a plan through the phase scheduler."""

    def __init__(
        self,
        executor: ParallelExecutor,
        prepared,
        params: tuple,
        config: ParallelConfig,
        report: _Report,
        process: ProcessBackend | None = None,
    ):
        self.executor = executor
        self.prepared = prepared
        self.plan = prepared.plan
        self.namespace = prepared.compiled.namespace
        self.names = prepared.generated.function_names
        self.params = params
        self.config = config
        self.report = report
        #: Non-None when this run ships eligible batches out of process.
        self.process = process
        self.module_spec = prepared.compiled.module_spec()
        self.ctx = build_context(
            self.plan, opt_level=prepared.compiled.opt_level, params=params
        )
        #: op_id → materialized result (None for a scan fused away).
        self.results: dict[int, object] = {}

    def execute(self) -> list[tuple]:
        operators = list(self.plan.operators)
        index = 0
        while index < len(operators):
            op = operators[index]
            consumed = 1
            if isinstance(op, ScanStage):
                following = (
                    operators[index + 1]
                    if index + 1 < len(operators)
                    else None
                )
                consumed = self._scan(op, following)
            elif isinstance(op, Join):
                self._join(op)
            elif isinstance(op, Aggregate):
                self._aggregate(op)
            elif isinstance(op, Sort):
                self._sort(op)
            else:
                self._serial(op)
            index += consumed
        return self.results[self.plan.root.op_id]

    # -- shared helpers ---------------------------------------------------------------
    def _read_pages(self, binding: str, page_lo: int, page_hi: int) -> tuple:
        """Materialize a scan task's raw page bytes for shipping.

        Reads go through the live buffer pool in the parent, so worker
        processes never touch storage; ``bytes()`` snapshots each page
        buffer before it crosses the pickle boundary.
        """
        table = self.ctx.tables[binding]
        return tuple(
            bytes(table.read_page(page_no).data)
            for page_no in range(page_lo, page_hi)
        )

    def _thunk(self, task):
        """Materialize one task description for in-process execution."""
        fn = self.namespace[task.func]
        ctx = self.ctx
        if isinstance(task, ScanTask):
            post = (
                self.namespace[task.post_func]
                if task.post_func is not None
                else None
            )

            def run_scan():
                rows = fn(ctx, task.page_lo, task.page_hi)
                return post(ctx, rows) if post is not None else rows

            return run_scan
        return lambda: fn(ctx, *task.args)

    def _run_batch(self, tasks: list) -> tuple[list, int, str]:
        """Run one phase's task batch on the active backend.

        Returns ``(results, workers, backend_name)`` with results in
        task order.  A batch whose payloads refuse to pickle re-runs on
        the thread backend — the scheduler's structure (and therefore
        result order) is identical either way, only the substrate
        changes.
        """
        if self.process is not None:
            try:
                results, workers, shipped = self.process.run_batch(
                    self.module_spec, self.params, tasks, self._read_pages
                )
                self.report.shipped_tasks += len(tasks)
                self.report.shipped_bytes += shipped
                return results, workers, EXECUTOR_PROCESS
            except TaskNotPicklable as exc:
                self.report.skip(
                    "unpicklable task payload "
                    f"({str(exc)[:80]}): batch re-ran on the thread "
                    "backend"
                )
        thunks = [self._thunk(task) for task in tasks]
        results, workers = self.executor.thread_backend().run_thunks(
            thunks, self.config.workers
        )
        return results, workers, EXECUTOR_THREAD

    def _serial(self, op) -> None:
        """Run one operator's serial generated function in plan order."""
        started = time.perf_counter()
        fn = self.namespace[self.names[op.op_id]]
        args = [self.results[input_id] for input_id in op.inputs]
        self.results[op.op_id] = fn(self.ctx, *args)
        self.report.note(
            _PHASE_OF[type(op)], time.perf_counter() - started, 1, 1
        )

    def _chunk_size(self, num_rows: int) -> int:
        """Rows per chunk: ~4 chunks per worker, floored so tiny chunks
        never dominate dispatch overhead."""
        per_worker = -(-num_rows // (self.config.workers * 4))
        return max(per_worker, self.config.min_rows // 8, 1)

    def _float_gated(self, op: Aggregate) -> bool:
        """True when merging this aggregate's partials would reassociate
        DOUBLE addition and the config demands bit-identical results."""
        if self.config.allow_float_reorder:
            return False
        for node in collect_aggregates(op):
            if (
                node.func in ("sum", "avg")
                and node.argument is not None
                and node.argument.dtype == DOUBLE
            ):
                return True
        return False

    # -- stage phase -------------------------------------------------------------------
    def _scan(self, op: ScanStage, following) -> int:
        """Morsel-parallel scan + staging; returns operators consumed."""
        table = op.table
        config = self.config
        if table.num_pages < config.min_pages:
            self.report.skip(
                f"table {op.binding!r}: {table.num_pages} pages "
                f"(< min_pages {config.min_pages})"
            )
            self._serial(op)
            return 1
        if op.prep.kind == PREP_PARTITION_SORT and op.prep.fine:
            # The template emits a value-directory dict for this combo;
            # merge_partition_sorted_runs expects coarse bucket lists.
            # The optimizer never builds it today — stay serial rather
            # than corrupt results if a future planner change does.
            self.report.skip(
                f"table {op.binding!r}: fine partition-sort staging "
                f"has no parallel merge"
            )
            self._serial(op)
            return 1
        pages_per = config.morsel_pages
        if self.process is not None:
            # Process morsels are coarser: each one's page bytes are
            # pickled across the boundary, so fewer, larger units keep
            # the serialization toll amortized.
            pages_per = coarse_morsel_pages(
                table.num_pages, config.workers, config.morsel_pages
            )
        morsels = morsels_for(table.num_pages, pages_per)
        if len(morsels) < 2:
            self.report.skip(f"table {op.binding!r}: single morsel")
            self._serial(op)
            return 1

        fused = self._fusable_consumer(op, following)
        scan_name = self.names[op.op_id]
        post_name = None
        if isinstance(fused, Aggregate):
            post_name = self.names[fused.op_id] + "_partial"
        elif isinstance(fused, Project):
            post_name = self.names[fused.op_id]

        started = time.perf_counter()
        tasks = [
            ScanTask(
                func=scan_name,
                binding=op.binding,
                page_lo=morsel.page_lo,
                page_hi=morsel.page_hi,
                post_func=post_name,
            )
            for morsel in morsels
        ]
        ordered, workers, backend = self._run_batch(tasks)
        self.report.note(
            "stage", time.perf_counter() - started, workers,
            len(morsels), backend,
        )
        self.report.morsels += len(morsels)
        self.report.pages += table.num_pages

        if isinstance(fused, Aggregate):
            started = time.perf_counter()
            input_layout = self.plan.op(fused.input_op).output_layout
            rows = merge_aggregate_partials(
                fused,
                input_layout,
                ordered,
                self.params,
                directory_order=self.prepared.compiled.opt_level == OPT_O2,
            )
            self.results[op.op_id] = None
            self.results[fused.op_id] = rows
            self.report.note(
                "aggregate", time.perf_counter() - started, 1, 1
            )
            return 2
        if isinstance(fused, Project):
            rows = []
            for chunk in ordered:
                rows.extend(chunk)
            self.results[op.op_id] = None
            self.results[fused.op_id] = rows
            return 2

        prep = op.prep
        if prep.kind == PREP_SORT:
            value: object = merge_sorted_runs(ordered, prep.keys)
        elif prep.kind == PREP_PARTITION:
            value = (
                merge_fine_partition_runs(ordered)
                if prep.fine
                else merge_partition_runs(ordered)
            )
        elif prep.kind == PREP_PARTITION_SORT:
            value = merge_partition_sorted_runs(ordered, prep.keys)
        else:
            rows = []
            for chunk in ordered:
                rows.extend(chunk)
            value = rows
        self.results[op.op_id] = value
        return 1

    def _fusable_consumer(self, op: ScanStage, following):
        """The next operator, when its work can ride inside scan tasks.

        Only unstaged scans fuse (staged consumers need the complete
        sorted/partitioned input), and only with the one operator that
        consumes them: a projection (a pure per-row map) or a map/global
        aggregation whose generated ``*_partial`` exists and whose
        merge is exact under the float-reorder policy.
        """
        if following is None or op.prep.kind != PREP_NONE:
            return None
        if isinstance(following, Project) and following.input_op == op.op_id:
            return following
        if (
            isinstance(following, Aggregate)
            and following.input_op == op.op_id
        ):
            if following.group_positions and following.algorithm != AGG_MAP:
                return None
            name = self.names[following.op_id] + "_partial"
            if name not in self.namespace:
                return None
            if self._float_gated(following):
                return None
            return following
        return None

    # -- join phase --------------------------------------------------------------------
    def _join(self, op: Join) -> None:
        pair_name = self.names[op.op_id] + "_pair"
        if pair_name not in self.namespace:
            self.report.skip("join module lacks a pair entry point")
            self._serial(op)
            return
        left = self.results[op.left_op]
        right = self.results[op.right_op]
        config = self.config
        if op.algorithm in (JOIN_MERGE, JOIN_NESTED):
            total = len(left) + len(right)
        elif op.algorithm == JOIN_HASH:
            total = sum(len(rows) for rows in left.values()) + sum(
                len(rows) for rows in right.values()
            )
        else:
            total = sum(len(rows) for rows in left) + sum(
                len(rows) for rows in right
            )
        if total < config.min_rows:
            self.report.skip(
                f"join input {total} rows (< min_rows {config.min_rows})"
            )
            self._serial(op)
            return

        tasks: list = []
        if op.algorithm in (JOIN_MERGE, JOIN_NESTED):
            bounds = chunk_bounds(len(left), self._chunk_size(len(left)))
            if len(bounds) < 2:
                self.report.skip("join outer input yields a single chunk")
                self._serial(op)
                return
            for lo, hi in bounds:
                chunk = left[lo:hi]
                if op.algorithm == JOIN_MERGE:
                    # Each outer chunk only needs inner rows from its
                    # first key onward; the merge body skips the rest.
                    start = lower_bound(
                        right, op.right_key, chunk[0][op.left_key]
                    )
                    inner = right[start:]
                else:
                    inner = right
                tasks.append(CallTask(func=pair_name, args=(chunk, inner)))
        elif op.algorithm == JOIN_HASH:
            # Serial emission order: left directory insertion order,
            # skipping keys with no right-side partition.
            keys = [key for key in left if key in right]
            if len(keys) < 2:
                self.report.skip("fewer than two matching fine partitions")
                self._serial(op)
                return
            tasks = [
                CallTask(func=pair_name, args=(left[key], right[key]))
                for key in keys
            ]
        else:  # hybrid: corresponding coarse partitions
            if len(left) < 2:
                self.report.skip("single coarse partition")
                self._serial(op)
                return
            tasks = [
                CallTask(func=pair_name, args=(left[index], right[index]))
                for index in range(len(left))
            ]

        started = time.perf_counter()
        chunks, workers, backend = self._run_batch(tasks)
        out: list = []
        for chunk in chunks:
            out.extend(chunk)
        self.results[op.op_id] = out
        self.report.note(
            "join", time.perf_counter() - started, workers, len(tasks),
            backend,
        )

    # -- aggregate phase ---------------------------------------------------------------
    def _aggregate(self, op: Aggregate) -> None:
        config = self.config
        partial_name = self.names[op.op_id] + "_partial"
        if partial_name not in self.namespace or (
            op.group_positions and op.algorithm != AGG_MAP
        ):
            # Sort/hybrid aggregation folds its (parallel-)staged input
            # through the serial generated function — exact, since the
            # staged input is byte-identical to a serial run's.
            self._serial(op)
            return
        if self._float_gated(op):
            self.report.skip(
                "DOUBLE sum/avg is order-sensitive "
                "(allow_float_reorder is off)"
            )
            self._serial(op)
            return
        rows = self.results[op.input_op]
        if len(rows) < config.min_rows:
            self.report.skip(
                f"aggregate input {len(rows)} rows "
                f"(< min_rows {config.min_rows})"
            )
            self._serial(op)
            return
        bounds = chunk_bounds(len(rows), self._chunk_size(len(rows)))
        if len(bounds) < 2:
            self._serial(op)
            return
        tasks = [
            CallTask(func=partial_name, args=(rows[lo:hi],))
            for lo, hi in bounds
        ]
        started = time.perf_counter()
        partials, workers, backend = self._run_batch(tasks)
        input_layout = self.plan.op(op.input_op).output_layout
        self.results[op.op_id] = merge_aggregate_partials(
            op,
            input_layout,
            partials,
            self.params,
            directory_order=self.prepared.compiled.opt_level == OPT_O2,
        )
        self.report.note(
            "aggregate", time.perf_counter() - started, workers,
            len(tasks), backend,
        )

    # -- final phase -------------------------------------------------------------------
    def _sort(self, op: Sort) -> None:
        rows = self.results[op.input_op]
        config = self.config
        if len(rows) < config.min_rows:
            self.report.skip(
                f"sort input {len(rows)} rows (< min_rows {config.min_rows})"
            )
            self._serial(op)
            return
        bounds = chunk_bounds(len(rows), self._chunk_size(len(rows)))
        if len(bounds) < 2:
            self._serial(op)
            return
        # Each task sorts a contiguous slice copy with the generated
        # ORDER BY function; the k-way merge's run-order tie-break then
        # reproduces the serial stable sort exactly.
        tasks = [
            CallTask(func=self.names[op.op_id], args=(rows[lo:hi],))
            for lo, hi in bounds
        ]
        started = time.perf_counter()
        runs, workers, backend = self._run_batch(tasks)
        self.results[op.op_id] = merge_ordered_runs(runs, op.keys)
        self.report.note(
            "final", time.perf_counter() - started, workers, len(tasks),
            backend,
        )


# -- aggregate merging ------------------------------------------------------------------
#
# Generated ``*_partial`` functions return ``{group key: [state, ...]}``
# with one 4-slot state ``[sum, count, minimum, maximum]`` per aggregate
# node, in :func:`collect_aggregates` order.  The representation is
# mergeable without knowing the aggregate function: sums and counts add,
# minima/maxima compare.

_SUM, _COUNT, _MIN, _MAX = range(4)


def merge_aggregate_partials(
    op: Aggregate,
    input_layout,
    partials: list[dict],
    params: tuple = (),
    directory_order: bool = True,
) -> list[tuple]:
    """Fold per-chunk partial states and finalize output rows.

    Partials must arrive in chunk (page/row) order: group keys are
    merged first-seen, which reproduces the serial scan's discovery
    order and therefore the serial output order (for map aggregation,
    via the reconstructed value directories of Figure 4(b)).
    """
    merged: dict[tuple, list[list]] = {}
    for partial in partials:
        for key, states in partial.items():
            acc = merged.get(key)
            if acc is None:
                # Adopt the worker-local states outright (each partial
                # dict is owned by exactly one chunk).
                merged[key] = states
            else:
                for state, other in zip(acc, states):
                    state[_SUM] += other[_SUM]
                    state[_COUNT] += other[_COUNT]
                    if other[_MIN] is not None and (
                        state[_MIN] is None or other[_MIN] < state[_MIN]
                    ):
                        state[_MIN] = other[_MIN]
                    if other[_MAX] is not None and (
                        state[_MAX] is None or other[_MAX] > state[_MAX]
                    ):
                        state[_MAX] = other[_MAX]

    aggregates = collect_aggregates(op)
    if not op.group_positions:
        # A global aggregate yields exactly one row even over no input.
        if not merged:
            merged[()] = _empty_states(aggregates)
        keys = [()]
    else:
        keys = list(merged)
        if directory_order and op.algorithm == AGG_MAP and op.directory_sizes:
            keys = _map_directory_order(op, keys)

    index_of = {node: k for k, node in enumerate(aggregates)}
    position_of = {pos: i for i, pos in enumerate(op.group_positions)}

    def evaluate(expr, key: tuple, states: list[list]):
        if isinstance(expr, BoundAggregate):
            return _state_result(expr.func, states[index_of[expr]])
        if isinstance(expr, BoundArithmetic):
            left = evaluate(expr.left, key, states)
            right = evaluate(expr.right, key, states)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            return left / right
        if isinstance(expr, BoundColumn):
            return key[position_of[input_layout.position(expr)]]
        if isinstance(expr, BoundParameter):
            return params[expr.index]
        return expr.value  # BoundLiteral

    return [
        tuple(
            evaluate(output.expr, key, merged[key]) for output in op.outputs
        )
        for key in keys
    ]


def _state_result(func: str, state: list):
    if func == "count":
        return state[_COUNT]
    if func == "sum":
        return state[_SUM]
    if func == "avg":
        return state[_SUM] / state[_COUNT] if state[_COUNT] else None
    if func == "min":
        return state[_MIN]
    return state[_MAX]


def _empty_states(aggregates: list[BoundAggregate]) -> list[list]:
    return [
        [0.0 if node.dtype == DOUBLE else 0, 0, None, None]
        for node in aggregates
    ]


def _map_directory_order(op: Aggregate, keys: list[tuple]) -> list[tuple]:
    """Order groups the way serial map aggregation emits them.

    The serial template walks group offsets ``Σ_i M_i[v_i]·Π_{j>i}|M_j|``
    in ascending order, with each value directory ``M_i`` built in
    first-seen order.  Walking merged keys in first-seen order rebuilds
    identical directories (a new attribute value always arrives with a
    new key), and overflowing a directory raises the same
    :class:`MapDirectoryOverflow` the generated code would, so the
    caller's hybrid-aggregation fallback engages exactly as in serial
    execution.
    """
    sizes = [max(size, 1) for size in op.directory_sizes]
    directories: list[dict] = [{} for _ in op.group_positions]
    for key in keys:
        for g, value in enumerate(key):
            directory = directories[g]
            if value not in directory:
                if len(directory) >= sizes[g]:
                    raise MapDirectoryOverflow()
                directory[value] = len(directory)
    multipliers = []
    for g in range(len(sizes)):
        product = 1
        for j in range(g + 1, len(sizes)):
            product *= sizes[j]
        multipliers.append(product)
    return sorted(
        keys,
        key=lambda key: sum(
            directories[g][key[g]] * multipliers[g]
            for g in range(len(key))
        ),
    )
