"""Task backends: where a scheduled query's parallel tasks run.

The phase scheduler (:mod:`repro.parallel.executor`) describes each
phase's units of work as pure-data task payloads —
:class:`~repro.parallel.proc.CallTask` for join pairs, aggregate row
chunks and sort runs, :class:`~repro.parallel.proc.ScanTask` for
page-range morsels — and hands the batch to a backend:

* :class:`ThreadBackend` — today's behavior: an in-process
  ``ThreadPoolExecutor`` whose workers claim task indices from a
  :class:`~repro.parallel.morsel.TaskDispatcher` and run the generated
  functions directly against the live context (real tables, zero
  copying).  Under CPython's GIL this wins whenever tasks block on
  I/O (latency-bound scans) and loses nothing on tiny inputs.
* :class:`ProcessBackend` — a lazily created
  ``ProcessPoolExecutor``: each task is pickled together with the
  generated module's spec, re-imported and executed by a worker
  process (:func:`repro.parallel.proc.run_task`), and its result is
  pickled back.  CPU-bound in-memory phases scale with cores this way;
  the price is serialization, which is why the scheduler coarsens
  process morsels and why tiny batches should stay on threads.

Both backends return results **in task order**, which is what keeps
every downstream merge order-preserving and parallel rows byte-
identical to serial rows.  The first task exception is re-raised after
the batch drains; a dead worker process or an expired ``task_timeout``
— enforced on *both* backends as a **stall** deadline (time queued
behind a concurrent batch's healthy work doesn't count; only a wait
with zero backend progress does): the process backend kills its pool,
the thread backend abandons its (unkillable) pool and poisons the
batch's task queue — surfaces as a clean
:class:`~repro.errors.ExecutionError` instead of a hang, and payloads
that refuse to pickle raise :class:`TaskNotPicklable` so the scheduler
can retry the batch on the thread backend.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from concurrent.futures import (
    CancelledError as FutureCancelled,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeout,
)
from concurrent.futures.process import BrokenProcessPool, ProcessPoolExecutor

from repro.errors import ExecutionError, WatchdogTimeout
from repro.obs import current_span
from repro.parallel import proc
from repro.parallel.morsel import AffinityDispatcher, TaskDispatcher

#: Environment override for the multiprocessing start method.  The
#: default prefers ``fork`` (cheap workers that inherit the imported
#: interpreter) and falls back to ``spawn`` where fork is unavailable.
START_METHOD_ENV = "REPRO_PROC_START"


class TaskNotPicklable(Exception):
    """A task payload (or its result) cannot cross a process boundary.

    The scheduler catches this and re-runs the batch on the thread
    backend, recording a stats note — correctness never depends on a
    payload being picklable.
    """


class BackendRetired(TaskNotPicklable):
    """This process backend was closed by a reconfigure mid-run.

    Raised instead of resurrecting a worker pool nothing owns anymore;
    as a :class:`TaskNotPicklable` subclass it makes the in-flight run
    finish its remaining batches on the thread backend, so the query
    still completes with the configuration it started with.
    """


class PoolAbandoned(ExecutionError):
    """Collateral failure: another batch's timeout abandoned the pool.

    Distinct from the wedged batch's own timeout error so callers
    collecting errors from concurrent batches (the pipelined driver)
    can prefer the root cause over this secondary casualty.
    """


class ThreadBackend:
    """In-process worker pool running generated code over shared state.

    ``concurrent_batches`` sizes the pool for the pipelined scheduler:
    each :meth:`run_thunks` batch still fans out to at most ``workers``
    claim threads, but the pool holds ``workers × concurrent_batches``
    slots so batches of *different* operators (a latency-bound scan and
    a CPU-bound join, say) run side by side instead of queuing behind
    one another.  Under phase-barrier scheduling only one batch is in
    flight at a time, so the extra slots stay unused.
    """

    name = "thread"

    def __init__(
        self,
        workers: int,
        task_timeout: float | None = None,
        concurrent_batches: int = 1,
        registry=None,
    ):
        self.workers = workers
        self.task_timeout = task_timeout
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry` that
        #: receives structured watchdog events.
        self.registry = registry
        self._slots = workers * max(concurrent_batches, 1)
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        #: Tasks completed across every batch on this backend, for the
        #: stall watchdog: a batch waiting (running *or* queued) while
        #: any batch completes tasks is behind a healthy pool; only a
        #: backend-wide silence of ``task_timeout`` seconds is a stall.
        self._completed = 0
        self._completed_lock = threading.Lock()

    def submit(self, fn, count: int) -> list:
        """Create the pool if needed and submit ``count`` callables.

        Pool creation and submission share one critical section with
        :meth:`close`, so a task is never submitted to a pool that has
        been retired.
        """
        return self.submit_each([fn] * count)

    def submit_each(self, fns: list) -> list:
        """Like :meth:`submit` for a list of distinct callables.

        Used by affinity-aware batches, whose claim loops are
        slot-specific (worker ``k`` prefers partition ``k``'s queue).
        """
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._slots,
                    thread_name_prefix="repro-morsel",
                )
            return [self._pool.submit(fn) for fn in fns]

    def drain_futures(
        self,
        futures: list,
        collect=None,
        progress=None,
        label: str | None = None,
        in_flight: set | None = None,
    ) -> None:
        """Await every worker future, then re-raise the first error.

        Draining all futures before raising keeps no worker running
        against state the caller is about to unwind; ``collect``
        receives each successful result in submission order.

        With a ``task_timeout`` configured, ``progress=True`` arms a
        stall watchdog: whenever no task completes *anywhere on this
        backend* for ``task_timeout`` seconds while this batch still
        has pending futures, the wait aborts with a clean
        :class:`~repro.errors.ExecutionError` — the thread-side
        analogue of the process backend's stall-aware deadline.  Time
        spent queued behind other batches' healthy work does not count
        (their completions keep resetting the deadline), but a batch
        queued behind *wedged* work times out like a wedged batch —
        it would otherwise hang forever.  Thread workers cannot be
        killed, so the stalled pool is abandoned (the wedged task
        keeps running detached) and later runs get a fresh pool.
        """
        if self.task_timeout is not None and progress:
            self._drain_with_deadline(futures, label, in_flight)
        error: BaseException | None = None
        for future in futures:
            try:
                result = future.result()
            except FutureCancelled:
                # A pool teardown cancelled our queued workers before
                # they started: surface the library's error type, not
                # a bare CancelledError.
                if error is None:
                    error = PoolAbandoned(
                        "the shared worker pool was torn down (a task "
                        "timeout elsewhere, or a shutdown) before this "
                        "batch completed; the next parallel execution "
                        "gets a fresh pool"
                    )
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if error is None:
                    error = exc
            else:
                if collect is not None:
                    collect(result)
        if error is not None:
            raise error

    def _drain_with_deadline(
        self,
        futures: list,
        label: str | None = None,
        in_flight: set | None = None,
    ) -> None:
        """Wait for all futures, aborting on a ``task_timeout`` stall."""
        from concurrent.futures import wait as wait_futures

        timeout = self.task_timeout
        poll = min(max(timeout / 4, 0.01), 0.25)
        started = time.monotonic()
        pending = {f for f in futures if not f.done()}
        last_count = self._completed_count()
        last_change = time.monotonic()
        while pending:
            done, pending = wait_futures(pending, timeout=poll)
            now = time.monotonic()
            count = self._completed_count()
            if done or count != last_count:
                # This batch's claim workers returned, or some batch
                # somewhere completed a task: the backend is healthy.
                last_count, last_change = count, now
            elif now - last_change > timeout:
                for future in pending:
                    future.cancel()
                self._abandon_pool()
                self._record_abandonment(
                    label, now - started, in_flight
                )
                raise self._timeout_error()

    def _record_abandonment(
        self,
        label: str | None,
        elapsed: float,
        in_flight: set | None,
    ) -> None:
        """Leave a structured trail when the watchdog abandons the pool.

        An ``ExecutionError`` alone tells the caller *that* a morsel
        wedged; the metric event (and, when tracing, an instant span)
        records *which* node and tasks, so the hang is diagnosable
        after the fact.
        """
        tasks = sorted(in_flight) if in_flight else []
        if self.registry is not None:
            self.registry.counter(
                "repro_watchdog_abandonments_total", backend=self.name
            ).inc()
            self.registry.record_event(
                "watchdog_abandonment",
                backend=self.name,
                node=label or "",
                elapsed_seconds=elapsed,
                task_timeout=self.task_timeout,
                wedged_tasks=tasks,
            )
        span = current_span()
        if span is not None:
            now = time.perf_counter()
            span.child(
                "watchdog_abandonment",
                "watchdog",
                start=now,
                end=now,
                node=label or "",
                elapsed_seconds=elapsed,
                wedged_tasks=str(tasks),
            )

    def _completed_count(self) -> int:
        with self._completed_lock:
            return self._completed

    def _task_done(self) -> None:
        with self._completed_lock:
            self._completed += 1

    def _timeout_error(self) -> WatchdogTimeout:
        return WatchdogTimeout(
            f"parallel task exceeded task_timeout={self.task_timeout}s "
            f"on the thread backend; worker threads cannot be killed, "
            f"so the stalled pool was abandoned and the next parallel "
            f"execution gets a fresh one"
        )

    def _abandon_pool(self) -> None:
        """Drop the stalled pool without waiting for its wedged task.

        No ``cancel_futures`` here: the timed-out batch already
        cancelled its own queued workers and poisons its dispatcher,
        while *other* batches sharing the pool are healthy — their
        queued work keeps draining on the old pool's surviving threads
        instead of being collaterally failed.
        """
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def run_thunks(
        self,
        thunks: list,
        workers: int,
        label: str | None = None,
        affinity: list | None = None,
    ) -> tuple[list, int]:
        """Run zero-arg callables on the pool; results in task order.

        Workers claim indices from a :class:`TaskDispatcher`, so a slow
        task never stalls the queue behind it.  ``label`` names the
        scheduling node in watchdog diagnostics.

        ``affinity`` (one partition id per thunk) switches claiming to
        an :class:`AffinityDispatcher`: worker ``k`` sticks to
        partition ``k``'s tasks and steals from the fullest other
        queue when its own runs dry.  Results are still keyed by task
        index, so claim order never affects output order.
        """
        out: list = [None] * len(thunks)
        workers = min(workers, len(thunks))
        if affinity is not None and workers > 1:
            dispatcher = AffinityDispatcher(
                len(thunks), affinity, workers
            )
        else:
            dispatcher = TaskDispatcher(len(thunks))
        # Claimed-but-unfinished indices; set add/discard are GIL-atomic
        # so the watchdog can snapshot wedged tasks without a lock.
        in_flight: set[int] = set()

        def drain(slot: int) -> None:
            while True:
                index = dispatcher.next(slot)
                if index is None:
                    return
                in_flight.add(index)
                out[index] = thunks[index]()
                in_flight.discard(index)
                self._task_done()

        try:
            self.drain_futures(
                self.submit_each(
                    [
                        (lambda slot=slot: drain(slot))
                        for slot in range(workers)
                    ]
                ),
                progress=True,
                label=label,
                in_flight=in_flight,
            )
            if isinstance(dispatcher, AffinityDispatcher):
                span = current_span()
                if span is not None:
                    span.set(affinity_steals=dispatcher.steals)
        except BaseException:
            # Poison the queue so surviving claim workers stop after
            # their current thunk instead of executing the rest of a
            # batch the caller is about to unwind.  (After a normal
            # task error the queue is already drained — the other
            # claim loops ran every remaining task first — so this
            # only bites on the timeout/abandonment paths.)
            dispatcher.cancel()
            raise
        return out, workers

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


class ProcessBackend:
    """Ships task payloads to a pool of worker processes.

    Workers import the generated module from the compiler's work
    directory by its module spec, so the exact code the parent compiled
    runs against pure-data payloads; results return in task order.
    The pool is created lazily on the first shipped batch (most queries
    never pay for worker processes) and replaced transparently after a
    worker death.
    """

    name = "process"

    def __init__(
        self,
        workers: int,
        task_timeout: float | None = None,
        registry=None,
    ):
        self.workers = workers
        self.task_timeout = task_timeout
        self.registry = registry
        self._pool: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()
        self._closed = False
        #: Results collected across every batch on this backend, for
        #: the stall-aware deadline: a future whose wait expires while
        #: *other* results keep arriving is queued behind a healthy
        #: pool (concurrent pipelined batches share it), not wedged.
        self._completed = 0

    # -- pool lifecycle -----------------------------------------------------------
    @property
    def warm(self) -> bool:
        """Whether the worker pool already exists.

        The placement cost model charges a cold backend a one-off
        spin-up penalty, so the first process-routed batch must
        genuinely beat the thread backend by more than pool creation
        costs.
        """
        with self._lock:
            return self._pool is not None

    @staticmethod
    def _start_method() -> str:
        import multiprocessing

        configured = os.environ.get(START_METHOD_ENV, "")
        methods = multiprocessing.get_all_start_methods()
        if configured:
            if configured not in methods:
                raise ExecutionError(
                    f"unknown {START_METHOD_ENV}={configured!r}; "
                    f"available: {methods}"
                )
            return configured
        # forkserver by default: pools are created lazily, i.e. while
        # service threads are already running queries, and forking a
        # multi-threaded parent can deadlock a child on an inherited
        # held lock (the reason CPython 3.14 switched its Linux default
        # too).  Workers instead fork from the single-threaded server;
        # preloading the worker module there keeps their startup cheap.
        if "forkserver" in methods:
            return "forkserver"
        return "fork" if "fork" in methods else "spawn"

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise BackendRetired(
                    "process backend retired by a reconfigure"
                )
            if self._pool is None:
                import multiprocessing

                method = self._start_method()
                context = multiprocessing.get_context(method)
                if method == "forkserver":
                    # One warm import of the worker module in the (per-
                    # interpreter) forkserver; every worker forks from
                    # it already loaded.  A no-op once the server runs.
                    context.set_forkserver_preload(
                        ["repro.parallel.proc"]
                    )
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=context
                )
            return self._pool

    def _retire_pool(self, kill: bool = False) -> None:
        """Drop the current pool (it broke, or a task timed out).

        ``kill`` additionally terminates worker processes outright —
        the only way to stop a wedged task, since a timed-out future
        cannot be cancelled once running.
        """
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is None:
            return
        if kill:
            for process in list(getattr(pool, "_processes", {}).values()):
                process.terminate()
        pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Retire this backend: drain queued tasks, then shut down.

        No ``cancel_futures`` here — an in-flight run still collecting a
        batch must see it complete (the documented reconfigure
        contract); only :meth:`_retire_pool`'s broken/timed-out paths
        cancel.  Later batches of such a run hit :class:`BackendRetired`
        and finish on the thread backend.
        """
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # -- execution ----------------------------------------------------------------
    def run_batch(
        self,
        module_spec: tuple[str, str],
        params: tuple,
        tasks: list,
        page_reader=None,
        label: str | None = None,
        task_meta: list | None = None,
    ) -> tuple[list, int, int]:
        """Run one phase's tasks out of process; results in task order.

        Returns ``(results, workers, shipped_bytes)`` — the last is the
        approximate payload volume serialized for this batch, which the
        scheduler surfaces as a stats note.

        ``page_reader(binding, page_lo, page_hi)`` materializes a scan
        task's page bytes at submission time (reading through the live
        buffer pool in the parent, so workers never touch storage).

        Passing ``task_meta`` (a caller-owned list) opts the batch into
        worker-side timing: tasks run via
        :func:`repro.parallel.proc.run_task_traced` and one dict per
        task — worker pid/thread, monotonic start/end, submit time —
        is appended in task order, so the caller can synthesize task
        spans attributed to worker processes.
        """
        module_name, source_path = module_spec
        pool = self._ensure_pool()
        futures: list = [None] * len(tasks)
        shipped = 0
        submitted = 0
        traced = task_meta is not None
        entry = proc.run_task_traced if traced else proc.run_task
        submit_times: list = [None] * len(tasks) if traced else []
        # Submit-as-you-collect: only a bounded window of payloads is
        # materialized (page bytes read, pickled) at any moment, so a
        # scan of a large table never holds the whole table's bytes in
        # the parent on top of the buffer pool.
        window = max(self.workers * 2, 2)

        def submit_through(limit: int) -> None:
            nonlocal shipped, submitted
            while submitted < min(limit, len(tasks)):
                task = tasks[submitted]
                if isinstance(task, proc.ScanTask) and not task.pages:
                    task = proc.ScanTask(
                        func=task.func,
                        binding=task.binding,
                        page_lo=task.page_lo,
                        page_hi=task.page_hi,
                        post_func=task.post_func,
                        pages=page_reader(
                            task.binding, task.page_lo, task.page_hi
                        ),
                    )
                shipped += proc.shipped_bytes(task)
                if traced:
                    submit_times[submitted] = time.perf_counter()
                futures[submitted] = pool.submit(
                    entry, module_name, source_path, params, task
                )
                submitted += 1

        submit_through(window)
        results: list = [None] * len(tasks)
        error: BaseException | None = None
        for index in range(len(tasks)):
            future = futures[index]
            try:
                payload = self._await_result(future)
                if traced:
                    result, pid, thread_id, started, ended = payload
                    results[index] = result
                    task_meta.append(
                        {
                            "index": index,
                            "pid": pid,
                            "thread_id": thread_id,
                            "submitted": submit_times[index],
                            "started": started,
                            "ended": ended,
                        }
                    )
                else:
                    results[index] = payload
                with self._lock:
                    self._completed += 1
            except FutureTimeout:
                self._retire_pool(kill=True)
                if self.registry is not None:
                    self.registry.counter(
                        "repro_watchdog_abandonments_total",
                        backend=self.name,
                    ).inc()
                    self.registry.record_event(
                        "watchdog_abandonment",
                        backend=self.name,
                        node=label or "",
                        elapsed_seconds=self.task_timeout,
                        task_timeout=self.task_timeout,
                        wedged_tasks=[index],
                    )
                raise WatchdogTimeout(
                    f"parallel task exceeded task_timeout="
                    f"{self.task_timeout}s on the process backend; "
                    f"worker pool terminated"
                ) from None
            except BrokenProcessPool:
                self._retire_pool()
                raise ExecutionError(
                    "a parallel worker process died mid-task (process "
                    "pool broken); the pool will be recreated on the "
                    "next parallel execution"
                ) from None
            except BaseException as exc:  # noqa: BLE001 - sorted below
                if _is_pickling_failure(exc):
                    # The queue feeder could not serialize this payload;
                    # the batch must re-run in-process.
                    for pending in futures[index + 1:submitted]:
                        pending.cancel()
                    raise TaskNotPicklable(str(exc)) from exc
                if error is None:
                    error = exc
            # Keep the window full even while draining past a task
            # error, so every task still runs before the error re-
            # raises (matching the thread backend's drain semantics).
            submit_through(index + 1 + window)
        if error is not None:
            raise error
        return results, min(self.workers, len(tasks)), shipped

    def _await_result(self, future):
        """One result, bounded by a *stall-aware* ``task_timeout``.

        The deadline restarts whenever any other result arrived on
        this backend while we waited: under pipelined scheduling
        several batches share the worker pool, so a future can sit in
        the pool queue for longer than ``task_timeout`` behind a
        perfectly healthy neighbour batch.  Only a wait during which
        the whole backend made no progress counts as a wedged task.
        """
        if self.task_timeout is None:
            return future.result()
        with self._lock:
            seen = self._completed
        while True:
            try:
                return future.result(timeout=self.task_timeout)
            except FutureTimeout:
                with self._lock:
                    completed = self._completed
                if completed == seen:
                    raise
                seen = completed


def _is_pickling_failure(exc: BaseException) -> bool:
    """Serialization error vs a genuine task error.

    A worker's own ``TypeError`` must propagate, while a
    ``PicklingError``/``TypeError`` raised *while serializing* the call
    item means "retry on threads".  Serialization failures happen in
    the queue feeder thread (``multiprocessing.queues._feed``) or, for
    an unpicklable *result*, in the worker's send path — both leave
    their frames in the attached remote traceback, whereas a task's own
    exception never ran through those functions.
    """
    if not isinstance(
        exc, (pickle.PicklingError, TypeError, AttributeError)
    ):
        return False
    cause = exc.__cause__
    if cause is None or type(cause).__name__ != "_RemoteTraceback":
        # No remote frames at all: the exception was raised locally at
        # submission time, which only serialization does.
        return True
    trace = str(cause)
    return (
        "in _feed" in trace
        or "in _sendback_result" in trace
        or "PicklingError" in trace
    )


__all__ = [
    "BackendRetired",
    "PoolAbandoned",
    "ProcessBackend",
    "START_METHOD_ENV",
    "TaskNotPicklable",
    "ThreadBackend",
]
