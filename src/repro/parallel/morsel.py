"""Morsel-driven work division over table pages.

Following the morsel-driven parallelism model, a table scan is split
into *morsels* — contiguous page ranges small enough that work stays
balanced across workers, large enough that per-morsel overhead
amortizes.  The :class:`MorselDispatcher` is the atomic work queue:
workers pull the next morsel under a lock, so a fast worker simply
takes more morsels than a slow one (the classic antidote to static
range partitioning skew).

Morsels carry their sequence number so callers can reassemble partial
results *in page order*, which keeps parallel scan output identical to
a serial scan.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Iterator, Sequence

#: Default pages per morsel.  With 8 KiB pages this is 128 KiB of input
#: per unit of work — enough to amortize dispatch, small enough to
#: balance four workers on tables of a few hundred pages.
DEFAULT_MORSEL_PAGES = 16


@dataclass(frozen=True)
class Morsel:
    """One contiguous page range ``[page_lo, page_hi)`` of a scan."""

    seq: int
    page_lo: int
    page_hi: int

    @property
    def num_pages(self) -> int:
        return self.page_hi - self.page_lo


class MorselDispatcher:
    """Atomically dispenses page-range morsels to a worker pool."""

    def __init__(self, num_pages: int, morsel_pages: int = DEFAULT_MORSEL_PAGES):
        if morsel_pages <= 0:
            raise ValueError("morsel_pages must be positive")
        self.num_pages = num_pages
        self.morsel_pages = morsel_pages
        self._next_page = 0
        self._next_seq = 0
        self._lock = threading.Lock()

    @property
    def num_morsels(self) -> int:
        """Total morsels this dispatcher will hand out."""
        return -(-self.num_pages // self.morsel_pages)

    def next(self) -> Morsel | None:
        """The next unclaimed morsel, or None when the scan is consumed."""
        with self._lock:
            if self._next_page >= self.num_pages:
                return None
            lo = self._next_page
            hi = min(lo + self.morsel_pages, self.num_pages)
            morsel = Morsel(seq=self._next_seq, page_lo=lo, page_hi=hi)
            self._next_page = hi
            self._next_seq += 1
            return morsel

    def __iter__(self) -> Iterator[Morsel]:
        while True:
            morsel = self.next()
            if morsel is None:
                return
            yield morsel


def morsels_for(num_pages: int, morsel_pages: int = DEFAULT_MORSEL_PAGES) -> list[Morsel]:
    """Statically enumerate the morsels of a scan (for fan-out APIs)."""
    return list(MorselDispatcher(num_pages, morsel_pages))


def coarse_morsel_pages(
    num_pages: int,
    workers: int,
    morsel_pages: int = DEFAULT_MORSEL_PAGES,
) -> int:
    """Pages per morsel for *process* dispatch of a scan.

    Shipping a morsel to a worker process pickles its page bytes, so
    each unit of work must be big enough to amortize that toll — the
    opposite pressure from thread morsels, where smaller units only
    cost a lock acquisition.  Aim for two morsels per worker (enough
    slack for dynamic balancing) and never go below the configured
    thread-morsel size.
    """
    per_worker = -(-num_pages // max(workers * 2, 1))
    return max(morsel_pages, per_worker, 1)


class TaskDispatcher:
    """Atomically dispenses task indices ``0..count-1`` to a worker pool.

    The row-level sibling of :class:`MorselDispatcher`: the parallel
    phase scheduler enumerates a phase's units of work (partition
    pairs, row chunks, sorted-run slices) up front, and workers claim
    indices until the queue is dry — the same dynamic load balancing
    morsel scans get, applied to materialized intermediates.
    """

    def __init__(self, count: int):
        if count < 0:
            raise ValueError("count must be non-negative")
        self.count = count
        self._next = 0
        self._lock = threading.Lock()

    def next(self, slot: int = 0) -> int | None:
        """The next unclaimed task index, or None when all are taken.

        ``slot`` identifies the claiming worker; this dispatcher is
        slot-oblivious (pure FIFO), the parameter exists so claim loops
        can drive it and :class:`AffinityDispatcher` interchangeably.
        """
        with self._lock:
            if self._next >= self.count:
                return None
            index = self._next
            self._next += 1
            return index

    def cancel(self) -> None:
        """Poison the queue: every future :meth:`next` returns None.

        Used when a batch is abandoned (task timeout): surviving claim
        workers finish their current task and stop, instead of running
        the rest of a batch whose caller has already unwound.
        """
        with self._lock:
            self._next = self.count


class AffinityDispatcher:
    """Sticky worker↔partition task queues with work-stealing fallback.

    The page-range-affinity sibling of :class:`TaskDispatcher`: each
    task carries a partition id (a stable function of its page range),
    tasks queue per partition, and claim worker ``slot`` drains its own
    partition's queue first — so across morsels *and across runs* the
    same worker walks the same contiguous page stripes (sequential
    reads per worker, warm buffer-pool reuse) instead of interleaving
    claims FIFO.  When a worker's own queue runs dry it *steals* from
    the tail of the longest other queue, so skewed stripes still
    balance dynamically — the classic work-stealing fallback.

    Result order never depends on claim order (callers key results by
    task index), so affinity changes scheduling only, never rows.
    """

    def __init__(
        self, count: int, partitions: Sequence[int], workers: int
    ):
        if count != len(partitions):
            raise ValueError("one partition id per task is required")
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.workers = workers
        self._queues: list[deque[int]] = [
            deque() for _ in range(workers)
        ]
        for index, partition in enumerate(partitions):
            self._queues[partition % workers].append(index)
        self._lock = threading.Lock()
        #: Tasks claimed from another worker's queue (observability).
        self.steals = 0

    def next(self, slot: int = 0) -> int | None:
        """The next index for worker ``slot``: own queue, then steal."""
        with self._lock:
            own = self._queues[slot % self.workers]
            if own:
                return own.popleft()
            victim = max(self._queues, key=len)
            if victim:
                # Steal from the *tail*: the victim keeps draining its
                # stripe contiguously from the head.
                self.steals += 1
                return victim.pop()
            return None

    def cancel(self) -> None:
        """Poison every queue: all future :meth:`next` calls return None."""
        with self._lock:
            for queue in self._queues:
                queue.clear()
