"""A writer-preferring readers–writer latch.

The storage spine admits any number of concurrent readers (scans,
point lookups, aggregate staging) while writers — DDL, bulk loads,
``analyze`` — require exclusive access.  :class:`ReadWriteLatch` is the
gate that enforces this: the catalogue owns one, the query service
acquires the read side around engine execution, and every
catalogue-mutating operation takes the write side.

Writer preference keeps bulk operations from starving under a steady
stream of readers: once a writer is waiting, new readers queue behind
it.  The latch is *not* reentrant — neither read-inside-read nor
write-inside-write — so holders must not call back into gated entry
points.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class ReadWriteLatch:
    """Many concurrent readers or one exclusive writer."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # -- read side -------------------------------------------------------------
    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read(self) -> Iterator[None]:
        """Shared-read scope: ``with latch.read(): ...``."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- write side ------------------------------------------------------------
    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        """Exclusive scope: ``with latch.write(): ...``."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection -----------------------------------------------------------
    @property
    def active_readers(self) -> int:
        with self._cond:
            return self._readers

    @property
    def writer_active(self) -> bool:
        with self._cond:
            return self._writer_active
