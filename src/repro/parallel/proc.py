"""Process-pool worker side of the parallel executor.

Everything in this module runs inside a ``ProcessPoolExecutor`` worker.
A worker has none of the parent's state — no catalogue, no buffer pool,
no compiled namespaces — so every task payload carries exactly what the
generated code needs:

* the *module spec* ``(module_name, source_path)`` of the generated
  query module, which the worker imports from the compiler's work
  directory (the analogue of a second ``dlopen`` of the shared library)
  and caches per path for the pool's lifetime;
* the execute-time parameter vector (``ctx.params``);
* pure-data inputs — raw page bytes for scan tasks, row chunks or
  partition lists for join/aggregate/sort tasks.

Scan tasks get a :class:`PageSliceTable` standing in for the real
table: it serves the shipped page bytes through the same ``read_page``
protocol the generated O2 scan loop uses, so the identical inlined code
runs unchanged against a page slice that crossed the process boundary.
Only untraced O2 modules are ever shipped here — O0 modules call
closures in the parent's context and stay on the thread backend.
"""

from __future__ import annotations

import importlib.util
import os
import struct
import threading
import time
from dataclasses import dataclass, field

_NUM_TUPLES = struct.Struct("<I")

#: source_path → executed module namespace.  Paths are unique per
#: compilation (the compiler appends a serial number), so a cached
#: namespace can never be stale for its path.
_MODULES: dict[str, dict] = {}
_MODULES_LOCK = threading.Lock()


class _WorkerContext:
    """The slice of ``QueryContext`` generated O2 code reads.

    A real :class:`repro.core.executor.QueryContext` would drag the
    whole core stack into the pickle graph; O2 code only dereferences
    ``ctx.tables`` and ``ctx.params``, so a worker builds this
    two-field stand-in instead.
    """

    __slots__ = ("tables", "params")

    def __init__(self, params: tuple = ()):
        self.tables: dict[str, PageSliceTable] = {}
        self.params = params


class _PageView:
    """One shipped page: the byte buffer plus its decoded tuple count."""

    __slots__ = ("data", "num_tuples")

    def __init__(self, data: bytes):
        self.data = data
        self.num_tuples = _NUM_TUPLES.unpack_from(data, 0)[0]


class PageSliceTable:
    """Serves a contiguous page range shipped from the parent process.

    Implements the two members the generated O2 scan loop touches —
    ``read_page`` and ``num_pages`` — over absolute page numbers, so
    the loop body is byte-for-byte the one the parent would run.
    """

    def __init__(self, page_lo: int, pages: list[bytes]):
        self.page_lo = page_lo
        self._views = [_PageView(data) for data in pages]

    @property
    def num_pages(self) -> int:
        return self.page_lo + len(self._views)

    def read_page(self, page_no: int) -> _PageView:
        return self._views[page_no - self.page_lo]


@dataclass(frozen=True)
class CallTask:
    """Run ``namespace[func](ctx, *args)`` — args are pure data.

    Covers join pair tasks (two partitions / an outer chunk plus inner
    slice), aggregate ``*_partial`` row chunks and ORDER BY run sorts.
    """

    func: str
    args: tuple = ()


@dataclass(frozen=True)
class ScanTask:
    """Run a generated scan over pages ``[page_lo, page_hi)``.

    ``pages`` is filled by the process backend at submission time (the
    thread backend reads through the live buffer pool instead);
    ``post_func`` optionally names a fused consumer — a projection or a
    ``*_partial`` aggregation — applied to the scan output inside the
    same task.
    """

    func: str
    binding: str
    page_lo: int
    page_hi: int
    post_func: str | None = None
    pages: tuple = field(default=(), compare=False)


def load_namespace(module_name: str, source_path: str) -> dict:
    """Import one generated module from disk, caching per path.

    Uses a real import spec so tracebacks point into the generated
    file, exactly as they do in the parent process.
    """
    namespace = _MODULES.get(source_path)
    if namespace is not None:
        return namespace
    with _MODULES_LOCK:
        namespace = _MODULES.get(source_path)
        if namespace is not None:
            return namespace
        spec = importlib.util.spec_from_file_location(
            module_name, source_path
        )
        if spec is None or spec.loader is None:  # pragma: no cover
            raise ImportError(
                f"cannot build import spec for generated module "
                f"{module_name!r} at {source_path!r}"
            )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        if getattr(module, "HIQUE_OPT_LEVEL", "O2") != "O2" or getattr(
            module, "HIQUE_TRACED", False
        ):
            raise ImportError(
                f"generated module {module_name!r} is not an untraced O2 "
                f"module; it cannot run out of process"
            )
        namespace = module.__dict__
        _MODULES[source_path] = namespace
    return namespace


def run_task(
    module_name: str,
    source_path: str,
    params: tuple,
    task,
):
    """Execute one task payload inside a pool worker.

    The single entry point the parent submits; its return value (rows,
    partition structures or partial-aggregate dicts) is pickled back
    and merged by the parent's order-preserving finishers.
    """
    namespace = load_namespace(module_name, source_path)
    ctx = _WorkerContext(params)
    if isinstance(task, ScanTask):
        ctx.tables[task.binding] = PageSliceTable(
            task.page_lo, list(task.pages)
        )
        rows = namespace[task.func](ctx, task.page_lo, task.page_hi)
        if task.post_func is not None:
            rows = namespace[task.post_func](ctx, rows)
        return rows
    return namespace[task.func](ctx, *task.args)


def run_task_traced(
    module_name: str,
    source_path: str,
    params: tuple,
    task,
):
    """Like :func:`run_task`, wrapped with worker-side timing metadata.

    Returns ``(result, pid, thread_id, started, ended)``.  Timestamps
    are ``time.perf_counter()`` — CLOCK_MONOTONIC on the Linux targets,
    comparable across processes — so the parent can synthesize a task
    span on the same timeline as its own.  Submitted only when the
    parent is actively tracing; the untraced path stays pickle-minimal.
    """
    started = time.perf_counter()
    result = run_task(module_name, source_path, params, task)
    ended = time.perf_counter()
    return result, os.getpid(), threading.get_ident(), started, ended


def shipped_bytes(task) -> int:
    """Approximate payload size of a task's pure-data inputs.

    Used for the serialization-overhead note in ``ExecutionStats`` —
    cheap structural accounting (page bytes, row counts × header), not
    a re-pickle.
    """
    if isinstance(task, ScanTask):
        return sum(len(page) for page in task.pages)
    total = 0
    for arg in task.args:
        if isinstance(arg, (list, tuple)):
            total += 64 * len(arg)
        elif isinstance(arg, dict):
            total += 64 * sum(
                len(v) if isinstance(v, list) else 1 for v in arg.values()
            )
    return total


__all__ = [
    "CallTask",
    "PageSliceTable",
    "ScanTask",
    "load_namespace",
    "run_task",
    "run_task_traced",
    "shipped_bytes",
]
