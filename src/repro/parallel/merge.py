"""Order-preserving merge finishers for parallel staging and sorting.

Parallel staging produces one partial result per morsel — a sorted run,
a set of coarse partitions, or a fine (value-directory) partition map —
and the executor must reassemble them into *exactly* the structure the
serial staging function would have produced, because downstream
generated code (merge joins, sort aggregation, ORDER BY elision) relies
on that structure.

The key property: every run covers a contiguous page range, and runs
are merged in page (sequence) order.  A k-way merge that breaks key
ties toward the earlier run therefore reproduces a *stable* sort of the
full input — which is what the serial ``list.sort`` computes — and
bucket-wise concatenation in run order reproduces serial partition
contents row for row.
"""

from __future__ import annotations

import heapq
from operator import itemgetter
from typing import Any, Callable, Sequence


class Desc:
    """Inverts comparisons, so ascending merges handle DESC sort keys.

    Wrapping a key component in :class:`Desc` makes a smaller underlying
    value compare *greater*, which lets one ascending k-way merge honor
    per-key directions in ``ORDER BY x DESC, y`` keys.
    """

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "Desc") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Desc) and other.value == self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Desc({self.value!r})"


def run_key(positions: Sequence[int]) -> Callable:
    """Ascending key extractor over slot positions (staging sorts)."""
    return itemgetter(*positions)


def order_key(keys: Sequence[tuple[int, bool]]) -> Callable:
    """Mixed-direction key extractor for ORDER BY ``(position, asc)``."""
    if all(ascending for _, ascending in keys):
        return run_key([position for position, _ in keys])

    def key(row):
        return tuple(
            row[position] if ascending else Desc(row[position])
            for position, ascending in keys
        )

    return key


def kway_merge(runs: Sequence[list], key: Callable) -> list:
    """Merge sorted runs into one list, stable across run order.

    Heap entries are ``(key(row), run_index, row_index)``: equal keys
    fall back to the run index, so ties always drain the earlier run
    first — the property that makes the merge equivalent to one stable
    sort of the concatenated runs.  Empty runs are skipped; a single
    run is returned as-is.  (``heapq.merge`` behaves the same way on
    CPython, but its cross-iterable tie order is an implementation
    detail; the explicit tuple makes the stability this subsystem's
    byte-identical guarantee rests on hold by construction.)
    """
    live = [run for run in runs if run]
    if not live:
        return []
    if len(live) == 1:
        return live[0]
    heap = [(key(run[0]), index, 0) for index, run in enumerate(live)]
    heapq.heapify(heap)
    out: list = []
    append = out.append
    while heap:
        _, run_index, row_index = heap[0]
        run = live[run_index]
        append(run[row_index])
        row_index += 1
        if row_index < len(run):
            heapq.heapreplace(
                heap, (key(run[row_index]), run_index, row_index)
            )
        else:
            heapq.heappop(heap)
    return out


def merge_sorted_runs(
    runs: Sequence[list], positions: Sequence[int]
) -> list:
    """Finish PREP_SORT staging: merge per-morsel sorted runs."""
    return kway_merge(runs, run_key(positions))


def merge_ordered_runs(
    runs: Sequence[list], keys: Sequence[tuple[int, bool]]
) -> list:
    """Finish a parallel ORDER BY: merge mixed-direction sorted runs."""
    return kway_merge(runs, order_key(keys))


def merge_partition_runs(runs: Sequence[list]) -> list:
    """Finish coarse PREP_PARTITION staging: concat buckets in run order.

    The serial scan appends rows to buckets in page order, so
    bucket-wise concatenation over page-ordered runs is identical.
    Adopts the first run's lists (each run is owned by one morsel).
    """
    if not runs:
        return []
    merged = runs[0]
    for parts in runs[1:]:
        for bucket_id, bucket in enumerate(parts):
            merged[bucket_id].extend(bucket)
    return merged


def merge_fine_partition_runs(runs: Sequence[dict]) -> dict:
    """Finish fine PREP_PARTITION staging: merge value directories.

    Walking runs in page order inserts each key at its first global
    occurrence, reproducing the serial directory's insertion order and
    per-bucket row order exactly.
    """
    merged: dict[Any, list] = {}
    for parts in runs:
        for value, bucket in parts.items():
            existing = merged.get(value)
            if existing is None:
                merged[value] = bucket
            else:
                existing.extend(bucket)
    return merged


def merge_partition_sorted_runs(
    runs: Sequence[list], positions: Sequence[int]
) -> list:
    """Finish PREP_PARTITION_SORT staging: per-bucket k-way merges."""
    if not runs:
        return []
    key = run_key(positions)
    num_buckets = len(runs[0])
    return [
        kway_merge([parts[bucket_id] for parts in runs], key)
        for bucket_id in range(num_buckets)
    ]


def lower_bound(rows: list, position: int, value) -> int:
    """First index whose key at ``position`` is >= ``value``.

    Used to slice the inner side of a chunked merge join: each outer
    chunk only needs the inner rows from its first key onwards.
    """
    lo, hi = 0, len(rows)
    while lo < hi:
        mid = (lo + hi) // 2
        if rows[mid][position] < value:
            lo = mid + 1
        else:
            hi = mid
    return lo


def chunk_bounds(num_rows: int, chunk_size: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` row ranges covering ``num_rows``."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    return [
        (lo, min(lo + chunk_size, num_rows))
        for lo in range(0, num_rows, chunk_size)
    ]
