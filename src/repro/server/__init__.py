"""The TCP serving layer: an asyncio front-end over the query service.

The repo's first externally reachable surface.  A
:class:`QueryServer` multiplexes many client connections over one
:class:`~repro.service.QueryService` — per-connection prepared
statements, admission backpressure as typed ``over_capacity``
responses, per-query deadlines backed by the stall watchdog, and a
drain-style graceful shutdown.  See :mod:`repro.server.protocol` for
the newline-delimited JSON wire format and
:mod:`repro.server.client` for the async/blocking clients.
"""

from repro.server.client import (
    AsyncQueryClient,
    QueryClient,
    RemoteStatement,
)
from repro.server.server import (
    QueryServer,
    ServerHandle,
    ServerStats,
    serve_in_thread,
)

__all__ = [
    "AsyncQueryClient",
    "QueryClient",
    "QueryServer",
    "RemoteStatement",
    "ServerHandle",
    "ServerStats",
    "serve_in_thread",
]
