"""``python -m repro.server`` — serve a database over TCP.

Starts an empty database (or a generated TPC-H instance with
``--tpch``) and listens until interrupted; Ctrl-C drains in-flight
queries before exiting.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.api import Database
from repro.server.server import QueryServer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a repro database over newline-delimited "
        "JSON on TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7719)
    parser.add_argument(
        "--tpch",
        type=float,
        default=None,
        metavar="SF",
        help="load a TPC-H instance at this scale factor first",
    )
    parser.add_argument(
        "--query-timeout",
        type=float,
        default=None,
        help="per-query deadline in seconds (typed 'timeout' response)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="stall-watchdog bound for parallel tasks, in seconds",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=8,
        help="session pool size (concurrent queries)",
    )
    args = parser.parse_args(argv)

    db = Database(max_workers=args.max_workers)
    if args.tpch is not None:
        from repro.bench.tpch import generate_tpch

        print(f"loading TPC-H sf={args.tpch} ...", flush=True)
        generate_tpch(db.catalog, scale_factor=args.tpch)

    server = QueryServer(
        db,
        host=args.host,
        port=args.port,
        query_timeout=args.query_timeout,
        task_timeout=args.task_timeout,
    )

    async def run() -> None:
        host, port = await server.start()
        print(f"serving on {host}:{port} (Ctrl-C to drain and exit)",
              flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.shutdown()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("drained; bye")
    finally:
        db.close()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
