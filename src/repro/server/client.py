"""Clients for the query server: one async, one blocking.

:class:`AsyncQueryClient` is what the load harness uses — thousands of
instances share one event loop, each holding a connection with its own
prepared-statement handles.  :class:`QueryClient` wraps a plain socket
for shells, scripts and tests that want synchronous calls.

Both raise typed exceptions reconstructed from the server's error
codes (:func:`repro.server.protocol.exception_for`): a saturated pool
raises :class:`~repro.errors.AdmissionError`, a deadline expiry
:class:`~repro.errors.QueryTimeout`, a bad statement
:class:`~repro.errors.BindError`, and so on — the same taxonomy an
in-process caller sees from :class:`~repro.service.QueryService`.
"""

from __future__ import annotations

import asyncio
import socket
from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import ProtocolError, ServerError
from repro.server import protocol


@dataclass
class RemoteStatement:
    """A prepared handle living on the *server's* side of a connection."""

    stmt: int
    num_params: int
    columns: list[str]


def _check(response: dict[str, Any]) -> dict[str, Any]:
    """Raise the typed exception for an error response; pass ok ones."""
    if not isinstance(response, dict):
        raise ProtocolError("response is not a JSON object")
    if response.get("ok"):
        return response
    error = response.get("error") or {}
    raise protocol.exception_for(
        error.get("code", "internal"),
        error.get("message", "unknown server error"),
    )


class AsyncQueryClient:
    """One connection, asyncio flavor.  Use :meth:`connect` to build."""

    def __init__(self, reader, writer):
        self._reader = reader
        self._writer = writer
        self._next_id = 1
        #: One request/response exchange at a time per connection; the
        #: harness gets its concurrency from many connections, which is
        #: also what exercises the server's multiplexing.
        self._lock = asyncio.Lock()

    @classmethod
    async def connect(
        cls, host: str, port: int
    ) -> "AsyncQueryClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _request(self, frame: dict[str, Any]) -> dict[str, Any]:
        async with self._lock:
            frame = dict(frame)
            frame["id"] = self._next_id
            self._next_id += 1
            self._writer.write(protocol.encode(frame))
            await self._writer.drain()
            line = await self._reader.readline()
            if not line:
                raise ServerError("server closed the connection")
            return _check(protocol.decode(line))

    async def query(
        self,
        sql: str,
        params: Sequence[Any] | None = None,
        engine: str | None = None,
    ) -> list[tuple]:
        frame: dict[str, Any] = {"op": "query", "sql": sql}
        if params is not None:
            frame["params"] = list(params)
        if engine is not None:
            frame["engine"] = engine
        response = await self._request(frame)
        return protocol.rows_from_wire(response.get("rows", []))

    async def prepare(
        self, sql: str, engine: str | None = None
    ) -> RemoteStatement:
        frame: dict[str, Any] = {"op": "prepare", "sql": sql}
        if engine is not None:
            frame["engine"] = engine
        response = await self._request(frame)
        return RemoteStatement(
            stmt=response["stmt"],
            num_params=response.get("num_params", 0),
            columns=response.get("columns", []),
        )

    async def execute(
        self,
        statement: RemoteStatement | int,
        params: Sequence[Any] | None = None,
    ) -> list[tuple]:
        handle = (
            statement.stmt
            if isinstance(statement, RemoteStatement)
            else statement
        )
        frame: dict[str, Any] = {"op": "execute", "stmt": handle}
        if params is not None:
            frame["params"] = list(params)
        response = await self._request(frame)
        return protocol.rows_from_wire(response.get("rows", []))

    async def stats(self) -> dict[str, Any]:
        return await self._request({"op": "stats"})

    async def ping(self) -> bool:
        response = await self._request({"op": "ping"})
        return bool(response.get("pong"))

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass

    async def __aenter__(self) -> "AsyncQueryClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


class QueryClient:
    """One connection, blocking flavor (plain socket + file framing)."""

    def __init__(
        self, host: str, port: int, timeout: float | None = None
    ):
        self._sock = socket.create_connection(
            (host, port), timeout=timeout
        )
        self._file = self._sock.makefile("rb")
        self._next_id = 1

    def _request(self, frame: dict[str, Any]) -> dict[str, Any]:
        frame = dict(frame)
        frame["id"] = self._next_id
        self._next_id += 1
        self._sock.sendall(protocol.encode(frame))
        line = self._file.readline()
        if not line:
            raise ServerError("server closed the connection")
        return _check(protocol.decode(line))

    def query(
        self,
        sql: str,
        params: Sequence[Any] | None = None,
        engine: str | None = None,
    ) -> list[tuple]:
        frame: dict[str, Any] = {"op": "query", "sql": sql}
        if params is not None:
            frame["params"] = list(params)
        if engine is not None:
            frame["engine"] = engine
        response = self._request(frame)
        return protocol.rows_from_wire(response.get("rows", []))

    def prepare(
        self, sql: str, engine: str | None = None
    ) -> RemoteStatement:
        frame: dict[str, Any] = {"op": "prepare", "sql": sql}
        if engine is not None:
            frame["engine"] = engine
        response = self._request(frame)
        return RemoteStatement(
            stmt=response["stmt"],
            num_params=response.get("num_params", 0),
            columns=response.get("columns", []),
        )

    def execute(
        self,
        statement: RemoteStatement | int,
        params: Sequence[Any] | None = None,
    ) -> list[tuple]:
        handle = (
            statement.stmt
            if isinstance(statement, RemoteStatement)
            else statement
        )
        frame: dict[str, Any] = {"op": "execute", "stmt": handle}
        if params is not None:
            frame["params"] = list(params)
        response = self._request(frame)
        return protocol.rows_from_wire(response.get("rows", []))

    def stats(self) -> dict[str, Any]:
        return self._request({"op": "stats"})

    def ping(self) -> bool:
        return bool(self._request({"op": "ping"}).get("pong"))

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
