"""Wire protocol for the query server: newline-delimited JSON.

One frame per line, UTF-8 JSON, ``\\n`` terminated — trivially
debuggable (``nc`` + a text editor speak it) and cheap to parse, while
the one-object-per-line discipline still gives unambiguous framing
under pipelining.

Requests carry an ``op`` plus a client-chosen ``id`` that is echoed on
the response, so a client may pipeline several requests on one
connection and match answers by id::

    {"op": "query", "id": 1, "sql": "SELECT a FROM t WHERE a = ?",
     "params": [7]}

Responses are ``{"id": ..., "ok": true, ...}`` on success or
``{"id": ..., "ok": false, "error": {"code": ..., "message": ...}}``
on failure.  Error codes are *typed* — ``over_capacity`` maps the
service's admission backpressure, ``watchdog_timeout`` a stall-watchdog
abandonment, ``timeout`` the server's per-query deadline,
``shutting_down`` a drain in progress — so a load generator can tell
"back off and retry" from "your SQL is wrong" without string matching.

Parameter values travel as JSON numbers and strings; DATE parameters
are passed as day ordinals (integers), exactly as the storage layer
holds them.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import (
    AdmissionError,
    BindError,
    ConstraintError,
    ExecutionError,
    LexerError,
    ParseError,
    ProtocolError,
    QueryTimeout,
    ReproError,
    ServerError,
    ServiceError,
    UnsupportedSqlError,
    WatchdogTimeout,
)

#: Protocol operations a client may request.
OPS = (
    "query",  # one-shot execution through the service cache
    "prepare",  # compile one statement shape, returns a handle id
    "execute",  # run a prepared handle with a parameter vector
    "close_stmt",  # drop a prepared handle
    "stats",  # service + server counters
    "ping",  # liveness probe
)

#: Typed error codes, most specific first — the order matters because
#: the exception hierarchy nests (AdmissionError is a ServiceError).
_ERROR_CODES: tuple[tuple[type[BaseException], str], ...] = (
    (AdmissionError, "over_capacity"),
    (QueryTimeout, "timeout"),
    (WatchdogTimeout, "watchdog_timeout"),
    (ParseError, "parse"),
    (LexerError, "parse"),
    (UnsupportedSqlError, "unsupported"),
    (ConstraintError, "bad_request"),
    (BindError, "bind"),
    (ProtocolError, "bad_request"),
    (ServerError, "server"),
    (ServiceError, "service"),
    (ExecutionError, "execution"),
    (ReproError, "error"),
)

#: code → exception class a client raises for it (inverse of the
#: table above; duplicate codes resolve to the first entry).
_CODE_EXCEPTIONS: dict[str, type[BaseException]] = {}
for _exc_type, _code in _ERROR_CODES:
    _CODE_EXCEPTIONS.setdefault(_code, _exc_type)
# ``bad_request`` covers both malformed frames and DML constraint
# violations; clients re-raise it as the protocol-level class.
_CODE_EXCEPTIONS["bad_request"] = ProtocolError
_CODE_EXCEPTIONS["shutting_down"] = ServerError
_CODE_EXCEPTIONS["internal"] = ServerError


def error_code(exc: BaseException) -> str:
    """The typed wire code for an exception (``internal`` if unknown)."""
    for exc_type, code in _ERROR_CODES:
        if isinstance(exc, exc_type):
            return code
    return "internal"


def exception_for(code: str, message: str) -> BaseException:
    """The client-side exception a typed error response raises as."""
    return _CODE_EXCEPTIONS.get(code, ServerError)(message)


def encode(frame: dict[str, Any]) -> bytes:
    """One frame → one UTF-8 JSON line (compact separators)."""
    return (
        json.dumps(frame, separators=(",", ":"), ensure_ascii=False)
        + "\n"
    ).encode("utf-8")


def decode(line: bytes) -> dict[str, Any]:
    """One received line → frame dict, or :class:`ProtocolError`."""
    try:
        frame = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed frame: {exc}") from None
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    return frame


def ok_response(request_id: Any, **fields: Any) -> dict[str, Any]:
    return {"id": request_id, "ok": True, **fields}


def error_response(
    request_id: Any, code: str, message: str
) -> dict[str, Any]:
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }


def rows_to_wire(rows: list[tuple]) -> list[list[Any]]:
    """Result rows → JSON-encodable lists (tuples do not survive JSON)."""
    return [list(row) for row in rows]


def rows_from_wire(rows: list[list[Any]]) -> list[tuple]:
    """Decoded JSON rows → the tuples :meth:`Database.execute` returns.

    JSON round-trips ints, floats and strings exactly (floats via
    ``repr``-precision shortest form), so rows reconstructed here are
    byte-identical to a direct in-process execution.
    """
    return [tuple(row) for row in rows]
