"""The asyncio TCP front-end over :class:`~repro.service.QueryService`.

The paper's prepared-statement economics (compile once, execute with
fresh parameters) only pay off under sustained concurrent traffic, so
this module gives the repo its first externally reachable surface: an
asyncio server multiplexing thousands of client connections over the
service's bounded session pool.

Division of labor:

* the **event loop** owns connections, framing and response routing —
  it never executes a query itself;
* the **session pool** (``QueryService.submit``) runs the queries, with
  its existing admission control: a saturated pool surfaces to the
  client as a typed ``over_capacity`` response, not a dropped
  connection, so load generators can distinguish backpressure from
  failure and retry with backoff;
* the **stall watchdog** (PR 5's ``task_timeout``) keeps teeth inside
  an execution — a wedged parallel task aborts as
  :class:`~repro.errors.WatchdogTimeout` and reaches the client as a
  typed ``watchdog_timeout`` response — while the server's own
  ``query_timeout`` bounds whole-query wall time from the outside
  (``timeout`` response; a still-queued query is cancelled outright and
  releases its admission slot).

Shutdown is a *drain*: the listener closes first, in-flight queries run
to completion and deliver their responses (the service's ``close()``
honors admitted work for the same reason), and only then do
connections close.  Requests arriving mid-drain get a typed
``shutting_down`` response.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

from repro.errors import (
    ProtocolError,
    QueryTimeout,
    ReproError,
    ServerError,
)
from repro.server import protocol
from repro.service.statement import PreparedStatement

#: Maximum frame length (bytes) — bounds a hostile or broken client's
#: single line; generous for any SQL the grammar accepts.
MAX_FRAME_BYTES = 1 << 20


@dataclass
class ServerStats:
    """Point-in-time server counters (connections + request outcomes)."""

    connections_total: int
    connections_active: int
    requests: int
    queries_ok: int
    errors: int
    #: Typed backpressure responses (admission control, not failures).
    over_capacity: int
    #: Per-query deadline expiries (the server's ``query_timeout``).
    timeouts: int
    #: Stall-watchdog abandonments surfaced to clients.
    watchdog_timeouts: int
    draining: bool


class _Connection:
    """Per-connection state: identity, prepared handles, accounting."""

    __slots__ = (
        "id", "peer", "writer", "statements", "next_handle",
        "queries", "errors",
    )

    def __init__(self, conn_id: int, peer: str, writer=None):
        self.id = conn_id
        self.peer = peer
        self.writer = writer
        #: handle id → PreparedStatement; the per-connection reuse that
        #: makes repeated shapes skip all four preparation stages.
        self.statements: dict[int, PreparedStatement] = {}
        self.next_handle = 1
        self.queries = 0
        self.errors = 0


class QueryServer:
    """One database served over newline-delimited JSON on TCP.

    ``query_timeout`` bounds a single query's wall time (seconds;
    ``None`` waits forever).  ``task_timeout``, when given, is pushed
    into the database's parallel configuration at :meth:`start` so the
    stall watchdog backs the serving deadline with per-task teeth.
    """

    def __init__(
        self,
        database,
        host: str = "127.0.0.1",
        port: int = 0,
        default_engine: str | None = None,
        query_timeout: float | None = None,
        task_timeout: float | None = None,
        drain_timeout: float = 30.0,
    ):
        self.database = database
        self.service = database.service
        self.host = host
        self.port = port
        self.default_engine = default_engine
        self.query_timeout = query_timeout
        self.task_timeout = task_timeout
        self.drain_timeout = drain_timeout

        self.obs = getattr(database, "obs", None)
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._connections: dict[int, _Connection] = {}
        self._next_conn = 1
        self._draining = False
        #: Requests currently being served; drain waits for zero.
        self._active = 0
        self._all_idle: asyncio.Event | None = None
        #: Blocking preparation (compile on miss) runs here, never on
        #: the event loop; two workers keep one slow cold compile from
        #: stalling every other connection's prepare.
        self._aux = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-server-aux"
        )

        self._conn_total = 0
        self._requests = 0
        self._queries_ok = 0
        self._errors = 0
        self._over_capacity = 0
        self._timeouts = 0
        self._watchdog_timeouts = 0

        if self.obs is not None:
            self._latency = self.obs.registry.histogram(
                "repro_server_query_seconds"
            )
            self.obs.registry.register_collector(self._collect_metrics)
        else:
            self._latency = None

    # -- lifecycle ---------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the bound (host, port)."""
        if self._server is not None:
            raise ServerError("server already started")
        if self.task_timeout is not None:
            set_parallel = getattr(self.database, "set_parallel", None)
            if callable(set_parallel):
                set_parallel(task_timeout=self.task_timeout)
        self._loop = asyncio.get_running_loop()
        self._all_idle = asyncio.Event()
        self._all_idle.set()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_FRAME_BYTES,
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        with contextlib.suppress(asyncio.CancelledError):
            await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Graceful drain: stop listening, finish admitted queries,
        then close connections."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Every request already dispatched runs to completion and gets
        # its response; only then do the connections go away.
        if self._all_idle is not None and self._active:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    self._all_idle.wait(), timeout=self.drain_timeout
                )
        for conn_id in list(self._connections):
            conn = self._connections.get(conn_id)
            if conn is not None:
                conn.statements.clear()
                if conn.writer is not None:
                    # Wake handlers parked in readline(): closing the
                    # transport EOFs the reader and the loop exits.
                    with contextlib.suppress(Exception):
                        conn.writer.close()
        self._aux.shutdown(wait=False)
        if self.obs is not None:
            self.obs.registry.unregister_collector(self._collect_metrics)

    # -- connection handling ------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        conn = _Connection(self._next_conn, peer, writer)
        self._next_conn += 1
        self._conn_total += 1
        self._connections[conn.id] = conn
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    writer.write(protocol.encode(protocol.error_response(
                        None, "bad_request",
                        f"frame exceeds {MAX_FRAME_BYTES} bytes",
                    )))
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._serve_frame(conn, line)
                writer.write(protocol.encode(response))
                await writer.drain()
                if self._draining and self._active == 0:
                    # Drain finished while this response flushed; let
                    # the connection wind down.
                    break
        except (
            ConnectionResetError, BrokenPipeError, TimeoutError
        ):  # pragma: no cover - client went away mid-write
            pass
        finally:
            self._connections.pop(conn.id, None)
            conn.statements.clear()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _serve_frame(
        self, conn: _Connection, line: bytes
    ) -> dict[str, Any]:
        self._requests += 1
        request_id: Any = None
        self._active += 1
        assert self._all_idle is not None
        self._all_idle.clear()
        try:
            frame = protocol.decode(line)
            request_id = frame.get("id")
            op = frame.get("op")
            if op == "ping":
                return protocol.ok_response(request_id, pong=True)
            if op == "stats":
                return self._stats_response(conn, request_id)
            if self._draining:
                conn.errors += 1
                self._errors += 1
                return protocol.error_response(
                    request_id, "shutting_down",
                    "server is draining; no new queries accepted",
                )
            if op == "query":
                return await self._op_query(conn, request_id, frame)
            if op == "prepare":
                return await self._op_prepare(conn, request_id, frame)
            if op == "execute":
                return await self._op_execute(conn, request_id, frame)
            if op == "close_stmt":
                conn.statements.pop(frame.get("stmt"), None)
                return protocol.ok_response(request_id)
            raise ProtocolError(
                f"unknown op {op!r}; expected one of {protocol.OPS}"
            )
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # typed response, never a dropped line
            conn.errors += 1
            self._errors += 1
            code = protocol.error_code(exc)
            if code == "over_capacity":
                self._over_capacity += 1
            elif code == "timeout":
                self._timeouts += 1
            elif code == "watchdog_timeout":
                self._watchdog_timeouts += 1
            message = (
                str(exc)
                if isinstance(exc, ReproError)
                else f"{type(exc).__name__}: {exc}"
            )
            return protocol.error_response(request_id, code, message)
        finally:
            self._active -= 1
            if self._active == 0:
                self._all_idle.set()

    # -- operations ---------------------------------------------------------------
    def _params_of(self, frame: dict[str, Any]) -> tuple | None:
        params = frame.get("params")
        if params is None:
            return None
        if not isinstance(params, list):
            raise ProtocolError("params must be a JSON array or null")
        return tuple(params)

    def _engine_of(self, frame: dict[str, Any]) -> str | None:
        engine = frame.get("engine")
        if engine is not None and not isinstance(engine, str):
            raise ProtocolError("engine must be a string")
        return engine or self.default_engine

    def _sql_of(self, frame: dict[str, Any]) -> str:
        sql = frame.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise ProtocolError("sql must be a non-empty string")
        return sql

    async def _op_query(
        self, conn: _Connection, request_id: Any, frame: dict[str, Any]
    ) -> dict[str, Any]:
        sql = self._sql_of(frame)
        params = self._params_of(frame)
        engine = self._engine_of(frame)
        # submit() applies admission control synchronously: a saturated
        # pool raises here and becomes a typed over_capacity response.
        future = self.service.submit(sql, params=params, engine=engine)
        rows = await self._await_query(future)
        conn.queries += 1
        self._queries_ok += 1
        return protocol.ok_response(
            request_id, rows=protocol.rows_to_wire(rows)
        )

    async def _op_prepare(
        self, conn: _Connection, request_id: Any, frame: dict[str, Any]
    ) -> dict[str, Any]:
        sql = self._sql_of(frame)
        engine = self._engine_of(frame)
        assert self._loop is not None

        def build() -> tuple[PreparedStatement, list[str]]:
            statement = self.service.prepare(sql, engine=engine)
            return statement, statement.output_names

        # Preparation may compile a cold plan — blocking work that must
        # not stall the event loop (and with it every connection).
        statement, columns = await self._loop.run_in_executor(
            self._aux, build
        )
        handle = conn.next_handle
        conn.next_handle += 1
        conn.statements[handle] = statement
        return protocol.ok_response(
            request_id,
            stmt=handle,
            num_params=statement.num_params,
            columns=columns,
        )

    async def _op_execute(
        self, conn: _Connection, request_id: Any, frame: dict[str, Any]
    ) -> dict[str, Any]:
        handle = frame.get("stmt")
        statement = conn.statements.get(handle)
        if statement is None:
            raise ProtocolError(
                f"unknown statement handle {handle!r} on this connection"
            )
        params = self._params_of(frame)
        future = self.service.submit_statement(statement, params)
        rows = await self._await_query(future)
        conn.queries += 1
        self._queries_ok += 1
        return protocol.ok_response(
            request_id, rows=protocol.rows_to_wire(rows)
        )

    async def _await_query(self, future) -> list[tuple]:
        """Await a session future under the per-query deadline.

        On expiry the future is cancelled: a query still *queued* is
        withdrawn outright (releasing its admission slot); one already
        running completes in the background — where a genuinely wedged
        task is the stall watchdog's job to kill — while the client
        gets the typed ``timeout`` now.
        """
        started = time.perf_counter()
        wrapped = asyncio.wrap_future(future)
        try:
            rows = await asyncio.wait_for(wrapped, self.query_timeout)
        except (asyncio.TimeoutError, TimeoutError):
            future.cancel()
            raise QueryTimeout(
                f"query exceeded the server deadline of "
                f"{self.query_timeout}s"
            ) from None
        finally:
            if self._latency is not None:
                self._latency.observe(time.perf_counter() - started)
        return rows

    # -- introspection -------------------------------------------------------------
    def stats(self) -> ServerStats:
        return ServerStats(
            connections_total=self._conn_total,
            connections_active=len(self._connections),
            requests=self._requests,
            queries_ok=self._queries_ok,
            errors=self._errors,
            over_capacity=self._over_capacity,
            timeouts=self._timeouts,
            watchdog_timeouts=self._watchdog_timeouts,
            draining=self._draining,
        )

    def _stats_response(
        self, conn: _Connection, request_id: Any
    ) -> dict[str, Any]:
        server = self.stats()
        service = self.service.stats()
        return protocol.ok_response(
            request_id,
            server=server.__dict__.copy(),
            service={
                "queries": service.queries,
                "submitted": service.submitted,
                "completed": service.completed,
                "failed": service.failed,
                "rejected": service.rejected,
                "pending": service.pending,
                "executor": service.executor,
                "watchdog_abandonments": service.watchdog_abandonments,
                "cache_hits": service.cache.hits,
                "cache_misses": service.cache.misses,
            },
            connection={
                "id": conn.id,
                "queries": conn.queries,
                "errors": conn.errors,
                "statements": len(conn.statements),
            },
        )

    def _collect_metrics(self, registry) -> None:
        """Render-time sampler: server gauges next to the service's."""
        stats = self.stats()
        registry.sample(
            "repro_server_connections_total", stats.connections_total
        )
        registry.sample(
            "repro_server_connections_active", stats.connections_active
        )
        registry.sample("repro_server_requests_total", stats.requests)
        registry.sample("repro_server_queries_ok_total", stats.queries_ok)
        registry.sample("repro_server_errors_total", stats.errors)
        registry.sample(
            "repro_server_over_capacity_total", stats.over_capacity
        )
        registry.sample("repro_server_timeouts_total", stats.timeouts)
        registry.sample(
            "repro_server_watchdog_timeouts_total",
            stats.watchdog_timeouts,
        )
        # Per-connection attribution, bounded by the active set: which
        # session is hammering the service shows up in ``.metrics``.
        for conn in list(self._connections.values()):
            registry.sample(
                "repro_server_connection_queries",
                conn.queries,
                conn=str(conn.id),
                peer=conn.peer,
            )


class ServerHandle:
    """A :class:`QueryServer` running on a background event-loop thread.

    The synchronous face of the server, for shells, tests and scripts:
    ``address`` to connect, :meth:`stop` to drain and join.
    """

    def __init__(
        self,
        server: QueryServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ):
        self.server = server
        self._loop = loop
        self._thread = thread
        self._stopped = False

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def stats(self) -> ServerStats:
        return self.server.stats()

    def stop(self, timeout: float | None = None) -> None:
        """Drain the server and stop its event-loop thread."""
        if self._stopped:
            return
        self._stopped = True
        drain = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self._loop
        )
        drain.result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_thread(
    database,
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs: Any,
) -> ServerHandle:
    """Start a query server on a daemon event-loop thread.

    Returns once the socket is bound; the handle's ``address`` holds
    the OS-assigned port when ``port=0``.
    """
    server = QueryServer(database, host=host, port=port, **kwargs)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: list[BaseException] = []

    def run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # surface bind errors to the caller
            failure.append(exc)
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(
        target=run, name="repro-server", daemon=True
    )
    thread.start()
    started.wait()
    if failure:
        raise failure[0]
    return ServerHandle(server, loop, thread)
