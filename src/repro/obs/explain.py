"""EXPLAIN ANALYZE rendering: a physical plan annotated with a trace.

Mirrors :meth:`PhysicalPlan.explain`'s ``o{op_id}: Kind detail`` shape
and appends what the span tree recorded per operator — wall time, rows,
morsel task count, queue wait, worker pids — plus query-wide totals
(preparation stages, buffer-pool traffic, backend).  Works from a
finished :class:`~repro.obs.trace.Trace`, so it renders identically
whether the query ran serially, on the thread backend or on the
process backend.
"""

from __future__ import annotations

from repro.obs.trace import Span, Trace
from repro.plan.descriptors import (
    Aggregate,
    Join,
    Limit,
    MultiwayJoin,
    PhysicalPlan,
    Restage,
    ScanStage,
    Sort,
)


def _ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.3f}ms"


def _operator_detail(operator) -> str:
    if isinstance(operator, ScanStage):
        return (
            f" {operator.binding} prep={operator.prep.kind}"
            f" filters={len(operator.filters)}"
        )
    if isinstance(operator, Join):
        return (
            f" {operator.algorithm} ({operator.left_op} ⋈ "
            f"{operator.right_op})"
        )
    if isinstance(operator, MultiwayJoin):
        return f" {operator.algorithm} team{operator.input_ops}"
    if isinstance(operator, Aggregate):
        return f" {operator.algorithm} groups={operator.group_positions}"
    if isinstance(operator, Sort):
        return f" keys={operator.keys}"
    if isinstance(operator, Restage):
        return f" prep={operator.prep.kind} of {operator.input_op}"
    if isinstance(operator, Limit):
        return f" {operator.count}"
    return ""


def _node_spans(root: Span) -> dict[int, tuple[Span, bool]]:
    """op_id → (node span, primary?) over the whole span tree.

    A scheduler node may fuse several operators (``stage+join``); its
    span lists every covered id in ``op_ids``.  The *last* id is the
    node's output operator, where per-node annotations attach; the
    other ids render as fused references.
    """
    by_op: dict[int, tuple[Span, bool]] = {}
    for span in root.walk():
        if span.category != "node":
            continue
        raw = span.attrs.get("op_ids")
        if not raw:
            continue
        ids = [int(piece) for piece in str(raw).split(",") if piece]
        for op_id in ids:
            by_op[op_id] = (span, op_id == ids[-1])
    return by_op


def _task_stats(node: Span) -> tuple[int, float, list[int]]:
    """(task count, total queue wait, distinct worker pids) of a node."""
    tasks = 0
    queue_seconds = 0.0
    pids: set[int] = set()
    for child in node.children:
        if child.category != "task":
            continue
        tasks += 1
        queue_seconds += float(child.attrs.get("queue_seconds", 0.0))
        pids.add(child.pid)
    return tasks, queue_seconds, sorted(pids)


def _annotate(span: Span) -> str:
    parts = [f"time={_ms(span.duration)}"]
    rows = span.attrs.get("rows")
    if rows is not None:
        parts.append(f"rows={rows}")
    tasks, queue_seconds, pids = _task_stats(span)
    if tasks:
        parts.append(f"tasks={tasks}")
        parts.append(f"queue={_ms(queue_seconds)}")
        workers = span.attrs.get("workers")
        if workers:
            parts.append(f"workers={workers}")
        backend = span.attrs.get("backend")
        if backend:
            parts.append(f"backend={backend}")
        if len(pids) > 1 or (pids and pids[0] != span.pid):
            parts.append("pids=" + ",".join(str(p) for p in pids))
    placement = span.attrs.get("placement")
    if placement:
        flag = f"placement={placement}"
        reason = span.attrs.get("placement_reason", "")
        if reason:
            flag += f"[{reason}]"
        parts.append(flag)
    steals = span.attrs.get("affinity_steals")
    if steals is not None:
        parts.append(f"steals={steals}")
    shipped = span.attrs.get("shipped_bytes")
    if shipped:
        parts.append(f"shipped={shipped}B")
    if span.pages_hit or span.pages_missed:
        parts.append(
            f"pages={span.pages_hit}hit/{span.pages_missed}miss"
            f" ({_hit_rate(span.pages_hit, span.pages_missed)} hit)"
        )
    if span.attrs.get("staging_cached"):
        parts.append("staging: reused cached intermediate")
    if span.attrs.get("serial"):
        reason = span.attrs.get("serial_reason", "")
        flag = "serial-fallback"
        if reason:
            flag += f"[{reason}]"
        parts.append(flag)
    return "  (" + " ".join(parts) + ")"


def _hit_rate(hits: int, misses: int) -> str:
    total = hits + misses
    if not total:
        return "-%"
    return f"{hits * 100.0 / total:.0f}%"


def _page_totals(root: Span) -> tuple[int, int]:
    hits = misses = 0
    for span in root.walk():
        hits += span.pages_hit
        misses += span.pages_missed
    return hits, misses


def render_explain_analyze(plan: PhysicalPlan, trace: Trace) -> str:
    """The plan annotated with the trace's per-operator measurements."""
    root = trace.root
    execute = root.find("execute") or root
    prepare = root.find("prepare")
    by_op = _node_spans(root)

    lines: list[str] = []
    engine = execute.attrs.get("engine", "")
    header = "EXPLAIN ANALYZE"
    if engine:
        header += f" (engine={engine})"
    lines.append(header)

    for operator in plan.operators:
        kind = type(operator).__name__
        line = f"o{operator.op_id}: {kind}{_operator_detail(operator)}"
        found = by_op.get(operator.op_id)
        if found is not None:
            span, primary = found
            if primary:
                line += _annotate(span)
            else:
                last = str(span.attrs.get("op_ids", "")).split(",")[-1]
                line += f"  (fused into o{last})"
        lines.append(line)

    total = execute.duration
    summary = [f"execution: {_ms(total)}"]
    if execute.attrs.get("parallel") is False:
        summary.append("serial")
    rows = execute.attrs.get("rows")
    if rows is not None:
        summary.append(f"rows={rows}")
    hits, misses = _page_totals(root)
    if hits or misses:
        summary.append(
            f"buffer={hits}hit/{misses}miss "
            f"({_hit_rate(hits, misses)} hit)"
        )
    lines.append("")
    lines.append("; ".join(summary))

    if prepare is not None:
        stages = []
        for stage in ("parse", "optimize", "generate", "compile"):
            stage_span = prepare.find(stage)
            if stage_span is not None:
                stages.append(f"{stage}={_ms(stage_span.duration)}")
        line = f"preparation: {_ms(prepare.duration)}"
        if stages:
            line += " (" + " ".join(stages) + ")"
        lines.append(line)
    cache_hit = _cache_hit(root)
    if cache_hit is not None:
        lines.append(f"plan cache: {'hit' if cache_hit else 'miss'}")
    return "\n".join(lines)


def _cache_hit(root: Span) -> bool | None:
    for span in root.walk():
        if "cache_hit" in span.attrs:
            return bool(span.attrs["cache_hit"])
    return None
