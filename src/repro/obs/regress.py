"""Perf-regression reporting over ``BENCH_*.json`` run histories.

Every benchmark artifact written through
:func:`benchmarks.conftest.save_bench_json` carries a bounded
``history`` list of previous runs.  This module turns that trajectory
into a comparative report and a CI gate: for each **gated** metric the
current value is compared against the *median* of its history (median,
not last-run, so one noisy CI box does not whipsaw the gate), and a
shortfall beyond the threshold fails the build.

Usage (CI wires this as a step)::

    python -m repro.obs.regress --results-dir benchmarks/results \
        --threshold 0.25 --fail-on-regression \
        --report benchmarks/results/regression_report.txt

First runs pass trivially: a metric with fewer than ``--min-history``
prior samples is reported as ``baseline`` and never gates.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
from dataclasses import dataclass

from repro.bench.reporting import render_table

__all__ = [
    "DEFAULT_THRESHOLD",
    "GATED_METRICS",
    "MetricCheck",
    "check_results_dir",
    "main",
    "render_report",
]

DEFAULT_THRESHOLD = 0.25
DEFAULT_MIN_HISTORY = 2

#: artifact file → ((metric key, higher_is_better, gated), ...).
#: Gated metrics fail CI on regression; ungated ones are informational
#: (overhead ratios hover near zero, where relative thresholds are
#: meaningless noise).
GATED_METRICS: dict[str, tuple[tuple[str, bool, bool], ...]] = {
    "BENCH_parallel.json": (
        ("inter_query_speedup", True, True),
        ("intra_query_speedup", True, True),
    ),
    "BENCH_parallel_join.json": (("speedup", True, True),),
    "BENCH_multiproc.json": (("speedup", True, True),),
    "BENCH_pipeline.json": (("speedup", True, True),),
    "BENCH_observability.json": (
        ("disabled_overhead", False, False),
        ("insights_overhead", False, False),
    ),
    "BENCH_scheduler.json": (("mixed_speedup", True, True),),
    "BENCH_server.json": (
        ("qps", True, True),
        ("p99_ms", False, True),
    ),
    "BENCH_write_cache.json": (("staging_speedup", True, True),),
}


@dataclass
class MetricCheck:
    """One metric's current value against its history."""

    artifact: str
    metric: str
    higher_is_better: bool
    gated: bool
    current: float | None
    median: float | None
    samples: int
    #: Signed relative change vs the median, oriented so that a
    #: *negative* value is always a regression (speedup fell, or an
    #: overhead grew).
    change: float | None

    @property
    def regressed(self) -> bool:
        return (
            self.gated
            and self.change is not None
            and self.change < -DEFAULT_THRESHOLD
        )

    def regressed_beyond(self, threshold: float) -> bool:
        return (
            self.gated
            and self.change is not None
            and self.change < -threshold
        )

    @property
    def status(self) -> str:
        if self.current is None:
            return "missing"
        if self.change is None:
            return "baseline"
        return "ok"


def _comparable_host(entry: dict, current_host) -> bool:
    """Whether a history entry's host can be compared with this run's.

    Parallel speedups scale with core count, so comparing a run from a
    2-core box against an 8-core median manufactures regressions (or
    hides real ones).  An entry only gates when its recorded
    ``host.cpu_count`` matches the current run's; entries written
    before hosts were stamped (no ``host`` key) stay included, as does
    everything when the current run itself carries no fingerprint.
    """
    if not isinstance(current_host, dict):
        return True
    cpu_count = current_host.get("cpu_count")
    if cpu_count is None:
        return True
    host = entry.get("host")
    if not isinstance(host, dict):
        return True
    return host.get("cpu_count") in (None, cpu_count)


def _history_values(payload: dict, metric: str) -> list[float]:
    current_host = payload.get("host")
    values: list[float] = []
    for entry in payload.get("history", []):
        if not _comparable_host(entry, current_host):
            continue
        value = entry.get(metric)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            values.append(float(value))
    return values


def _relative_change(
    current: float, median: float, higher_is_better: bool
) -> float | None:
    """Signed change vs the median; negative always means "got worse"."""
    if median == 0:
        return None
    change = (current - median) / abs(median)
    return change if higher_is_better else -change


def check_results_dir(
    results_dir: str,
    min_history: int = DEFAULT_MIN_HISTORY,
) -> list[MetricCheck]:
    """Evaluate every known artifact under ``results_dir``."""
    checks: list[MetricCheck] = []
    for artifact, metrics in sorted(GATED_METRICS.items()):
        path = os.path.join(results_dir, artifact)
        payload: dict | None = None
        if os.path.exists(path):
            try:
                with open(path, encoding="utf-8") as handle:
                    loaded = json.load(handle)
                if isinstance(loaded, dict):
                    payload = loaded
            except (OSError, json.JSONDecodeError):
                payload = None
        for metric, higher, gated in metrics:
            if payload is None:
                checks.append(
                    MetricCheck(
                        artifact, metric, higher, gated,
                        current=None, median=None, samples=0, change=None,
                    )
                )
                continue
            raw = payload.get(metric)
            current = (
                float(raw)
                if isinstance(raw, (int, float))
                and not isinstance(raw, bool)
                else None
            )
            history = _history_values(payload, metric)
            median = (
                statistics.median(history)
                if len(history) >= min_history
                else None
            )
            change = (
                _relative_change(current, median, higher)
                if current is not None and median is not None
                else None
            )
            checks.append(
                MetricCheck(
                    artifact, metric, higher, gated,
                    current=current,
                    median=median,
                    samples=len(history),
                    change=change,
                )
            )
    return checks


def render_report(
    checks: list[MetricCheck], threshold: float = DEFAULT_THRESHOLD
) -> str:
    """Comparative table plus a verdict line (the CI artifact)."""
    rows = []
    for check in checks:
        verdict = check.status
        if check.change is not None:
            verdict = (
                "REGRESSED"
                if check.regressed_beyond(threshold)
                else "ok"
            )
        rows.append(
            (
                check.artifact.replace("BENCH_", "").replace(".json", ""),
                check.metric,
                "-" if check.current is None else f"{check.current:.4g}",
                "-" if check.median is None else f"{check.median:.4g}",
                check.samples,
                "-"
                if check.change is None
                else f"{check.change * 100:+.1f}%",
                "gate" if check.gated else "info",
                verdict,
            )
        )
    table = render_table(
        f"Perf regression report (median-of-history, "
        f"threshold {threshold * 100:.0f}%)",
        [
            "bench", "metric", "current", "median",
            "runs", "change", "mode", "verdict",
        ],
        rows,
        notes=[
            "change is oriented so negative always means worse; only "
            "'gate' rows can fail CI",
            "a metric needs history from at least "
            f"{DEFAULT_MIN_HISTORY} prior runs before it gates "
            "(first runs are baselines)",
        ],
    )
    regressed = [c for c in checks if c.regressed_beyond(threshold)]
    if regressed:
        names = ", ".join(f"{c.artifact}:{c.metric}" for c in regressed)
        return table + f"\nverdict: REGRESSED ({names})"
    return table + "\nverdict: ok"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description=(
            "Compare current BENCH_*.json metrics against the median "
            "of their run-over-run history."
        ),
    )
    parser.add_argument(
        "--results-dir",
        default=os.path.join("benchmarks", "results"),
        help="directory holding BENCH_*.json artifacts",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative regression that fails a gated metric "
        "(default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--min-history",
        type=int,
        default=DEFAULT_MIN_HISTORY,
        help="prior runs required before a metric gates",
    )
    parser.add_argument(
        "--report",
        default="",
        help="also write the report to this path",
    )
    parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 1 when any gated metric regressed beyond the "
        "threshold",
    )
    args = parser.parse_args(argv)

    checks = check_results_dir(
        args.results_dir, min_history=args.min_history
    )
    report = render_report(checks, threshold=args.threshold)
    print(report)
    if args.report:
        os.makedirs(
            os.path.dirname(os.path.abspath(args.report)), exist_ok=True
        )
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    regressed = [
        c for c in checks if c.regressed_beyond(args.threshold)
    ]
    if regressed and args.fail_on_regression:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
