"""Workload insights: query digests, slow-query log, folded profiles.

The pg_stat_statements analogue for this engine.  PR 6's tracer and
registry answer per-query questions; this module aggregates *across*
queries so operators can ask which normalized statements dominate
total time, which ones error or wedge, and what the slowest
executions actually did:

* :class:`DigestStore` — statements keyed by ``(engine kind, canonical
  SQL)``.  The canonical text comes from the service's literal
  parameterization (``sql/parameters.py``), so ``WHERE id = 1`` and
  ``WHERE id = 2`` land in one digest, exactly as they share one
  cached plan.  Bounded LRU; DDL resets it wholesale, mirroring the
  plan cache's blanket invalidation (digests describe plans that no
  longer exist).
* :class:`SlowQueryLog` — retains the *top-N slowest* executions over
  the ``REPRO_SLOW_MS`` threshold, keeping the full span tree when
  tracing recorded one, so a slow statement can be rendered
  EXPLAIN-ANALYZE-style after the fact.  Bounded: a 10k-query run
  holds at most ``keep`` traces.
* :class:`WorkloadInsights` — owns both plus a
  :class:`~repro.obs.profile.ProfileAggregator` fed by a tracer
  listener, surfaces everything through the registry's collector
  pattern, and renders the shell's ``.insights`` / ``.slow`` views.

The record path is deliberately allocation-light (one lock, one dict
hit, integer adds, one histogram observe) because it runs on *every*
query: the observability bench gates it below 3% on warm prepared
point queries.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.profile import ProfileAggregator
from repro.obs.trace import Trace, Tracer

__all__ = [
    "DEFAULT_SLOW_MS",
    "SLOW_MS_ENV",
    "Digest",
    "DigestStore",
    "SlowQueryEntry",
    "SlowQueryLog",
    "WorkloadInsights",
    "default_slow_threshold_seconds",
]

#: Environment knob: queries slower than this many milliseconds enter
#: the slow-query log (default :data:`DEFAULT_SLOW_MS`).
SLOW_MS_ENV = "REPRO_SLOW_MS"
DEFAULT_SLOW_MS = 100.0


def default_slow_threshold_seconds() -> float:
    raw = os.environ.get(SLOW_MS_ENV, "").strip()
    if raw:
        try:
            return max(0.0, float(raw)) / 1000.0
        except ValueError:
            pass
    return DEFAULT_SLOW_MS / 1000.0


#: Per-digest latency buckets: the registry's 1 µs – 10 s ladder.
def _digest_id(engine_kind: str, key: str) -> str:
    return hashlib.blake2b(
        f"{engine_kind}\x00{key}".encode("utf-8"), digest_size=6
    ).hexdigest()


class Digest:
    """Aggregated execution statistics for one normalized statement."""

    __slots__ = (
        "engine_kind",
        "key",
        "digest_id",
        "calls",
        "errors",
        "watchdog_timeouts",
        "rows",
        "total_seconds",
        "min_seconds",
        "max_seconds",
        "cache_hits",
        "cache_lookups",
        "pages_hit",
        "pages_missed",
        "backend",
        "backends",
        "tables",
        "first_seen",
        "last_seen",
        "_hist",
    )

    def __init__(self, engine_kind: str, key: str):
        self.engine_kind = engine_kind
        self.key = key
        self.digest_id = _digest_id(engine_kind, key)
        #: Lowercased table names the statement touches; lets DML
        #: invalidation reset only the digests it actually staled.
        self.tables: tuple[str, ...] = ()
        self.calls = 0
        self.errors = 0
        self.watchdog_timeouts = 0
        self.rows = 0
        self.total_seconds = 0.0
        self.min_seconds = float("inf")
        self.max_seconds = 0.0
        #: Plan-cache accounting is split into lookups and hits because
        #: not every call consults the cache (interpreting engines'
        #: execute path does, but errors may abort before the lookup).
        self.cache_hits = 0
        self.cache_lookups = 0
        self.pages_hit = 0
        self.pages_missed = 0
        self.backend = ""
        #: Per-backend latency split: backend → ``[calls, seconds]``.
        #: Under adaptive placement one digest mixes ``thread``,
        #: ``process`` and ``mixed`` executions; this records how many
        #: calls (and how much time) each backend actually took.
        self.backends: dict[str, list] = {}
        self.first_seen = time.time()
        self.last_seen = self.first_seen
        self._hist = Histogram("digest_seconds", ())

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0

    @property
    def p95_seconds(self) -> float:
        return self._hist.percentile(0.95)

    @property
    def cache_hit_rate(self) -> float:
        if not self.cache_lookups:
            return 0.0
        return self.cache_hits / self.cache_lookups

    def backend_split(self) -> str:
        """Compact per-backend call split, e.g. ``"t8/p2/m3"``.

        One abbreviated ``<initial><calls>`` term per backend seen, in
        thread → process → mixed order; a digest whose calls all ran on
        one backend renders that backend's plain name.
        """
        if not self.backends:
            return self.backend or "-"
        if len(self.backends) == 1:
            return next(iter(self.backends))
        order = ("thread", "process", "mixed")
        parts = [
            f"{name[0]}{self.backends[name][0]}"
            for name in order
            if name in self.backends
        ]
        parts.extend(
            f"{name[0]}{counts[0]}"
            for name, counts in sorted(self.backends.items())
            if name not in order
        )
        return "/".join(parts)

    def to_dict(self) -> dict[str, Any]:
        return {
            "digest": self.digest_id,
            "engine": self.engine_kind,
            "statement": self.key,
            "calls": self.calls,
            "errors": self.errors,
            "watchdog_timeouts": self.watchdog_timeouts,
            "rows": self.rows,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "p95_seconds": self.p95_seconds,
            "min_seconds": (
                0.0 if self.min_seconds == float("inf") else self.min_seconds
            ),
            "max_seconds": self.max_seconds,
            "cache_hits": self.cache_hits,
            "cache_lookups": self.cache_lookups,
            "pages_hit": self.pages_hit,
            "pages_missed": self.pages_missed,
            "backend": self.backend,
            "backends": {
                name: {"calls": counts[0], "seconds": counts[1]}
                for name, counts in self.backends.items()
            },
            "tables": list(self.tables),
        }


class DigestStore:
    """Bounded LRU of :class:`Digest` entries, keyed by canonical SQL."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("digest store capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._digests: "OrderedDict[tuple[str, str], Digest]" = OrderedDict()
        self.evictions = 0
        self.resets = 0
        #: Fine-grained (single-table) resets, counted separately so
        #: the wholesale counter keeps meaning "DDL happened".
        self.scoped_resets = 0
        #: Calls recorded since construction — survives resets, so the
        #: hammer tests can reconcile totals across DDL.
        self.recorded = 0

    def record(
        self,
        engine_kind: str,
        key: str,
        seconds: float,
        rows: int = 0,
        error: bool = False,
        watchdog: bool = False,
        cache_hit: bool | None = None,
        pages_hit: int = 0,
        pages_missed: int = 0,
        backend: str = "",
        tables: tuple[str, ...] = (),
    ) -> Digest:
        """Fold one execution into the statement's digest (hot path)."""
        store_key = (engine_kind, key)
        with self._lock:
            digest = self._digests.get(store_key)
            if digest is None:
                digest = Digest(engine_kind, key)
                if tables:
                    digest.tables = tables
                self._digests[store_key] = digest
                while len(self._digests) > self.capacity:
                    self._digests.popitem(last=False)
                    self.evictions += 1
            else:
                self._digests.move_to_end(store_key)
            self.recorded += 1
            digest.calls += 1
            digest.rows += rows
            digest.total_seconds += seconds
            if seconds < digest.min_seconds:
                digest.min_seconds = seconds
            if seconds > digest.max_seconds:
                digest.max_seconds = seconds
            if error:
                digest.errors += 1
            if watchdog:
                digest.watchdog_timeouts += 1
            if cache_hit is not None:
                digest.cache_lookups += 1
                if cache_hit:
                    digest.cache_hits += 1
            digest.pages_hit += pages_hit
            digest.pages_missed += pages_missed
            if backend:
                digest.backend = backend
                split = digest.backends.get(backend)
                if split is None:
                    digest.backends[backend] = [1, seconds]
                else:
                    split[0] += 1
                    split[1] += seconds
            digest.last_seen = time.time()
        digest._hist.observe(seconds)
        return digest

    def get(self, engine_kind: str, key: str) -> Digest | None:
        with self._lock:
            return self._digests.get((engine_kind, key))

    def top(self, limit: int = 10) -> list[Digest]:
        """Digests ranked by total time, heaviest first."""
        with self._lock:
            digests = list(self._digests.values())
        digests.sort(key=lambda d: d.total_seconds, reverse=True)
        return digests[:limit]

    def __len__(self) -> int:
        with self._lock:
            return len(self._digests)

    def reset(self, table: str | None = None) -> None:
        """Drop stale digests after a catalogue change.

        With no ``table`` (DDL, ``analyze``): drop everything — schema
        offsets, algorithm choices and latencies may all differ
        afterwards, so keeping the old numbers under the same key would
        blend two different plans.  With a ``table`` (DML): drop only
        the digests whose recorded table set names it, mirroring the
        plan cache's fine-grained invalidation — statistics for
        statements over other tables describe plans that still stand.
        """
        with self._lock:
            if table is None:
                if self._digests:
                    self.resets += 1
                self._digests.clear()
                return
            doomed = [
                key
                for key, digest in self._digests.items()
                if table in digest.tables
            ]
            for key in doomed:
                del self._digests[key]
            if doomed:
                self.scoped_resets += 1


@dataclass
class SlowQueryEntry:
    """One retained slow execution (span tree kept when traced)."""

    seconds: float
    engine_kind: str
    key: str
    wall_time: float
    rows: int = 0
    error: str = ""
    trace: Trace | None = field(default=None, repr=False)


class SlowQueryLog:
    """Top-N slowest queries over a threshold, bounded memory.

    A min-heap on elapsed seconds keeps exactly the ``keep`` slowest
    entries seen so far; everything below the current floor is dropped
    in O(1), so a 10k-query run retains at most ``keep`` span trees.
    """

    def __init__(
        self, threshold_seconds: float | None = None, keep: int = 16
    ):
        if keep < 1:
            raise ValueError("slow-query log must keep at least one entry")
        self.threshold_seconds = (
            default_slow_threshold_seconds()
            if threshold_seconds is None
            else threshold_seconds
        )
        self.keep = keep
        self._lock = threading.Lock()
        #: (seconds, tiebreak, entry) — the counter keeps heapq from
        #: ever comparing two SlowQueryEntry objects.
        self._heap: list[tuple[float, int, SlowQueryEntry]] = []
        self._tiebreak = itertools.count()
        self.observed = 0

    def record(
        self,
        seconds: float,
        engine_kind: str,
        key: str,
        rows: int = 0,
        error: str = "",
        trace: Trace | None = None,
    ) -> bool:
        """Consider one execution; True when it was retained."""
        if seconds < self.threshold_seconds:
            return False
        with self._lock:
            self.observed += 1
            if len(self._heap) >= self.keep and seconds <= self._heap[0][0]:
                return False
            entry = SlowQueryEntry(
                seconds=seconds,
                engine_kind=engine_kind,
                key=key,
                wall_time=time.time(),
                rows=rows,
                error=error,
                trace=trace,
            )
            item = (seconds, next(self._tiebreak), entry)
            if len(self._heap) >= self.keep:
                heapq.heappushpop(self._heap, item)
            else:
                heapq.heappush(self._heap, item)
        return True

    def entries(self) -> list[SlowQueryEntry]:
        """Retained entries, slowest first."""
        with self._lock:
            items = list(self._heap)
        items.sort(key=lambda item: item[0], reverse=True)
        return [entry for _, _, entry in items]

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()

    def render_text(self, limit: int = 10) -> str:
        entries = self.entries()[:limit]
        header = (
            f"slow-query log: threshold "
            f"{self.threshold_seconds * 1000:.1f}ms "
            f"({SLOW_MS_ENV}), observed {self.observed}, "
            f"retained {len(self)} (keep {self.keep})"
        )
        if not entries:
            return header
        lines = [header]
        for rank, entry in enumerate(entries, start=1):
            spans = (
                sum(1 for _ in entry.trace.root.walk())
                if entry.trace is not None
                else 0
            )
            detail = f"rows={entry.rows}"
            if entry.error:
                detail = f"error={entry.error[:60]}"
            suffix = f" spans={spans}" if spans else ""
            lines.append(
                f"{rank:>3}. {entry.seconds * 1000:9.2f}ms "
                f"[{entry.engine_kind}] {detail}{suffix}  {entry.key[:90]}"
            )
        return "\n".join(lines)


class WorkloadInsights:
    """Digests + slow log + folded profiles behind one switch.

    Owned by a :class:`~repro.api.Database`; the service layer calls
    :meth:`record` on every execution.  Registers a tracer listener so
    any trace recorded anywhere (``.trace on``, ``EXPLAIN ANALYZE``,
    ``REPRO_TRACE=1``) feeds the operator profile, and a registry
    collector so the digest catalogue shows up in ``metrics_text()``.
    """

    #: Digests exported to the metrics registry per render (the full
    #: catalogue stays available through :meth:`digests.top`).
    METRICS_TOP = 20

    def __init__(
        self,
        obs,
        enabled: bool = True,
        digest_capacity: int = 256,
        slow_keep: int = 16,
        slow_threshold_seconds: float | None = None,
    ):
        self.obs = obs
        self.enabled = enabled
        self.digests = DigestStore(capacity=digest_capacity)
        self.slow = SlowQueryLog(
            threshold_seconds=slow_threshold_seconds, keep=slow_keep
        )
        self.profile = ProfileAggregator()
        #: Zero-arg callable yielding the owning database's
        #: intermediate-cache stats (wired by :class:`repro.api.Database`);
        #: None for bare harnesses without one.
        self.intermediates_source = None
        self._closed = False
        tracer: Tracer = obs.tracer
        tracer.add_trace_listener(self._on_trace)
        registry: MetricsRegistry = obs.registry
        registry.register_collector(self._collect)

    # -- recording -----------------------------------------------------------
    def record(
        self,
        engine_kind: str,
        key: str,
        seconds: float,
        rows: int = 0,
        error: BaseException | None = None,
        watchdog: bool = False,
        cache_hit: bool | None = None,
        pages_hit: int = 0,
        pages_missed: int = 0,
        backend: str = "",
        trace: Trace | None = None,
        tables: tuple[str, ...] = (),
    ) -> None:
        """Fold one service-layer execution into every store."""
        if not self.enabled:
            return
        self.digests.record(
            engine_kind,
            key,
            seconds,
            rows=rows,
            error=error is not None,
            watchdog=watchdog,
            cache_hit=cache_hit,
            pages_hit=pages_hit,
            pages_missed=pages_missed,
            backend=backend,
            tables=tables,
        )
        if seconds >= self.slow.threshold_seconds:
            self.slow.record(
                seconds,
                engine_kind,
                key,
                rows=rows,
                error=str(error) if error is not None else "",
                trace=trace,
            )

    def _on_trace(self, trace: Trace) -> None:
        if self.enabled:
            self.profile.add_trace(trace)

    def on_catalog_change(
        self, table: str | None = None, kind: str = "ddl"
    ) -> None:
        """A catalogue mutation happened: reset what it staled.

        Mirrors the plan cache: DML on a named table drops only that
        table's digests, DDL/``analyze`` resets wholesale.
        """
        if kind == "dml" and table is not None:
            self.digests.reset(table)
        else:
            self.digests.reset()

    def reset(self) -> None:
        self.digests.reset()
        self.slow.clear()
        self.profile.reset()

    # -- metrics -------------------------------------------------------------
    def _collect(self, registry: MetricsRegistry) -> None:
        registry.sample("repro_digest_store_size", len(self.digests))
        registry.sample(
            "repro_digest_store_capacity", self.digests.capacity
        )
        registry.sample(
            "repro_digest_store_evictions_total", self.digests.evictions
        )
        registry.sample(
            "repro_digest_store_resets_total", self.digests.resets
        )
        registry.sample(
            "repro_digest_store_recorded_total", self.digests.recorded
        )
        registry.sample("repro_slow_queries_total", self.slow.observed)
        registry.sample("repro_slow_queries_retained", len(self.slow))
        registry.sample(
            "repro_profile_traces_folded_total", self.profile.traces
        )
        for digest in self.digests.top(self.METRICS_TOP):
            labels = {
                "digest": digest.digest_id,
                "engine": digest.engine_kind,
                "statement": digest.key[:120],
            }
            registry.sample(
                "repro_digest_calls_total", digest.calls, **labels
            )
            registry.sample(
                "repro_digest_errors_total", digest.errors, **labels
            )
            registry.sample(
                "repro_digest_watchdog_timeouts_total",
                digest.watchdog_timeouts,
                **labels,
            )
            registry.sample(
                "repro_digest_seconds_total",
                digest.total_seconds,
                **labels,
            )
            registry.sample(
                "repro_digest_rows_total", digest.rows, **labels
            )

    # -- rendering -----------------------------------------------------------
    def render_text(
        self, top: int = 10, include_profile: bool = True
    ) -> str:
        """The ``.insights`` view: digest table + slow log + profile."""
        digests = self.digests.top(top)
        calls = sum(d.calls for d in digests)
        errors = sum(d.errors for d in digests)
        lines = [
            f"workload insights: {len(self.digests)} statement(s), "
            f"{self.digests.recorded} call(s) recorded "
            f"(capacity {self.digests.capacity}, "
            f"evictions {self.digests.evictions}, "
            f"resets {self.digests.resets})"
        ]
        if not digests:
            lines.append("(no executions recorded yet)")
        else:
            lines.append(
                f"top {len(digests)}: {calls} call(s), {errors} error(s)"
            )
            lines.append(
                f"{'digest':<12} {'engine':<10} {'calls':>6} {'err':>4} "
                f"{'wdg':>4} {'mean ms':>9} {'p95 ms':>9} {'rows':>9} "
                f"{'hit%':>5} {'backend':<8} statement"
            )
            for digest in digests:
                hit_rate = (
                    f"{digest.cache_hit_rate * 100:.0f}"
                    if digest.cache_lookups
                    else "-"
                )
                lines.append(
                    f"{digest.digest_id:<12} {digest.engine_kind:<10} "
                    f"{digest.calls:>6} {digest.errors:>4} "
                    f"{digest.watchdog_timeouts:>4} "
                    f"{digest.mean_seconds * 1000:>9.3f} "
                    f"{digest.p95_seconds * 1000:>9.3f} "
                    f"{digest.rows:>9} {hit_rate:>5} "
                    f"{digest.backend_split():<8} {digest.key[:70]}"
                )
        inter = self._intermediate_stats()
        if inter is not None:
            lines.append(
                f"intermediate cache: {inter.entries} entr(ies), "
                f"{inter.bytes / 1024:.0f} KiB of "
                f"{inter.capacity_bytes / 1024:.0f} KiB, "
                f"{inter.hits} hit(s) / {inter.misses} miss(es) "
                f"({inter.hit_rate * 100:.0f}%), "
                f"{inter.evictions} eviction(s), "
                f"{inter.invalidations} invalidation(s)"
            )
        lines.append("")
        lines.append(self.slow.render_text(limit=min(top, 10)))
        if include_profile and self.profile.traces:
            lines.append("")
            lines.append(self.profile.render_text())
        return "\n".join(lines)

    def _intermediate_stats(self):
        source = self.intermediates_source
        if source is None:
            return None
        try:
            return source()
        except Exception:  # noqa: BLE001 - stats are advisory
            return None

    # -- introspection / lifecycle ------------------------------------------
    def snapshot(self, top: int = 10) -> dict[str, Any]:
        """JSON-friendly summary (drives tests and tooling)."""
        result = {
            "statements": len(self.digests),
            "recorded": self.digests.recorded,
            "evictions": self.digests.evictions,
            "resets": self.digests.resets,
            "scoped_resets": self.digests.scoped_resets,
            "digests": [d.to_dict() for d in self.digests.top(top)],
            "slow": {
                "threshold_seconds": self.slow.threshold_seconds,
                "observed": self.slow.observed,
                "retained": len(self.slow),
            },
            "profile_traces": self.profile.traces,
        }
        inter = self._intermediate_stats()
        if inter is not None:
            result["intermediate_cache"] = {
                "entries": inter.entries,
                "bytes": inter.bytes,
                "capacity_bytes": inter.capacity_bytes,
                "hits": inter.hits,
                "misses": inter.misses,
                "evictions": inter.evictions,
                "invalidations": inter.invalidations,
            }
        return result

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.obs.tracer.remove_trace_listener(self._on_trace)
        self.obs.registry.unregister_collector(self._collect)
