"""Low-overhead span tracing for one query's execution tree.

A :class:`Tracer` records a :class:`Trace` — a tree of :class:`Span`
objects — per query: parse → bind → plan → codegen → each scheduler
node (stage / join pair / aggregate / sort / merge) down to individual
morsel tasks, stamped with monotonic timestamps, worker thread/process
ids, queue-wait vs run time, rows and bytes.

Overhead discipline (tracing is *off* by default):

* The hot gate is a module-level integer, ``_ENABLED_TRACERS``.  When
  zero, :func:`current_span` and the buffer-pool hook return after one
  global read and one ``ContextVar.get`` — no allocation, no locking.
* Span propagation uses a :class:`contextvars.ContextVar`.  Worker
  threads start from an *empty* context (the executor snapshots no
  parent state), so backends re-activate the parent span explicitly
  via :meth:`Tracer.activate` / the span's own context manager.
* Child spans are appended with ``list.append`` — atomic under the
  GIL — so sibling tasks on different threads never take a lock.

Timestamps are ``time.perf_counter()`` (CLOCK_MONOTONIC on Linux),
which is comparable *across processes* on the platforms we target, so
process-backend task spans land on the same timeline as the
coordinator's.  Exports: plain JSON (span tree) and Chrome
``trace_event`` JSON loadable in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator

__all__ = [
    "Span",
    "Trace",
    "Tracer",
    "current_span",
    "maybe_span",
    "record_page_access",
    "suppress_overhead_probe",
]

#: Number of enabled tracers in the process.  The single-read fast gate:
#: when zero, every hook in the hot path returns immediately.
_ENABLED_TRACERS = 0

#: The active span for the current logical context (task/thread).
_ACTIVE: ContextVar["Span | None"] = ContextVar("repro_active_span", default=None)

#: When set, instrumentation behaves as if the module were absent —
#: used by the overhead benchmark to measure the cost of the disabled
#: hooks themselves against a no-hook control.
_SUPPRESSED = False

_span_ids = itertools.count(1)


def current_span() -> "Span | None":
    """The span the calling context should attach children to.

    Near-free when no tracer is enabled: one global int read.
    """
    if not _ENABLED_TRACERS or _SUPPRESSED:
        return None
    return _ACTIVE.get()


@contextmanager
def maybe_span(name: str, category: str = "", **attrs: Any) -> Iterator["Span | None"]:
    """Open a child of the current span, or do nothing if untraced."""
    parent = current_span()
    if parent is None:
        yield None
        return
    span = parent.child(name, category, **attrs)
    token = _ACTIVE.set(span)
    try:
        yield span
    finally:
        _ACTIVE.reset(token)
        span.finish()


def record_page_access(hit: bool) -> None:
    """Attribute one buffer-pool access to the active span (if any).

    Called by the buffer manager on every page touch; must be near-free
    when tracing is off, and lock-free when on (int adds on the span
    are GIL-atomic; a rare lost update under thread races costs one
    count, never a crash).
    """
    if not _ENABLED_TRACERS or _SUPPRESSED:
        return
    span = _ACTIVE.get()
    if span is None:
        return
    if hit:
        span.pages_hit += 1
    else:
        span.pages_missed += 1


@contextmanager
def suppress_overhead_probe() -> Iterator[None]:
    """Disable even the cheap disabled-path hooks (benchmark control).

    The observability bench compares instrumented-but-disabled against
    this mode to bound the overhead the hooks add to a build that never
    traces.
    """
    global _SUPPRESSED
    previous = _SUPPRESSED
    _SUPPRESSED = True
    try:
        yield
    finally:
        _SUPPRESSED = previous


class Span:
    """One timed node of a query's trace tree."""

    __slots__ = (
        "span_id",
        "name",
        "category",
        "start",
        "end",
        "thread_id",
        "pid",
        "attrs",
        "children",
        "trace",
        "pages_hit",
        "pages_missed",
    )

    def __init__(
        self,
        trace: "Trace",
        name: str,
        category: str = "",
        start: float | None = None,
        end: float | None = None,
        thread_id: int | None = None,
        pid: int | None = None,
        **attrs: Any,
    ):
        self.span_id = next(_span_ids)
        self.trace = trace
        self.name = name
        self.category = category
        self.start = time.perf_counter() if start is None else start
        self.end = end
        self.thread_id = threading.get_ident() if thread_id is None else thread_id
        self.pid = os.getpid() if pid is None else pid
        self.attrs: dict[str, Any] = attrs
        self.children: list[Span] = []
        self.pages_hit = 0
        self.pages_missed = 0

    # -- structure -----------------------------------------------------------
    def child(
        self,
        name: str,
        category: str = "",
        start: float | None = None,
        end: float | None = None,
        thread_id: int | None = None,
        pid: int | None = None,
        **attrs: Any,
    ) -> "Span":
        """Create (and attach) a child span.

        ``list.append`` is GIL-atomic, so concurrent worker threads can
        attach siblings to one parent without a lock.  The trace's span
        budget bounds memory on degenerate queries.
        """
        trace = self.trace
        if not trace.admit():
            return _DROPPED_SPAN_FACTORY(trace, name)
        span = Span(
            trace,
            name,
            category,
            start=start,
            end=end,
            thread_id=thread_id,
            pid=pid,
            **attrs,
        )
        self.children.append(span)
        return span

    def finish(self, end: float | None = None) -> None:
        if self.end is None:
            self.end = time.perf_counter() if end is None else end

    @contextmanager
    def activate(self) -> Iterator["Span"]:
        """Make this span the active parent for the calling context.

        Used by worker threads (which start from an empty context) to
        re-establish the scheduling node's span before running a task.
        """
        token = _ACTIVE.set(self)
        try:
            yield self
        finally:
            _ACTIVE.reset(token)

    # -- data ----------------------------------------------------------------
    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def bump(self, key: str, amount: float = 1) -> None:
        """Accumulate a numeric attribute (rows, bytes, tasks...)."""
        self.attrs[key] = self.attrs.get(key, 0) + amount

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str | None = None, category: str | None = None) -> list["Span"]:
        out = []
        for span in self.walk():
            if name is not None and span.name != name:
                continue
            if category is not None and span.category != category:
                continue
            out.append(span)
        return out

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "span_id": self.span_id,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "thread_id": self.thread_id,
            "pid": self.pid,
        }
        if self.pages_hit or self.pages_missed:
            data["pages_hit"] = self.pages_hit
            data["pages_missed"] = self.pages_missed
        if self.attrs:
            data["attrs"] = dict(self.attrs)
        if self.children:
            data["children"] = [c.to_dict() for c in self.children]
        return data

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, cat={self.category!r}, "
            f"dur={self.duration * 1000:.3f}ms, "
            f"children={len(self.children)})"
        )


def _DROPPED_SPAN_FACTORY(trace: "Trace", name: str) -> "Span":
    # Budget exhausted: hand back a detached span so callers still work,
    # but nothing further is recorded in the tree.
    return Span(trace, name, category="dropped")


class Trace:
    """The span tree recorded for one query."""

    #: Span budget per trace — bounds memory on degenerate morsel counts.
    MAX_SPANS = 20000

    def __init__(self, name: str, **attrs: Any):
        #: Wall-clock anchor so monotonic stamps can be mapped to real time.
        self.wall_time = time.time()
        self._span_budget = self.MAX_SPANS
        self.dropped_spans = 0
        self.root = Span(self, name, category="query", **attrs)

    def admit(self) -> bool:
        # GIL-atomic enough: a slight overshoot under races is harmless.
        if self._span_budget <= 0:
            self.dropped_spans += 1
            return False
        self._span_budget -= 1
        return True

    def finish(self) -> None:
        self.root.finish()

    # -- export --------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "trace": self.root.name,
            "wall_time": self.wall_time,
            "dropped_spans": self.dropped_spans,
            "root": self.root.to_dict(),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True, default=str)

    def to_chrome_trace(self) -> str:
        """Chrome ``trace_event`` JSON — load in Perfetto or chrome://tracing.

        Complete events (``ph: "X"``) with microsecond timestamps
        relative to the trace root; ``pid``/``tid`` come from the span,
        so process-backend tasks appear on their worker process tracks.
        """
        origin = self.root.start
        events: list[dict[str, Any]] = []
        for span in self.root.walk():
            end = span.end if span.end is not None else span.start
            args: dict[str, Any] = {
                k: v for k, v in span.attrs.items()
                if isinstance(v, (int, float, str, bool))
            }
            if span.pages_hit or span.pages_missed:
                args["pages_hit"] = span.pages_hit
                args["pages_missed"] = span.pages_missed
            events.append(
                {
                    "name": span.name,
                    "cat": span.category or "span",
                    "ph": "X",
                    "ts": (span.start - origin) * 1e6,
                    "dur": max(0.0, (end - span.start) * 1e6),
                    "pid": span.pid,
                    "tid": span.thread_id,
                    "args": args,
                }
            )
        events.sort(key=lambda e: (e["ts"], -e["dur"]))
        payload = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "trace": self.root.name,
                "wall_time": self.wall_time,
            },
        }
        return json.dumps(payload, indent=None, sort_keys=True, default=str)


class Tracer:
    """Per-database span recorder.

    ``enabled`` gates everything: when off, :meth:`span` yields ``None``
    without touching the context var, and the module-level fast gate
    keeps hooks elsewhere near-free.  Finished root traces land in a
    bounded deque; :meth:`last_trace` returns the most recent.
    """

    MAX_TRACES = 16

    def __init__(self, enabled: bool = False):
        self._enabled = False
        self._lock = threading.Lock()
        self.traces: deque[Trace] = deque(maxlen=self.MAX_TRACES)
        #: Called with each finished root trace (workload profiling).
        #: Listener exceptions are swallowed and counted: observability
        #: must never fail the query it observed.
        self._listeners: list = []
        self.listener_errors = 0
        if enabled:
            self.enabled = True

    # -- trace listeners -----------------------------------------------------
    def add_trace_listener(self, listener) -> None:
        """Register a callable invoked with every finished root trace."""
        with self._lock:
            if listener not in self._listeners:
                self._listeners.append(listener)

    def remove_trace_listener(self, listener) -> None:
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    def _notify(self, trace: "Trace") -> None:
        with self._lock:
            listeners = list(self._listeners)
        for listener in listeners:
            try:
                listener(trace)
            except Exception:
                self.listener_errors += 1

    # -- enablement ----------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        global _ENABLED_TRACERS
        value = bool(value)
        with self._lock:
            if value == self._enabled:
                return
            self._enabled = value
            _ENABLED_TRACERS += 1 if value else -1

    @contextmanager
    def ensure_enabled(self) -> Iterator[None]:
        """Temporarily enable tracing (EXPLAIN ANALYZE path)."""
        was = self.enabled
        self.enabled = True
        try:
            yield
        finally:
            self.enabled = was

    # -- spans ---------------------------------------------------------------
    @contextmanager
    def span(self, name: str, category: str = "", **attrs: Any) -> Iterator[Span | None]:
        """Open a span: child of the active one, else a new root trace."""
        if not self._enabled or _SUPPRESSED:
            yield None
            return
        parent = _ACTIVE.get()
        if parent is not None:
            span = parent.child(name, category, **attrs)
            trace = None
        else:
            trace = Trace(name, **attrs)
            span = trace.root
            span.category = category or "query"
        token = _ACTIVE.set(span)
        try:
            yield span
        finally:
            _ACTIVE.reset(token)
            span.finish()
            if trace is not None:
                trace.finish()
                with self._lock:
                    self.traces.append(trace)
                self._notify(trace)

    def last_trace(self) -> Trace | None:
        with self._lock:
            return self.traces[-1] if self.traces else None

    def clear(self) -> None:
        with self._lock:
            self.traces.clear()
