"""Aggregated operator profiles: fold span trees across queries.

A single trace answers "where did *this* query spend its time"; the
:class:`ProfileAggregator` answers the workload-level question — where
do *all* queries spend staging vs join vs merge vs queue-wait — by
folding every finished span tree into two bounded structures:

* a **path tree** keyed by normalized span names (``ScanStage o1`` and
  ``ScanStage o7`` fold into one ``ScanStage`` node), each node
  carrying call count, inclusive/self seconds, rows, task counts,
  queue wait and buffer traffic — rendered as a text flamegraph;
* **per-kind totals** over the same normalized names plus the
  ``queue-wait`` pseudo-kind (morsel tasks' time spent waiting for a
  worker), rendered as a ranked table.

Self time is inclusive time minus the children's inclusive time,
clamped at zero: morsel tasks run *concurrently* under their node, so
their summed durations may exceed the node's wall time — the clamp
keeps the flamegraph monotone instead of printing negative slices.

Memory is bounded regardless of workload shape: each tree node keeps
at most :data:`ProfileNode.MAX_CHILDREN` distinct children (overflow
folds into a ``<other>`` bucket) and normalization collapses the
per-query id/ordinal variation that would otherwise grow the tree.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.trace import Span, Trace

__all__ = [
    "KindTotals",
    "ProfileAggregator",
    "ProfileNode",
    "normalize_span_name",
]

#: ``ScanStage o1+Aggregate o2`` → ``ScanStage+Aggregate``;
#: ``task 12`` → ``task``.  One pattern handles both: strip a trailing
#: ``\d+`` token (with its separating space) wherever it follows a word.
_ID_TOKEN = re.compile(r" (?:o)?\d+\b")


def normalize_span_name(span: Span) -> str:
    """Fold per-query ids out of a span name for cross-query grouping."""
    return _ID_TOKEN.sub("", span.name)


@dataclass
class KindTotals:
    """Workload-wide accumulation for one normalized span kind."""

    kind: str
    spans: int = 0
    seconds: float = 0.0
    self_seconds: float = 0.0
    rows: int = 0
    tasks: int = 0
    queue_seconds: float = 0.0
    pages_hit: int = 0
    pages_missed: int = 0


class ProfileNode:
    """One node of the folded path tree (normalized name → totals)."""

    #: Distinct children kept per node; the long tail folds into
    #: ``<other>`` so adversarial name diversity cannot grow the tree.
    MAX_CHILDREN = 32

    __slots__ = (
        "name",
        "count",
        "seconds",
        "self_seconds",
        "rows",
        "tasks",
        "queue_seconds",
        "pages_hit",
        "pages_missed",
        "children",
    )

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.seconds = 0.0
        self.self_seconds = 0.0
        self.rows = 0
        self.tasks = 0
        self.queue_seconds = 0.0
        self.pages_hit = 0
        self.pages_missed = 0
        self.children: dict[str, ProfileNode] = {}

    def child(self, name: str) -> "ProfileNode":
        node = self.children.get(name)
        if node is None:
            if len(self.children) >= self.MAX_CHILDREN:
                name = "<other>"
                node = self.children.get(name)
                if node is not None:
                    return node
            node = self.children[name] = ProfileNode(name)
        return node

    def walk(self) -> Iterable["ProfileNode"]:
        yield self
        for child in self.children.values():
            yield from child.walk()

    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "count": self.count,
            "seconds": self.seconds,
            "self_seconds": self.self_seconds,
            "rows": self.rows,
        }
        if self.tasks:
            data["tasks"] = self.tasks
            data["queue_seconds"] = self.queue_seconds
        if self.pages_hit or self.pages_missed:
            data["pages_hit"] = self.pages_hit
            data["pages_missed"] = self.pages_missed
        if self.children:
            data["children"] = [c.to_dict() for c in self.children.values()]
        return data


@dataclass
class _Folded:
    """One span's contribution, precomputed outside the lock."""

    path: tuple[str, ...]
    seconds: float
    self_seconds: float
    rows: int
    tasks: int
    queue_seconds: float
    pages_hit: int
    pages_missed: int
    kind: str = field(default="")


class ProfileAggregator:
    """Folds finished traces into the bounded workload profile."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.root = ProfileNode("workload")
        self.traces = 0
        self._kinds: dict[str, KindTotals] = {}

    # -- folding -------------------------------------------------------------
    def add_trace(self, trace: Trace) -> None:
        """Fold one finished span tree into the aggregate."""
        contributions = list(self._fold(trace.root, ()))
        with self._lock:
            self.traces += 1
            for item in contributions:
                node = self.root
                for name in item.path:
                    node = node.child(name)
                node.count += 1
                node.seconds += item.seconds
                node.self_seconds += item.self_seconds
                node.rows += item.rows
                node.tasks += item.tasks
                node.queue_seconds += item.queue_seconds
                node.pages_hit += item.pages_hit
                node.pages_missed += item.pages_missed
                totals = self._kinds.get(item.kind)
                if totals is None:
                    totals = self._kinds[item.kind] = KindTotals(item.kind)
                totals.spans += 1
                totals.seconds += item.seconds
                totals.self_seconds += item.self_seconds
                totals.rows += item.rows
                totals.tasks += item.tasks
                totals.queue_seconds += item.queue_seconds
                totals.pages_hit += item.pages_hit
                totals.pages_missed += item.pages_missed
                if item.queue_seconds:
                    wait = self._kinds.get("queue-wait")
                    if wait is None:
                        wait = self._kinds["queue-wait"] = KindTotals(
                            "queue-wait"
                        )
                    wait.spans += item.tasks or 1
                    wait.seconds += item.queue_seconds
                    wait.self_seconds += item.queue_seconds

    def _fold(
        self, span: Span, prefix: tuple[str, ...]
    ) -> Iterable[_Folded]:
        name = normalize_span_name(span)
        path = prefix + (name,)
        child_seconds = 0.0
        tasks = 0
        queue_seconds = 0.0
        for child in span.children:
            child_seconds += child.duration
            if child.category == "task":
                tasks += 1
                queue_seconds += float(
                    child.attrs.get("queue_seconds", 0.0)
                )
            yield from self._fold(child, path)
        rows = span.attrs.get("rows")
        yield _Folded(
            path=path,
            seconds=span.duration,
            self_seconds=max(0.0, span.duration - child_seconds),
            rows=int(rows) if isinstance(rows, (int, float)) else 0,
            tasks=tasks,
            queue_seconds=queue_seconds,
            pages_hit=span.pages_hit,
            pages_missed=span.pages_missed,
            kind=self._kind(span, name),
        )

    @staticmethod
    def _kind(span: Span, name: str) -> str:
        if span.category == "prepare":
            return f"prepare:{name}"
        if span.category == "merge":
            return "merge"
        return name

    # -- introspection -------------------------------------------------------
    def kind_totals(self) -> list[KindTotals]:
        """Per-kind totals, most self-time first."""
        with self._lock:
            snapshot = [
                KindTotals(**vars(t)) for t in self._kinds.values()
            ]
        snapshot.sort(key=lambda t: t.self_seconds, reverse=True)
        return snapshot

    def reset(self) -> None:
        with self._lock:
            self.root = ProfileNode("workload")
            self.traces = 0
            self._kinds.clear()

    # -- rendering -----------------------------------------------------------
    def render_text(self, max_depth: int = 8, bar_width: int = 20) -> str:
        """Text flamegraph plus the per-kind ranking."""
        with self._lock:
            traces = self.traces
        if not traces:
            return "operator profile: no traces folded yet"
        lines = [f"operator profile: {traces} trace(s) folded"]
        with self._lock:
            total = sum(
                c.seconds for c in self.root.children.values()
            )
            for top in self._ranked(self.root):
                lines.extend(
                    self._render_node(top, total, 0, max_depth, bar_width)
                )
        kinds = self.kind_totals()
        if kinds:
            lines.append("")
            lines.append(
                f"{'kind':<28} {'spans':>7} {'self ms':>10} "
                f"{'total ms':>10} {'rows':>10} {'tasks':>7}"
            )
            for totals in kinds[:16]:
                lines.append(
                    f"{totals.kind[:28]:<28} {totals.spans:>7} "
                    f"{totals.self_seconds * 1000:>10.2f} "
                    f"{totals.seconds * 1000:>10.2f} "
                    f"{totals.rows:>10} {totals.tasks:>7}"
                )
        return "\n".join(lines)

    @staticmethod
    def _ranked(node: ProfileNode) -> list[ProfileNode]:
        return sorted(
            node.children.values(), key=lambda c: c.seconds, reverse=True
        )

    def _render_node(
        self,
        node: ProfileNode,
        total: float,
        depth: int,
        max_depth: int,
        bar_width: int,
    ) -> list[str]:
        share = node.seconds / total if total > 0 else 0.0
        bar = "#" * max(1, round(share * bar_width)) if share > 0 else ""
        parts = [
            f"{'  ' * depth}{node.name}",
            f"{share * 100:5.1f}%",
            f"{node.seconds * 1000:9.2f}ms",
            f"x{node.count}",
        ]
        if node.tasks:
            parts.append(
                f"tasks={node.tasks} queue={node.queue_seconds * 1000:.2f}ms"
            )
        if node.pages_hit or node.pages_missed:
            parts.append(f"pages={node.pages_hit}h/{node.pages_missed}m")
        lines = [" ".join(parts) + (f"  {bar}" if bar else "")]
        if depth + 1 < max_depth:
            for child in self._ranked(node):
                lines.extend(
                    self._render_node(
                        child, total, depth + 1, max_depth, bar_width
                    )
                )
        return lines
