"""Observability: metrics registry, span tracer, EXPLAIN ANALYZE.

Every layer of the engine reports through one :class:`Observability`
pair — a :class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.trace.Tracer`.  Each :class:`~repro.api.Database`
owns its own pair (so registries of independent databases never
collide); components constructed standalone (engines in unit tests,
bare executors) fall back to the process-wide default pair, which also
honours the ``REPRO_TRACE`` environment knob for headless runs.

Storage-level metrics (disk pread latency) go to a dedicated
process-wide registry, because heap files are constructed far below any
database and may be shared; ``Database.metrics_text()`` renders both.
"""

from __future__ import annotations

import os

from repro.obs.insights import (
    SLOW_MS_ENV,
    DigestStore,
    SlowQueryLog,
    WorkloadInsights,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.profile import ProfileAggregator
from repro.obs.trace import (
    Span,
    Trace,
    Tracer,
    current_span,
    maybe_span,
    record_page_access,
    suppress_overhead_probe,
)

__all__ = [
    "Observability",
    "TRACE_ENV",
    "SLOW_MS_ENV",
    "default_observability",
    "default_trace_enabled",
    "storage_registry",
    "record_disk_read",
    "MetricsRegistry",
    "Tracer",
    "Trace",
    "Span",
    "current_span",
    "maybe_span",
    "record_page_access",
    "suppress_overhead_probe",
    "DigestStore",
    "ProfileAggregator",
    "SlowQueryLog",
    "WorkloadInsights",
]

#: Environment knob: ``REPRO_TRACE=1`` enables tracing everywhere a
#: component falls back to the default observability pair, and flips
#: new ``Database`` instances to tracing-on.
TRACE_ENV = "REPRO_TRACE"


def default_trace_enabled() -> bool:
    value = os.environ.get(TRACE_ENV, "").strip().lower()
    return value not in ("", "0", "off", "false", "no")


class Observability:
    """One registry + one tracer, handed down a component tree."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()


_DEFAULT: Observability | None = None
_STORAGE_REGISTRY: MetricsRegistry | None = None
_DISK_READ_HISTOGRAM: Histogram | None = None


def default_observability() -> Observability:
    """Process-wide fallback pair for standalone components."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Observability(
            tracer=Tracer(enabled=default_trace_enabled())
        )
    return _DEFAULT


def storage_registry() -> MetricsRegistry:
    """Process-wide registry for storage-spine metrics (disk reads)."""
    global _STORAGE_REGISTRY
    if _STORAGE_REGISTRY is None:
        _STORAGE_REGISTRY = MetricsRegistry()
    return _STORAGE_REGISTRY


def record_disk_read(seconds: float) -> None:
    """Record one DiskFile pread latency (histogram + active span)."""
    global _DISK_READ_HISTOGRAM
    if _DISK_READ_HISTOGRAM is None:
        _DISK_READ_HISTOGRAM = storage_registry().histogram(
            "repro_disk_read_seconds"
        )
    _DISK_READ_HISTOGRAM.observe(seconds)
    span = current_span()
    if span is not None:
        span.bump("disk_reads", 1)
        span.bump("disk_read_seconds", seconds)
