"""Thread/process-safe metrics: counters, gauges, latency histograms.

The registry is the single sink every layer reports through — service
admission counters, plan-cache hit rates, buffer-pool stats, backend
watchdog events, disk pread latency.  It renders in the Prometheus text
exposition format (``Database.metrics_text()``), so the numbers that
drive the shell's ``.cache``/``.metrics`` views and the benchmark gates
come from one source instead of three private structs.

Design notes:

* Metrics are keyed by ``(name, sorted label items)``; ``counter()`` /
  ``gauge()`` / ``histogram()`` are get-or-create and hand back child
  handles that are cheap to update (a lock-protected float/int).
* Histograms use a fixed, bounded bucket ladder (log-spaced by default,
  spanning 1 µs .. 10 s for latencies) and estimate percentiles by
  linear interpolation inside the winning bucket — the classic
  fixed-bucket estimator; exact enough for p50/p95/p99 gates and O(1)
  per observation.
* ``register_collector`` lets owners of live stats structs (buffer
  pool, plan cache, service) contribute point-in-time samples at render
  time instead of double-counting on every update.
* ``record_event`` keeps a small bounded deque of structured events
  (watchdog abandonments, trace lifecycle) for post-mortem queries.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_latency_buckets",
]


def default_latency_buckets() -> tuple[float, ...]:
    """Log-spaced latency buckets from 1 µs to 10 s (1/2.5/5 per decade)."""
    buckets: list[float] = []
    for exp in range(-6, 2):
        for mantissa in ("1", "2.5", "5"):
            buckets.append(float(f"{mantissa}e{exp}"))
    return tuple(buckets)


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    # Prometheus text-format escaping for label values.
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(key: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in key]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


class Counter:
    """A monotonically increasing counter (one labelset)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (one labelset)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket latency histogram with interpolated percentiles.

    ``buckets`` are upper bounds (exclusive of +Inf, which is implicit).
    ``observe`` is O(log n) (bisection over ~24 bounds); memory is
    bounded regardless of observation count.
    """

    __slots__ = (
        "name",
        "labels",
        "_lock",
        "_bounds",
        "_counts",
        "_count",
        "_sum",
        "_min",
        "_max",
    )

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        buckets: Iterable[float] | None = None,
    ):
        self.name = name
        self.labels = labels
        bounds = tuple(sorted(buckets)) if buckets else default_latency_buckets()
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        idx = self._bucket_index(value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self._bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self._bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]).

        Linear interpolation within the winning bucket; the +Inf bucket
        reports the observed maximum (we track it exactly).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            total = self._count
            if not total:
                return 0.0
            target = q * total
            seen = 0.0
            for idx, bucket_count in enumerate(self._counts):
                if not bucket_count:
                    continue
                if seen + bucket_count >= target:
                    if idx >= len(self._bounds):
                        return self._max
                    upper = self._bounds[idx]
                    lower = self._bounds[idx - 1] if idx else 0.0
                    lower = max(lower, min(self._min, upper))
                    upper = min(upper, max(self._max, lower))
                    fraction = (target - seen) / bucket_count
                    return lower + (upper - lower) * fraction
                seen += bucket_count
            return self._max

    def snapshot(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """A named collection of metrics plus render-time collectors.

    Thread-safe: metric creation takes the registry lock; updates take
    only the per-metric lock.  Process note: worker processes have their
    own interpreter state — cross-process numbers (task timings, shipped
    bytes) are carried back with task results and recorded here by the
    coordinating process, so the registry itself never crosses a fork.
    """

    MAX_EVENTS = 64

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[Any, Counter] = {}
        self._gauges: dict[Any, Gauge] = {}
        self._histograms: dict[Any, Histogram] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []
        self._events: deque[dict[str, Any]] = deque(maxlen=self.MAX_EVENTS)
        # Collector output lives apart from instrument state so repeated
        # renders replace (not accumulate) point-in-time samples.
        self._samples: dict[Any, float] = {}

    # -- instruments ---------------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter(name, key[1])
            return metric

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge(name, key[1])
            return metric

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] | None = None,
        **labels: str,
    ) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(
                    name, key[1], buckets
                )
            return metric

    # -- collectors and samples ----------------------------------------------
    def register_collector(
        self, collector: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Add a render-time sampler.

        Collectors run at :meth:`render_text` / :meth:`collect` time and
        contribute via :meth:`sample`.  Use them for stats that already
        live in an authoritative struct (buffer pool, plan cache).
        """
        with self._lock:
            if collector not in self._collectors:
                self._collectors.append(collector)

    def unregister_collector(
        self, collector: Callable[["MetricsRegistry"], None]
    ) -> None:
        with self._lock:
            if collector in self._collectors:
                self._collectors.remove(collector)

    def sample(self, name: str, value: float, **labels: str) -> None:
        """Record a point-in-time sample (collector output)."""
        key = (name, _label_key(labels))
        with self._lock:
            self._samples[key] = float(value)

    def collect(self) -> None:
        """Run registered collectors, refreshing sampled values."""
        with self._lock:
            collectors = list(self._collectors)
            self._samples.clear()
        for collector in collectors:
            collector(self)

    # -- events --------------------------------------------------------------
    def record_event(self, name: str, **attrs: Any) -> None:
        """Append a structured event to the bounded post-mortem log."""
        event = {"event": name, "wall_time": time.time()}
        event.update(attrs)
        with self._lock:
            self._events.append(event)

    def recent_events(self, name: str | None = None) -> list[dict[str, Any]]:
        with self._lock:
            events = list(self._events)
        if name is not None:
            events = [e for e in events if e.get("event") == name]
        return events

    # -- rendering -----------------------------------------------------------
    def render_text(self) -> str:
        """Prometheus text exposition of every metric and sample."""
        self.collect()
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
            samples = sorted(self._samples.items())
        lines: list[str] = []
        seen_types: set[str] = set()

        def type_line(name: str, kind: str) -> None:
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for (name, labels), counter in counters:
            type_line(name, "counter")
            lines.append(
                f"{name}{_render_labels(labels)} {_format(counter.value)}"
            )
        for (name, labels), gauge in gauges:
            type_line(name, "gauge")
            lines.append(
                f"{name}{_render_labels(labels)} {_format(gauge.value)}"
            )
        for (name, labels), sample_value in samples:
            type_line(name, "gauge")
            lines.append(
                f"{name}{_render_labels(labels)} {_format(sample_value)}"
            )
        for (name, labels), hist in histograms:
            type_line(name, "histogram")
            with hist._lock:
                counts = list(hist._counts)
                bounds = hist._bounds
                total = hist._count
                total_sum = hist._sum
            cumulative = 0
            for idx, bound in enumerate(bounds):
                cumulative += counts[idx]
                le = 'le="%s"' % _format(bound)
                lines.append(
                    f"{name}_bucket{_render_labels(labels, le)} {cumulative}"
                )
            cumulative += counts[-1]
            inf = 'le="+Inf"'
            lines.append(
                f"{name}_bucket{_render_labels(labels, inf)} {cumulative}"
            )
            lines.append(
                f"{name}_sum{_render_labels(labels)} {_format(total_sum)}"
            )
            lines.append(f"{name}_count{_render_labels(labels)} {total}")
            for q in (0.50, 0.95, 0.99):
                quantile = 'quantile="%g"' % q
                lines.append(
                    f"{name}{_render_labels(labels, quantile)} "
                    f"{_format(hist.percentile(q))}"
                )
        return "\n".join(lines) + "\n" if lines else ""


def _format(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))
