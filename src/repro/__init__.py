"""repro — a reproduction of "Generating code for holistic query
evaluation" (Krikellas, Viglas & Cintra, ICDE 2010): the HIQUE engine,
its substrates, and the paper's comparison systems.

Quick start::

    from repro import Database, Column, INT, DOUBLE

    db = Database()
    db.create_table("t", [Column("a", INT), Column("b", DOUBLE)])
    db.load_rows("t", [(i, i * 1.5) for i in range(1000)])
    db.analyze()
    print(db.execute("SELECT a, sum(b) AS s FROM t GROUP BY a LIMIT 3"))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from repro.api import Database, ENGINE_KINDS
from repro.core import HiqueEngine, OPT_O0, OPT_O2
from repro.engines.vectorized import VectorizedEngine
from repro.engines.volcano import VolcanoEngine
from repro.errors import ReproError
from repro.parallel import ExecutionStats, ParallelConfig
from repro.plan.optimizer import PlannerConfig
from repro.service import PlanCache, PreparedStatement, QueryService
from repro.storage import (
    BOOL,
    DATE,
    DOUBLE,
    INT,
    Catalog,
    Column,
    Schema,
    Table,
    char,
    date_to_ordinal,
    ordinal_to_date,
    varchar,
)

__version__ = "1.0.0"

__all__ = [
    "BOOL",
    "Catalog",
    "Column",
    "DATE",
    "DOUBLE",
    "Database",
    "ENGINE_KINDS",
    "ExecutionStats",
    "HiqueEngine",
    "INT",
    "OPT_O0",
    "OPT_O2",
    "ParallelConfig",
    "PlanCache",
    "PlannerConfig",
    "PreparedStatement",
    "QueryService",
    "ReproError",
    "Schema",
    "Table",
    "VectorizedEngine",
    "VolcanoEngine",
    "char",
    "date_to_ordinal",
    "ordinal_to_date",
    "varchar",
]
