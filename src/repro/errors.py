"""Exception hierarchy for the repro (HIQUE reproduction) library.

All library errors derive from :class:`ReproError` so that callers can
catch a single base class.  Each subsystem raises its own subclass, which
keeps error handling explicit at the public API boundary (the SQL engine
reports :class:`SqlError` subclasses to clients, storage corruption
surfaces as :class:`StorageError`, and so on).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class StorageError(ReproError):
    """Raised for storage-layer failures (page overflow, bad files...)."""


class PageFullError(StorageError):
    """Raised when a tuple does not fit into a page."""


class BufferPoolError(StorageError):
    """Raised when the buffer pool cannot satisfy a request.

    The common cause is every frame being pinned while a new page is
    requested.
    """


class CatalogError(ReproError):
    """Raised for catalog inconsistencies (unknown/duplicate tables...)."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class LexerError(SqlError):
    """Raised when the lexer meets an unexpected character."""


class ParseError(SqlError):
    """Raised when the parser meets an unexpected token."""


class BindError(SqlError):
    """Raised when names or types cannot be resolved against the catalog."""


class ConstraintError(SqlError):
    """Raised when a DML statement violates a structural constraint.

    Covers arity mismatches (INSERT with the wrong number of values),
    values that do not fit the target column type, and strings wider
    than a CHAR column.  Typed separately from :class:`BindError` so the
    server can report it as a ``bad_request`` instead of dropping the
    connection.
    """


class UnsupportedSqlError(SqlError):
    """Raised for syntactically valid SQL outside the supported subset.

    The paper's grammar supports conjunctive queries with equi-joins,
    arbitrary groupings and sort orders; it excludes nested queries and
    statistical aggregate functions.  We mirror those limits.
    """


class PlanError(ReproError):
    """Raised when the optimizer cannot produce a valid physical plan."""


class CodegenError(ReproError):
    """Raised when template instantiation or compilation fails."""


class ExecutionError(ReproError):
    """Raised when a compiled query fails at run time."""


class WatchdogTimeout(ExecutionError):
    """Raised when the stall watchdog abandons a wedged parallel task.

    Distinct from a generic :class:`ExecutionError` so the service
    layer can attribute the failure to the statement's digest as a
    watchdog abandonment (a wedged query must be visible in
    per-statement accounting, not only as a metrics event).
    """


class ServiceError(ReproError):
    """Raised by the query service layer (sessions, prepared statements)."""


class AdmissionError(ServiceError):
    """Raised when the service's bounded session pool is saturated and a
    new request cannot be admitted."""


class QueryTimeout(ServiceError):
    """Raised when a query exceeds the server's per-query deadline.

    Distinct from :class:`WatchdogTimeout`: the watchdog fires when a
    parallel *task* makes no progress, this fires when a whole query
    overruns the serving deadline even while progressing.  The server
    reports it as a typed ``timeout`` response instead of dropping the
    connection.
    """


class ServerError(ReproError):
    """Raised by the TCP query-server front-end (framing, lifecycle)."""


class ProtocolError(ServerError):
    """Raised for a malformed protocol frame (bad JSON, missing op...)."""


class MapDirectoryOverflow(ExecutionError):
    """Raised by generated map-aggregation code when a value directory
    outgrows its planned capacity (stale statistics).

    The executor catches this and transparently re-plans the query with
    hybrid hash-sort aggregation forced.
    """

