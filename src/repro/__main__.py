"""``python -m repro`` starts the interactive SQL shell."""

import sys

from repro.cli import main

sys.exit(main(sys.argv[1:]))
