"""Name resolution and type checking against the catalogue.

The binder turns a parsed :class:`~repro.sql.ast.Query` into a
:class:`~repro.sql.bound.BoundQuery`:

* FROM entries are resolved to catalogue tables; aliases become binding
  names;
* WHERE conjuncts are classified into per-table *filters* and cross-table
  *equi-join predicates* — any other cross-table predicate is outside
  the supported subset (the paper's grammar supports conjunctive queries
  with equi-joins);
* select items are typed and classified (group key / aggregate / plain);
* ORDER BY keys are resolved to output column positions (by alias or by
  matching expression), since the engine sorts final results.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import BindError, ConstraintError, UnsupportedSqlError
from repro.sql import ast
from repro.sql.bound import (
    UNTYPED,
    BoundAggregate,
    BoundArithmetic,
    BoundAssignment,
    BoundColumn,
    BoundComparison,
    BoundDelete,
    BoundExpr,
    BoundInsert,
    BoundLiteral,
    BoundOutput,
    BoundParameter,
    BoundQuery,
    BoundStatement,
    BoundTable,
    BoundUpdate,
    JoinPredicate,
    bindings_in,
    is_untyped_parameter,
)
from repro.sql.parameters import count_parameters, count_statement_parameters
from repro.storage.catalog import Catalog
from repro.storage.types import DATE, DOUBLE, INT, DataType, char

#: Parameter type hints carrying enough information to type directly.
_HINT_DTYPES: dict[str, DataType] = {
    "int": INT,
    "double": DOUBLE,
    "date": DATE,
}


class Binder:
    """Binds parsed queries against a catalogue.

    A binder instance holds no mutable state at all — every
    :meth:`bind` call threads its working set through locals and the
    returned :class:`BoundQuery` — so one binder may serve any number
    of concurrent sessions (the query service relies on this).
    """

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # -- entry point -------------------------------------------------------------
    def bind(
        self,
        query: ast.Query,
        param_dtypes: Mapping[int, DataType] | None = None,
    ) -> BoundQuery:
        """Bind one parsed query.

        ``param_dtypes`` supplies known types for parameters by index
        (the literal-parameterization pass knows them exactly).  Types
        not supplied are inferred from context: a parameter compared to
        a column takes the column's type, one inside arithmetic becomes
        DOUBLE.  A parameter whose type cannot be inferred is a bind
        error.
        """
        dtypes = dict(param_dtypes or {})
        bound = BoundQuery()
        self._bind_tables(query, bound)
        self._bind_where(query, bound, dtypes)
        self._bind_select(query, bound, dtypes)
        self._bind_order_by(query, bound, dtypes)
        bound.limit = query.limit
        bound.num_params = count_parameters(query)
        _check_no_untyped(bound)
        return bound

    # -- FROM ----------------------------------------------------------------------
    def _bind_tables(self, query: ast.Query, bound: BoundQuery) -> None:
        if not query.tables:
            raise BindError("query has no FROM clause")
        seen: set[str] = set()
        for ref in query.tables:
            binding = ref.binding_name.lower()
            if binding in seen:
                raise BindError(f"duplicate table binding {binding!r}")
            seen.add(binding)
            table = self.catalog.table(ref.name)
            bound.tables.append(BoundTable(binding, table))
            bound.filters[binding] = []

    # -- scalar expressions -----------------------------------------------------------
    def bind_expr(
        self,
        expr: ast.Expr,
        bound: BoundQuery,
        allow_aggregates: bool,
        param_dtypes: Mapping[int, DataType] | None = None,
    ) -> BoundExpr:
        if isinstance(expr, ast.ColumnRef):
            return self._resolve_column(expr, bound)
        if isinstance(expr, ast.Literal):
            return _bind_literal(expr)
        if isinstance(expr, ast.Parameter):
            dtype = (param_dtypes or {}).get(expr.index)
            if dtype is None:
                dtype = _HINT_DTYPES.get(expr.type_hint, UNTYPED)
            return BoundParameter(expr.index, dtype)
        if isinstance(expr, ast.Arithmetic):
            left = self.bind_expr(
                expr.left, bound, allow_aggregates, param_dtypes
            )
            right = self.bind_expr(
                expr.right, bound, allow_aggregates, param_dtypes
            )
            return _typed_arithmetic(expr.op, left, right)
        if isinstance(expr, ast.Aggregate):
            if not allow_aggregates:
                raise BindError(
                    f"aggregate {expr.func.upper()} not allowed here"
                )
            return self._bind_aggregate(expr, bound, param_dtypes)
        raise BindError(f"cannot bind expression {expr!r}")

    def _bind_aggregate(
        self,
        expr: ast.Aggregate,
        bound: BoundQuery,
        param_dtypes: Mapping[int, DataType] | None = None,
    ) -> BoundAggregate:
        if expr.argument is None:
            return BoundAggregate("count", None, INT)
        argument = self.bind_expr(
            expr.argument, bound, allow_aggregates=False,
            param_dtypes=param_dtypes,
        )
        if isinstance(argument, BoundAggregate):
            raise UnsupportedSqlError("nested aggregates")
        if is_untyped_parameter(argument):
            argument = BoundParameter(argument.index, DOUBLE)
        if expr.func == "count":
            dtype: DataType = INT
        elif expr.func == "avg":
            dtype = DOUBLE
        elif expr.func == "sum":
            if not argument.dtype.is_numeric:
                raise BindError("SUM requires a numeric argument")
            dtype = argument.dtype if argument.dtype in (INT,) else DOUBLE
        else:  # min/max keep their argument type
            dtype = argument.dtype
        return BoundAggregate(expr.func, argument, dtype)

    def _resolve_column(
        self, ref: ast.ColumnRef, bound: BoundQuery
    ) -> BoundColumn:
        if ref.name == "*":
            raise UnsupportedSqlError("SELECT * with other items")
        if ref.table is not None:
            binding = ref.table.lower()
            try:
                entry = bound.binding(binding)
            except KeyError:
                raise BindError(f"unknown table binding {ref.table!r}") from None
            schema = entry.table.schema
            if not schema.has_column(ref.name):
                raise BindError(
                    f"table {ref.table!r} has no column {ref.name!r}"
                )
            column = schema[schema.index_of(ref.name)]
            return BoundColumn(binding, column.name, column.dtype)
        matches = []
        for entry in bound.tables:
            schema = entry.table.schema
            if schema.has_column(ref.name):
                column = schema[schema.index_of(ref.name)]
                matches.append(
                    BoundColumn(entry.binding, column.name, column.dtype)
                )
        if not matches:
            raise BindError(f"unknown column {ref.name!r}")
        if len(matches) > 1:
            owners = ", ".join(m.binding for m in matches)
            raise BindError(f"ambiguous column {ref.name!r} (in {owners})")
        return matches[0]

    # -- WHERE ---------------------------------------------------------------------
    def _bind_where(
        self,
        query: ast.Query,
        bound: BoundQuery,
        param_dtypes: Mapping[int, DataType] | None = None,
    ) -> None:
        for conjunct in query.where:
            left = self.bind_expr(
                conjunct.left, bound, allow_aggregates=False,
                param_dtypes=param_dtypes,
            )
            right = self.bind_expr(
                conjunct.right, bound, allow_aggregates=False,
                param_dtypes=param_dtypes,
            )
            left, right = _unify_comparison_params(left, right)
            _check_comparable(left, right, conjunct.op)
            touched = bindings_in(left) | bindings_in(right)
            if len(touched) <= 1:
                comparison = BoundComparison(conjunct.op, left, right)
                if touched:
                    bound.filters[touched.pop()].append(comparison)
                else:
                    # Constant predicate: attach to the first table; the
                    # staging code evaluates it once per tuple, which is
                    # semantically correct if odd.
                    bound.filters[bound.tables[0].binding].append(comparison)
                continue
            if (
                len(touched) == 2
                and conjunct.op == "="
                and isinstance(left, BoundColumn)
                and isinstance(right, BoundColumn)
            ):
                bound.joins.append(JoinPredicate(left, right))
                continue
            raise UnsupportedSqlError(
                "only conjunctive equi-join predicates may span tables"
            )

    # -- SELECT / GROUP BY ---------------------------------------------------------
    def _bind_select(
        self,
        query: ast.Query,
        bound: BoundQuery,
        param_dtypes: Mapping[int, DataType] | None = None,
    ) -> None:
        if (
            len(query.select_items) == 1
            and isinstance(query.select_items[0].expr, ast.ColumnRef)
            and query.select_items[0].expr.name == "*"
        ):
            self._bind_select_star(query, bound)
            return

        group_columns = [
            self._resolve_column(ref, bound) for ref in query.group_by
        ]
        bound.group_by = group_columns
        grouped = bool(group_columns) or query.has_aggregates

        for i, item in enumerate(query.select_items):
            expr = self.bind_expr(
                item.expr, bound, allow_aggregates=True,
                param_dtypes=param_dtypes,
            )
            name = item.alias or _default_name(item.expr, i)
            if isinstance(expr, BoundAggregate) or _contains_bound_aggregate(
                expr
            ):
                if _partially_aggregated(expr):
                    raise UnsupportedSqlError(
                        "mixing aggregate and non-aggregate terms in one "
                        "expression"
                    )
                bound.select.append(
                    BoundOutput(name, expr, expr.dtype, "aggregate")
                )
                continue
            if grouped:
                self._check_grouped_output(expr, group_columns)
                bound.select.append(
                    BoundOutput(name, expr, expr.dtype, "group")
                )
            else:
                bound.select.append(
                    BoundOutput(name, expr, expr.dtype, "plain")
                )
        if grouped and not bound.select:
            raise BindError("grouped query selects nothing")

    def _bind_select_star(self, query: ast.Query, bound: BoundQuery) -> None:
        if query.group_by:
            raise BindError("SELECT * cannot be combined with GROUP BY")
        for entry in bound.tables:
            for column in entry.table.schema:
                expr = BoundColumn(entry.binding, column.name, column.dtype)
                bound.select.append(
                    BoundOutput(column.name, expr, column.dtype, "plain")
                )

    @staticmethod
    def _check_grouped_output(
        expr: BoundExpr, group_columns: list[BoundColumn]
    ) -> None:
        group_keys = {(c.binding, c.column) for c in group_columns}
        from repro.sql.bound import columns_in

        for column in columns_in(expr):
            if (column.binding, column.column) not in group_keys:
                raise BindError(
                    f"column {column.display()} is neither grouped nor "
                    f"aggregated"
                )

    # -- ORDER BY ---------------------------------------------------------------------
    def _bind_order_by(
        self,
        query: ast.Query,
        bound: BoundQuery,
        param_dtypes: Mapping[int, DataType] | None = None,
    ) -> None:
        if not query.order_by:
            return
        alias_index = {o.name.lower(): i for i, o in enumerate(bound.select)}
        for item in query.order_by:
            index = self._resolve_order_key(
                item.expr, alias_index, bound, param_dtypes
            )
            bound.order_by.append((index, item.ascending))

    def _resolve_order_key(
        self,
        expr: ast.Expr,
        alias_index: dict[str, int],
        bound: BoundQuery,
        param_dtypes: Mapping[int, DataType] | None = None,
    ) -> int:
        # 1. Bare name matching a select alias.
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            if expr.name.lower() in alias_index:
                return alias_index[expr.name.lower()]
        # 2. Expression equal to some select item's bound expression.
        key = self.bind_expr(
            expr, bound, allow_aggregates=True, param_dtypes=param_dtypes
        )
        for i, output in enumerate(bound.select):
            if output.expr == key:
                return i
        raise UnsupportedSqlError(
            "ORDER BY keys must appear in the select list"
        )

    # -- DML -----------------------------------------------------------------------
    def bind_statement(
        self,
        statement: ast.Statement,
        param_dtypes: Mapping[int, DataType] | None = None,
    ) -> BoundStatement:
        """Bind any supported statement kind (SELECT or DML)."""
        if isinstance(statement, ast.Query):
            return self.bind(statement, param_dtypes)
        if isinstance(statement, ast.Insert):
            return self.bind_insert(statement, param_dtypes)
        if isinstance(statement, ast.Update):
            return self.bind_update(statement, param_dtypes)
        if isinstance(statement, ast.Delete):
            return self.bind_delete(statement, param_dtypes)
        raise BindError(f"cannot bind statement {statement!r}")

    def bind_insert(
        self,
        statement: ast.Insert,
        param_dtypes: Mapping[int, DataType] | None = None,
    ) -> BoundInsert:
        table = self.catalog.table(statement.table)
        schema = table.schema
        targets = self._insert_targets(statement, schema)
        dtypes = dict(param_dtypes or {})
        # Value expressions may not reference columns: binding against an
        # empty scaffold makes any ColumnRef an "unknown column" error.
        scaffold = BoundQuery()
        rows: list[list[BoundExpr]] = []
        for row in statement.rows:
            if len(row) != len(targets):
                raise ConstraintError(
                    f"INSERT row has {len(row)} value(s), expected "
                    f"{len(targets)}"
                )
            by_position: list[BoundExpr | None] = [None] * len(schema)
            for expr, position in zip(row, targets):
                column = schema[position]
                value = self.bind_expr(
                    expr, scaffold, allow_aggregates=False,
                    param_dtypes=dtypes,
                )
                by_position[position] = _coerce_dml_value(
                    value, table.name, column
                )
            rows.append([e for e in by_position if e is not None])
        bound = BoundInsert(
            table, rows, count_statement_parameters(statement)
        )
        _check_no_untyped_dml(bound)
        return bound

    @staticmethod
    def _insert_targets(statement: ast.Insert, schema) -> list[int]:
        """Schema positions for the statement's value columns, in order.

        Tuples are fixed length with no NULLs or defaults, so every
        column must be supplied — positionally, or by an explicit column
        list covering the whole schema in any order.
        """
        if statement.columns is None:
            return list(range(len(schema)))
        names = [c.lower() for c in statement.columns]
        if len(set(names)) != len(names):
            raise ConstraintError("duplicate column in INSERT column list")
        positions = []
        for name in names:
            if not schema.has_column(name):
                raise BindError(
                    f"table {statement.table!r} has no column {name!r}"
                )
            positions.append(schema.index_of(name))
        if len(positions) != len(schema):
            missing = [
                c.name
                for i, c in enumerate(schema)
                if i not in set(positions)
            ]
            raise ConstraintError(
                f"INSERT must supply every column; missing "
                f"{', '.join(missing)}"
            )
        return positions

    def bind_update(
        self,
        statement: ast.Update,
        param_dtypes: Mapping[int, DataType] | None = None,
    ) -> BoundUpdate:
        table = self.catalog.table(statement.table)
        schema = table.schema
        binding = statement.table.lower()
        scaffold = BoundQuery()
        scaffold.tables.append(BoundTable(binding, table))
        scaffold.filters[binding] = []
        dtypes = dict(param_dtypes or {})
        assignments: list[BoundAssignment] = []
        seen: set[int] = set()
        for item in statement.assignments:
            name = item.column.lower()
            if not schema.has_column(name):
                raise BindError(
                    f"table {statement.table!r} has no column "
                    f"{item.column!r}"
                )
            position = schema.index_of(name)
            if position in seen:
                raise ConstraintError(
                    f"column {item.column!r} assigned twice"
                )
            seen.add(position)
            column = schema[position]
            value = self.bind_expr(
                item.value, scaffold, allow_aggregates=False,
                param_dtypes=dtypes,
            )
            assignments.append(
                BoundAssignment(
                    position,
                    column.name,
                    _coerce_dml_value(value, table.name, column),
                )
            )
        where = self._bind_dml_where(statement.where, scaffold, dtypes)
        bound = BoundUpdate(
            table, binding, assignments, where,
            count_statement_parameters(statement),
        )
        _check_no_untyped_dml(bound)
        return bound

    def bind_delete(
        self,
        statement: ast.Delete,
        param_dtypes: Mapping[int, DataType] | None = None,
    ) -> BoundDelete:
        table = self.catalog.table(statement.table)
        binding = statement.table.lower()
        scaffold = BoundQuery()
        scaffold.tables.append(BoundTable(binding, table))
        scaffold.filters[binding] = []
        where = self._bind_dml_where(
            statement.where, scaffold, dict(param_dtypes or {})
        )
        bound = BoundDelete(
            table, binding, where, count_statement_parameters(statement)
        )
        _check_no_untyped_dml(bound)
        return bound

    def _bind_dml_where(
        self,
        where: list[ast.Comparison],
        scaffold: BoundQuery,
        param_dtypes: Mapping[int, DataType],
    ) -> list[BoundComparison]:
        """Bind a single-table WHERE clause (no joins possible)."""
        conjuncts: list[BoundComparison] = []
        for conjunct in where:
            left = self.bind_expr(
                conjunct.left, scaffold, allow_aggregates=False,
                param_dtypes=param_dtypes,
            )
            right = self.bind_expr(
                conjunct.right, scaffold, allow_aggregates=False,
                param_dtypes=param_dtypes,
            )
            left, right = _unify_comparison_params(left, right)
            _check_comparable(left, right, conjunct.op)
            conjuncts.append(BoundComparison(conjunct.op, left, right))
        return conjuncts


# -- helpers ---------------------------------------------------------------------


def _coerce_dml_value(
    expr: BoundExpr, table_name: str, column
) -> BoundExpr:
    """Type a DML value expression against its target column."""
    if is_untyped_parameter(expr):
        expr = BoundParameter(expr.index, column.dtype)
    if not expr.dtype.comparable_with(column.dtype):
        raise ConstraintError(
            f"cannot store {expr.dtype.name} into "
            f"{table_name}.{column.name} ({column.dtype.name})"
        )
    return expr


def _check_no_untyped_dml(
    bound: BoundInsert | BoundUpdate | BoundDelete,
) -> None:
    """DML counterpart of :func:`_check_no_untyped`."""

    def walk(expr: BoundExpr) -> None:
        if is_untyped_parameter(expr):
            raise BindError(
                f"cannot infer the type of parameter ?{expr.index + 1}"
            )
        if isinstance(expr, BoundArithmetic):
            walk(expr.left)
            walk(expr.right)

    if isinstance(bound, BoundInsert):
        for row in bound.rows:
            for expr in row:
                walk(expr)
        return
    if isinstance(bound, BoundUpdate):
        for assignment in bound.assignments:
            walk(assignment.expr)
    for comparison in bound.where:
        walk(comparison.left)
        walk(comparison.right)


def _bind_literal(literal: ast.Literal) -> BoundLiteral:
    if literal.type_hint == "date":
        return BoundLiteral(literal.value, DATE)
    if literal.type_hint == "string" or isinstance(literal.value, str):
        return BoundLiteral(literal.value, char(max(len(literal.value), 1)))
    if isinstance(literal.value, bool):
        raise UnsupportedSqlError("boolean literals")
    if isinstance(literal.value, int):
        return BoundLiteral(literal.value, INT)
    return BoundLiteral(float(literal.value), DOUBLE)


def _typed_arithmetic(
    op: str, left: BoundExpr, right: BoundExpr
) -> BoundArithmetic:
    # Parameters of unknown type inside arithmetic become DOUBLE — the
    # permissive numeric choice (sum/avg promote to DOUBLE the same way).
    if is_untyped_parameter(left):
        left = BoundParameter(
            left.index,
            right.dtype if right.dtype.is_numeric else DOUBLE,
        )
    if is_untyped_parameter(right):
        right = BoundParameter(
            right.index,
            left.dtype if left.dtype.is_numeric else DOUBLE,
        )
    if not (left.dtype.is_numeric and right.dtype.is_numeric):
        raise BindError(f"arithmetic {op!r} over non-numeric operands")
    if left.dtype == DOUBLE or right.dtype == DOUBLE or op == "/":
        dtype = DOUBLE
    elif DATE in (left.dtype, right.dtype):
        dtype = DATE if op in ("+", "-") else INT
    else:
        dtype = INT
    return BoundArithmetic(op, left, right, dtype)


def _check_comparable(left: BoundExpr, right: BoundExpr, op: str) -> None:
    if not left.dtype.comparable_with(right.dtype):
        raise BindError(
            f"cannot compare {left.dtype.name} {op} {right.dtype.name}"
        )


def _unify_comparison_params(
    left: BoundExpr, right: BoundExpr
) -> tuple[BoundExpr, BoundExpr]:
    """Give an untyped parameter the type of the other comparison side."""
    if is_untyped_parameter(left) and is_untyped_parameter(right):
        raise BindError(
            "cannot infer the type of a parameter compared only to "
            "another parameter"
        )
    if is_untyped_parameter(left):
        return BoundParameter(left.index, right.dtype), right
    if is_untyped_parameter(right):
        return left, BoundParameter(right.index, left.dtype)
    return left, right


def _check_no_untyped(bound: BoundQuery) -> None:
    """Every parameter must leave the binder with a concrete type."""

    def walk(expr: BoundExpr) -> None:
        if is_untyped_parameter(expr):
            raise BindError(
                f"cannot infer the type of parameter ?{expr.index + 1}; "
                f"compare it to a column or use it in arithmetic"
            )
        if isinstance(expr, BoundArithmetic):
            walk(expr.left)
            walk(expr.right)
        elif isinstance(expr, BoundAggregate) and expr.argument is not None:
            walk(expr.argument)

    for output in bound.select:
        walk(output.expr)
    for comparisons in bound.filters.values():
        for comparison in comparisons:
            walk(comparison.left)
            walk(comparison.right)


def _contains_bound_aggregate(expr: BoundExpr) -> bool:
    if isinstance(expr, BoundAggregate):
        return True
    if isinstance(expr, BoundArithmetic):
        return _contains_bound_aggregate(expr.left) or _contains_bound_aggregate(
            expr.right
        )
    return False


def _partially_aggregated(expr: BoundExpr) -> bool:
    """True when an expression mixes aggregate and bare-column terms."""
    if isinstance(expr, BoundAggregate):
        return False
    if isinstance(expr, BoundArithmetic):
        left_has = _contains_bound_aggregate(expr.left)
        right_has = _contains_bound_aggregate(expr.right)
        if left_has and right_has:
            return _partially_aggregated(expr.left) or _partially_aggregated(
                expr.right
            )
        if left_has:
            return bool(bindings_in(expr.right)) or _partially_aggregated(
                expr.left
            )
        if right_has:
            return bool(bindings_in(expr.left)) or _partially_aggregated(
                expr.right
            )
    return False


def _default_name(expr: ast.Expr, index: int) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.Aggregate):
        if expr.argument is None:
            return "count_star"
        if isinstance(expr.argument, ast.ColumnRef):
            return f"{expr.func}_{expr.argument.name}"
        return f"{expr.func}_{index}"
    return f"col_{index}"
