"""Hand-written SQL lexer.

Produces a flat token stream for the recursive-descent parser.  Keywords
are case-insensitive; identifiers keep their original spelling but
compare case-insensitively downstream (the catalog lowercases names).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LexerError

KEYWORDS = {
    "select", "from", "where", "and", "group", "order", "by", "as",
    "asc", "desc", "limit", "date", "interval", "day", "month", "year",
    "sum", "count", "avg", "min", "max", "distinct",
    "insert", "into", "values", "update", "set", "delete",
}

#: Multi-character operators first so maximal munch works.
_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/",
              "(", ")", ",", ".", ";", "?")


@dataclass(frozen=True)
class Token:
    """One lexical token: kind ∈ {ident, keyword, number, string, op, eof}."""

    kind: str
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.text == word

    def is_op(self, op: str) -> bool:
        return self.kind == "op" and self.text == op


def tokenize(sql: str) -> list[Token]:
    """Lex ``sql`` into tokens, ending with an ``eof`` token."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            newline = sql.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch == "'":
            end = sql.find("'", i + 1)
            if end < 0:
                raise LexerError(f"unterminated string at position {i}")
            tokens.append(Token("string", sql[i + 1:end], i))
            i = end + 1
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and sql[i + 1].isdigit()
        ):
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                if sql[j] == ".":
                    # A dot not followed by a digit belongs to a qualified
                    # name, not to this number.
                    if j + 1 >= n or not sql[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token("number", sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            kind = "keyword" if word.lower() in KEYWORDS else "ident"
            text = word.lower() if kind == "keyword" else word
            tokens.append(Token(kind, text, i))
            i = j
            continue
        for op in _OPERATORS:
            if sql.startswith(op, i):
                # Normalise != to <>.
                text = "<>" if op == "!=" else op
                tokens.append(Token("op", text, i))
                i += len(op)
                break
        else:
            raise LexerError(
                f"unexpected character {ch!r} at position {i}"
            )
    tokens.append(Token("eof", "", n))
    return tokens
