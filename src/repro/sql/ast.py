"""Abstract syntax trees for the supported SQL subset.

The grammar mirrors the paper (Section IV): conjunctive queries with
equi-joins, arbitrary groupings and sort orders, and the usual aggregate
functions; no nested queries and no statistical aggregates.  Arithmetic
expressions are allowed in select items and predicates (TPC-H Q1 needs
``sum(l_extendedprice * (1 - l_discount))``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

# -- scalar expressions -------------------------------------------------------


class Expr:
    """Base class for scalar expressions."""


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly table-qualified column reference."""

    name: str
    table: str | None = None

    def display(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: int, float, string or date (stored as day ordinal)."""

    value: Any
    type_hint: str = "auto"  # "auto" | "int" | "double" | "string" | "date"


@dataclass(frozen=True)
class Parameter(Expr):
    """A query parameter (``?`` placeholder), filled in at execute time.

    Parameters come from two sources: explicit ``?`` markers in the SQL
    text (numbered left to right by the parser) and the literal
    parameterization pass (:mod:`repro.sql.parameters`), which rewrites
    constants out of a query so that structurally identical statements
    share one cache entry.  ``type_hint`` mirrors
    :attr:`Literal.type_hint` and is ``"auto"`` for explicit markers,
    whose type the binder infers from context.
    """

    index: int
    type_hint: str = "auto"  # "auto" | "int" | "double" | "string" | "date"


@dataclass(frozen=True)
class Arithmetic(Expr):
    """Binary arithmetic: ``+ - * /``."""

    op: str
    left: Expr
    right: Expr


#: Aggregate function names the grammar accepts.
AGGREGATE_FUNCTIONS = ("sum", "count", "avg", "min", "max")


@dataclass(frozen=True)
class Aggregate(Expr):
    """``func(expr)`` or ``COUNT(*)`` (argument None)."""

    func: str
    argument: Expr | None

    @property
    def is_count_star(self) -> bool:
        return self.func == "count" and self.argument is None


# -- predicates ---------------------------------------------------------------

#: Comparison operators, SQL spelling → canonical form.
COMPARISON_OPS = ("=", "<>", "<", ">", "<=", ">=")


@dataclass(frozen=True)
class Comparison:
    """``left op right`` — one conjunct of the WHERE clause."""

    op: str
    left: Expr
    right: Expr

    def is_equi_join(self) -> bool:
        """Column = column between two different tables (syntactically)."""
        return (
            self.op == "="
            and isinstance(self.left, ColumnRef)
            and isinstance(self.right, ColumnRef)
        )


# -- query structure ------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One item of the select list, with an optional alias."""

    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    """A FROM-clause table with an optional alias."""

    name: str
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        return self.alias if self.alias else self.name


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key; ``expr`` may name a select-list alias."""

    expr: Expr
    ascending: bool = True


@dataclass
class Query:
    """A parsed (not yet bound) SELECT statement."""

    select_items: list[SelectItem] = field(default_factory=list)
    tables: list[TableRef] = field(default_factory=list)
    where: list[Comparison] = field(default_factory=list)
    group_by: list[ColumnRef] = field(default_factory=list)
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None

    @property
    def has_aggregates(self) -> bool:
        return any(
            _contains_aggregate(item.expr) for item in self.select_items
        )


# -- DML statements -----------------------------------------------------------


@dataclass
class Insert:
    """A parsed ``INSERT INTO name [(cols)] VALUES (...), ...``."""

    table: str
    #: Explicit column list, or None for positional (schema-order) inserts.
    columns: list[str] | None
    #: One expression list per VALUES row.
    rows: list[list[Expr]] = field(default_factory=list)


@dataclass
class Assignment:
    """One ``column = expr`` item of an UPDATE's SET list."""

    column: str
    value: Expr


@dataclass
class Update:
    """A parsed ``UPDATE name SET col = expr, ... [WHERE ...]``."""

    table: str
    assignments: list[Assignment] = field(default_factory=list)
    where: list[Comparison] = field(default_factory=list)


@dataclass
class Delete:
    """A parsed ``DELETE FROM name [WHERE ...]``."""

    table: str
    where: list[Comparison] = field(default_factory=list)


#: Union of the statement kinds :func:`repro.sql.parser.parse_statement`
#: can return.
Statement = Query | Insert | Update | Delete


def _contains_aggregate(expr: Expr) -> bool:
    if isinstance(expr, Aggregate):
        return True
    if isinstance(expr, Arithmetic):
        return _contains_aggregate(expr.left) or _contains_aggregate(
            expr.right
        )
    return False


def contains_aggregate(expr: Expr) -> bool:
    """Public wrapper used by the binder."""
    return _contains_aggregate(expr)
