"""Typed, name-resolved query representation produced by the binder.

Bound expressions reference columns by *(binding name, column name)* —
the binding name is the FROM-clause alias (or the table name when no
alias is given).  Later stages (optimizer, code generator, iterator
engines) map these references to physical slots of their inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.storage.table import Table
from repro.storage.types import DataType


class BoundExpr:
    """Base class for bound scalar expressions."""

    dtype: DataType


@dataclass(frozen=True)
class BoundColumn(BoundExpr):
    """A resolved column reference."""

    binding: str  # FROM-clause binding (alias or table name), lowercased
    column: str  # column name as stored in the table schema
    dtype: DataType

    def display(self) -> str:
        return f"{self.binding}.{self.column}"


@dataclass(frozen=True)
class BoundLiteral(BoundExpr):
    """A typed constant (dates already folded to day ordinals)."""

    value: Any
    dtype: DataType


#: Placeholder type for parameters the binder has not yet inferred; it
#: never survives binding — every :class:`BoundParameter` in a finished
#: :class:`BoundQuery` carries a real type.
UNTYPED = DataType("PARAM", "param", 0, "x")


@dataclass(frozen=True)
class BoundParameter(BoundExpr):
    """An execute-time parameter: ``params[index]`` in generated code.

    Parameterized code generation references the parameter vector
    instead of an inlined constant, so one compiled plan serves every
    execution of the statement shape.
    """

    index: int
    dtype: DataType


def is_untyped_parameter(expr: BoundExpr) -> bool:
    """Whether ``expr`` is a parameter still awaiting type inference."""
    return isinstance(expr, BoundParameter) and expr.dtype is UNTYPED


@dataclass(frozen=True)
class BoundArithmetic(BoundExpr):
    """Typed binary arithmetic."""

    op: str
    left: BoundExpr
    right: BoundExpr
    dtype: DataType


@dataclass(frozen=True)
class BoundAggregate(BoundExpr):
    """A typed aggregate call; ``argument`` is None for COUNT(*)."""

    func: str
    argument: BoundExpr | None
    dtype: DataType


@dataclass(frozen=True)
class BoundComparison:
    """One typed conjunct of the WHERE clause."""

    op: str
    left: BoundExpr
    right: BoundExpr


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join conjunct between two different bindings."""

    left: BoundColumn
    right: BoundColumn

    def bindings(self) -> tuple[str, str]:
        return (self.left.binding, self.right.binding)

    def column_for(self, binding: str) -> BoundColumn:
        if self.left.binding == binding:
            return self.left
        if self.right.binding == binding:
            return self.right
        raise KeyError(binding)


@dataclass(frozen=True)
class BoundOutput:
    """One output column: its name, bound expression and role."""

    name: str
    expr: BoundExpr
    dtype: DataType
    kind: str  # "group" | "aggregate" | "plain"


@dataclass
class BoundTable:
    """A FROM-clause entry resolved against the catalog."""

    binding: str
    table: Table

    @property
    def row_count(self) -> int:
        return self.table.num_rows


@dataclass
class BoundQuery:
    """The binder's output: everything the optimizer needs."""

    tables: list[BoundTable] = field(default_factory=list)
    filters: dict[str, list[BoundComparison]] = field(default_factory=dict)
    joins: list[JoinPredicate] = field(default_factory=list)
    select: list[BoundOutput] = field(default_factory=list)
    group_by: list[BoundColumn] = field(default_factory=list)
    order_by: list[tuple[int, bool]] = field(default_factory=list)
    limit: int | None = None
    #: How many execute-time parameters the query references.
    num_params: int = 0

    @property
    def has_aggregates(self) -> bool:
        return any(o.kind == "aggregate" for o in self.select)

    @property
    def is_grouped(self) -> bool:
        return bool(self.group_by) or self.has_aggregates

    def binding(self, name: str) -> BoundTable:
        for bound in self.tables:
            if bound.binding == name:
                return bound
        raise KeyError(name)

    def output_names(self) -> list[str]:
        return [o.name for o in self.select]


# -- DML -----------------------------------------------------------------------


@dataclass
class BoundInsert:
    """A typed INSERT: one expression list per row, in schema order."""

    table: Table
    #: Each inner list has exactly one expression per schema column.
    rows: list[list[BoundExpr]] = field(default_factory=list)
    num_params: int = 0


@dataclass(frozen=True)
class BoundAssignment:
    """One SET item of an UPDATE, resolved to a schema column position."""

    position: int
    column: str
    expr: BoundExpr


@dataclass
class BoundUpdate:
    """A typed UPDATE over a single table."""

    table: Table
    binding: str
    assignments: list[BoundAssignment] = field(default_factory=list)
    where: list[BoundComparison] = field(default_factory=list)
    num_params: int = 0


@dataclass
class BoundDelete:
    """A typed DELETE over a single table."""

    table: Table
    binding: str
    where: list[BoundComparison] = field(default_factory=list)
    num_params: int = 0


#: Union of everything :meth:`repro.sql.binder.Binder.bind_statement`
#: can return.
BoundStatement = BoundQuery | BoundInsert | BoundUpdate | BoundDelete


def columns_in(expr: BoundExpr) -> list[BoundColumn]:
    """All column references inside a bound expression, in visit order."""
    out: list[BoundColumn] = []
    _collect_columns(expr, out)
    return out


def _collect_columns(expr: BoundExpr, out: list[BoundColumn]) -> None:
    if isinstance(expr, BoundColumn):
        out.append(expr)
    elif isinstance(expr, BoundArithmetic):
        _collect_columns(expr.left, out)
        _collect_columns(expr.right, out)
    elif isinstance(expr, BoundAggregate) and expr.argument is not None:
        _collect_columns(expr.argument, out)


def bindings_in(expr: BoundExpr) -> set[str]:
    """The set of table bindings an expression touches."""
    return {c.binding for c in columns_in(expr)}


def param_dtypes_of(bound: BoundQuery) -> dict[int, DataType]:
    """Parameter index → resolved type, across a whole bound query.

    The engine uses this to re-bind a statement (fallback re-planning)
    without repeating type inference.
    """
    dtypes: dict[int, DataType] = {}

    def walk(expr: BoundExpr | None) -> None:
        if expr is None:
            return
        if isinstance(expr, BoundParameter):
            dtypes[expr.index] = expr.dtype
        elif isinstance(expr, BoundArithmetic):
            walk(expr.left)
            walk(expr.right)
        elif isinstance(expr, BoundAggregate):
            walk(expr.argument)

    for output in bound.select:
        walk(output.expr)
    for comparisons in bound.filters.values():
        for comparison in comparisons:
            walk(comparison.left)
            walk(comparison.right)
    return dtypes
