"""SQL front end: lexer, parser, binder (the paper's Section IV parser)."""

from repro.sql.ast import (
    Aggregate,
    Arithmetic,
    ColumnRef,
    Comparison,
    Literal,
    OrderItem,
    Query,
    SelectItem,
    TableRef,
)
from repro.sql.binder import Binder
from repro.sql.bound import (
    BoundAggregate,
    BoundArithmetic,
    BoundColumn,
    BoundComparison,
    BoundExpr,
    BoundLiteral,
    BoundOutput,
    BoundQuery,
    BoundTable,
    JoinPredicate,
    bindings_in,
    columns_in,
)
from repro.sql.lexer import Token, tokenize
from repro.sql.parser import parse

__all__ = [
    "Aggregate",
    "Arithmetic",
    "Binder",
    "BoundAggregate",
    "BoundArithmetic",
    "BoundColumn",
    "BoundComparison",
    "BoundExpr",
    "BoundLiteral",
    "BoundOutput",
    "BoundQuery",
    "BoundTable",
    "ColumnRef",
    "Comparison",
    "JoinPredicate",
    "Literal",
    "OrderItem",
    "Query",
    "SelectItem",
    "TableRef",
    "Token",
    "bindings_in",
    "columns_in",
    "parse",
    "tokenize",
]
