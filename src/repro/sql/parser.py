"""Recursive-descent parser for the supported SQL subset.

Grammar (paper, Section IV: conjunctive queries, equi-joins, arbitrary
groupings and sort orders; no nesting, no statistical aggregates):

::

    query      := SELECT select_list FROM table_list
                  [WHERE conjunct (AND conjunct)*]
                  [GROUP BY column (, column)*]
                  [ORDER BY order_item (, order_item)*]
                  [LIMIT number] [;]
    select_list:= select_item (, select_item)* | '*'
    select_item:= expr [AS ident]
    table_list := table_ref (, table_ref)*
    table_ref  := ident [ident]          -- optional alias
    conjunct   := expr cmp expr
    expr       := term ((+|-) term)*
    term       := factor ((*|/) factor)*
    factor     := literal | column | agg | '(' expr ')' | '-' factor
    agg        := (SUM|COUNT|AVG|MIN|MAX) '(' (expr | '*') ')'
    literal    := number | string | DATE string
                | DATE string (+|-) INTERVAL string (DAY|MONTH|YEAR)
    column     := ident ['.' ident]

Date arithmetic is folded at parse time (TPC-H Q1 writes
``date '1998-12-01' - interval '90' day``), so later stages only ever
see resolved day ordinals.
"""

from __future__ import annotations

import datetime

from repro.errors import ParseError, UnsupportedSqlError
from repro.sql.ast import (
    AGGREGATE_FUNCTIONS,
    Aggregate,
    Arithmetic,
    Assignment,
    ColumnRef,
    Comparison,
    Delete,
    Expr,
    Insert,
    Literal,
    OrderItem,
    Parameter,
    Query,
    SelectItem,
    Statement,
    TableRef,
    Update,
)
from repro.sql.lexer import Token, tokenize
from repro.storage.types import date_to_ordinal, ordinal_to_date


def parse(sql: str) -> Query:
    """Parse one SELECT statement into a :class:`~repro.sql.ast.Query`."""
    return _Parser(tokenize(sql)).parse_query()


def parse_statement(sql: str) -> Statement:
    """Parse one statement: SELECT, INSERT, UPDATE or DELETE.

    DML uses the same expression grammar as queries, so ``?``
    parameters are numbered left to right across the whole statement
    exactly as they are in SELECT.
    """
    parser = _Parser(tokenize(sql))
    head = parser._peek()
    if head.is_keyword("insert"):
        return parser.parse_insert()
    if head.is_keyword("update"):
        return parser.parse_update()
    if head.is_keyword("delete"):
        return parser.parse_delete()
    return parser.parse_query()


def statement_kind(sql: str) -> str:
    """Cheap statement classification without a full parse.

    Returns ``"insert"``, ``"update"``, ``"delete"`` or ``"select"``
    by looking at the first token only — the service uses this to route
    DML before paying for parsing under a lock.
    """
    for token in tokenize(sql):
        if token.kind == "keyword" and token.text in (
            "insert", "update", "delete",
        ):
            return token.text
        return "select"
    return "select"


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0
        self._num_params = 0

    # -- token plumbing -------------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._advance()
        if not token.is_keyword(word):
            raise ParseError(
                f"expected {word.upper()!r}, got {token.text!r} at "
                f"position {token.position}"
            )
        return token

    def _expect_op(self, op: str) -> Token:
        token = self._advance()
        if not token.is_op(op):
            raise ParseError(
                f"expected {op!r}, got {token.text!r} at position "
                f"{token.position}"
            )
        return token

    def _expect_ident(self) -> Token:
        token = self._advance()
        if token.kind != "ident":
            raise ParseError(
                f"expected identifier, got {token.text!r} at position "
                f"{token.position}"
            )
        return token

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _accept_op(self, op: str) -> bool:
        if self._peek().is_op(op):
            self._advance()
            return True
        return False

    # -- grammar --------------------------------------------------------------
    def parse_query(self) -> Query:
        self._expect_keyword("select")
        query = Query()
        query.select_items = self._select_list()
        self._expect_keyword("from")
        query.tables = self._table_list()
        if self._accept_keyword("where"):
            query.where = self._conjunction()
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            query.group_by = self._column_list()
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            query.order_by = self._order_list()
        if self._accept_keyword("limit"):
            token = self._advance()
            if token.kind != "number":
                raise ParseError(f"LIMIT expects a number, got {token.text!r}")
            query.limit = int(token.text)
        self._finish()
        return query

    def _finish(self) -> None:
        self._accept_op(";")
        tail = self._peek()
        if tail.kind != "eof":
            if tail.is_keyword("select"):
                raise UnsupportedSqlError("nested/multiple queries")
            raise ParseError(
                f"unexpected trailing token {tail.text!r} at position "
                f"{tail.position}"
            )

    # -- DML ------------------------------------------------------------------
    def parse_insert(self) -> Insert:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._expect_ident().text
        columns: list[str] | None = None
        if self._accept_op("("):
            columns = [self._expect_ident().text]
            while self._accept_op(","):
                columns.append(self._expect_ident().text)
            self._expect_op(")")
        self._expect_keyword("values")
        rows = [self._value_row()]
        while self._accept_op(","):
            rows.append(self._value_row())
        self._finish()
        return Insert(table, columns, rows)

    def _value_row(self) -> list[Expr]:
        self._expect_op("(")
        values = [self._expr()]
        while self._accept_op(","):
            values.append(self._expr())
        self._expect_op(")")
        return values

    def parse_update(self) -> Update:
        self._expect_keyword("update")
        table = self._expect_ident().text
        self._expect_keyword("set")
        assignments = [self._assignment()]
        while self._accept_op(","):
            assignments.append(self._assignment())
        where: list[Comparison] = []
        if self._accept_keyword("where"):
            where = self._conjunction()
        self._finish()
        return Update(table, assignments, where)

    def _assignment(self) -> Assignment:
        column = self._expect_ident().text
        self._expect_op("=")
        return Assignment(column, self._expr())

    def parse_delete(self) -> Delete:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table = self._expect_ident().text
        where: list[Comparison] = []
        if self._accept_keyword("where"):
            where = self._conjunction()
        self._finish()
        return Delete(table, where)

    def _select_list(self) -> list[SelectItem]:
        if self._accept_op("*"):
            return [SelectItem(ColumnRef("*"))]
        items = [self._select_item()]
        while self._accept_op(","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        expr = self._expr()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident().text
        elif self._peek().kind == "ident":
            alias = self._advance().text
        return SelectItem(expr, alias)

    def _table_list(self) -> list[TableRef]:
        refs = [self._table_ref()]
        while self._accept_op(","):
            refs.append(self._table_ref())
        return refs

    def _table_ref(self) -> TableRef:
        name = self._expect_ident().text
        alias = None
        if self._peek().kind == "ident":
            alias = self._advance().text
        return TableRef(name, alias)

    def _conjunction(self) -> list[Comparison]:
        conjuncts = [self._comparison()]
        while self._accept_keyword("and"):
            conjuncts.append(self._comparison())
        return conjuncts

    def _comparison(self) -> Comparison:
        left = self._expr()
        token = self._advance()
        if token.kind != "op" or token.text not in ("=", "<>", "<", ">", "<=", ">="):
            raise ParseError(
                f"expected comparison operator, got {token.text!r} at "
                f"position {token.position}"
            )
        right = self._expr()
        return Comparison(token.text, left, right)

    def _column_list(self) -> list[ColumnRef]:
        columns = [self._column_ref()]
        while self._accept_op(","):
            columns.append(self._column_ref())
        return columns

    def _order_list(self) -> list[OrderItem]:
        items = [self._order_item()]
        while self._accept_op(","):
            items.append(self._order_item())
        return items

    def _order_item(self) -> OrderItem:
        expr = self._expr()
        ascending = True
        if self._accept_keyword("desc"):
            ascending = False
        else:
            self._accept_keyword("asc")
        return OrderItem(expr, ascending)

    # -- expressions --------------------------------------------------------------
    def _expr(self) -> Expr:
        left = self._term()
        while True:
            if self._accept_op("+"):
                left = self._fold_or_node("+", left, self._term())
            elif self._accept_op("-"):
                left = self._fold_or_node("-", left, self._term())
            else:
                return left

    def _term(self) -> Expr:
        left = self._factor()
        while True:
            if self._accept_op("*"):
                left = Arithmetic("*", left, self._factor())
            elif self._accept_op("/"):
                left = Arithmetic("/", left, self._factor())
            else:
                return left

    def _factor(self) -> Expr:
        token = self._peek()
        if token.is_keyword("interval"):
            self._advance()
            return self._interval_literal()
        if token.is_op("("):
            self._advance()
            expr = self._expr()
            self._expect_op(")")
            return expr
        if token.is_op("-"):
            self._advance()
            inner = self._factor()
            if isinstance(inner, Literal) and isinstance(
                inner.value, (int, float)
            ):
                return Literal(-inner.value, inner.type_hint)
            return Arithmetic("-", Literal(0, "int"), inner)
        if token.is_op("?"):
            self._advance()
            parameter = Parameter(self._num_params)
            self._num_params += 1
            return parameter
        if token.kind == "number":
            self._advance()
            if "." in token.text:
                return Literal(float(token.text), "double")
            return Literal(int(token.text), "int")
        if token.kind == "string":
            self._advance()
            return Literal(token.text, "string")
        if token.is_keyword("date"):
            self._advance()
            return self._date_literal()
        if token.kind == "keyword" and token.text in AGGREGATE_FUNCTIONS:
            self._advance()
            return self._aggregate(token.text)
        if token.kind == "ident":
            return self._column_ref()
        raise ParseError(
            f"unexpected token {token.text!r} at position {token.position}"
        )

    def _date_literal(self) -> Literal:
        token = self._advance()
        if token.kind != "string":
            raise ParseError("DATE expects a quoted literal")
        try:
            day = date_to_ordinal(token.text)
        except ValueError as exc:
            raise ParseError(f"bad date literal {token.text!r}") from exc
        return Literal(day, "date")

    def _aggregate(self, func: str) -> Aggregate:
        self._expect_op("(")
        if self._accept_keyword("distinct"):
            raise UnsupportedSqlError("DISTINCT aggregates")
        if func == "count" and self._accept_op("*"):
            self._expect_op(")")
            return Aggregate("count", None)
        argument = self._expr()
        self._expect_op(")")
        return Aggregate(func, argument)

    def _interval_literal(self) -> "_IntervalLiteral":
        amount_token = self._advance()
        if amount_token.kind not in ("string", "number"):
            raise ParseError("INTERVAL expects a quoted or numeric amount")
        amount = int(amount_token.text)
        unit_token = self._advance()
        if not (
            unit_token.kind == "keyword"
            and unit_token.text in ("day", "month", "year")
        ):
            raise ParseError("INTERVAL unit must be DAY, MONTH or YEAR")
        return _IntervalLiteral(amount, unit_token.text)

    def _column_ref(self) -> ColumnRef:
        first = self._expect_ident().text
        if self._accept_op("."):
            second = self._expect_ident().text
            return ColumnRef(second, first)
        return ColumnRef(first)

    # -- date arithmetic folding -----------------------------------------------------
    def _fold_or_node(self, op: str, left: Expr, right: Expr) -> Expr:
        """Fold ``DATE ± INTERVAL`` at parse time; else build a node."""
        if (
            isinstance(left, Literal)
            and left.type_hint == "date"
            and isinstance(right, _IntervalLiteral)
        ):
            base = ordinal_to_date(left.value)
            shifted = right.shift(base, negate=(op == "-"))
            return Literal(date_to_ordinal(shifted), "date")
        if isinstance(right, _IntervalLiteral):
            raise ParseError("INTERVAL may only be added to a DATE literal")
        return Arithmetic(op, left, right)


class _IntervalLiteral(Expr):
    """Parse-time-only node for ``INTERVAL 'n' unit``."""

    def __init__(self, amount: int, unit: str):
        self.amount = amount
        self.unit = unit

    def shift(self, base: datetime.date, negate: bool) -> datetime.date:
        amount = -self.amount if negate else self.amount
        if self.unit == "day":
            return base + datetime.timedelta(days=amount)
        if self.unit == "month":
            month_index = base.year * 12 + (base.month - 1) + amount
            year, month = divmod(month_index, 12)
            day = min(base.day, _days_in_month(year, month + 1))
            return datetime.date(year, month + 1, day)
        return datetime.date(base.year + amount, base.month, base.day)


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        return 31
    first = datetime.date(year, month, 1)
    nxt = datetime.date(year, month + 1, 1)
    return (nxt - first).days
