"""Literal parameterization: constants out, ``?`` placeholders in.

The paper's headline cost is query *preparation* (Table III), and its
remedy is the standard one: store "pre-compiled and pre-optimized
versions of frequently or recently issued queries".  Keyed on raw SQL
text that cache is nearly useless for point queries — ``WHERE a = 1``
and ``WHERE a = 2`` each pay full code generation.  This module makes
the two statements one:

* :func:`extract_parameters` rewrites constant literals in the WHERE
  clause of a parsed :class:`~repro.sql.ast.Query` into
  :class:`~repro.sql.ast.Parameter` nodes, returning the extracted
  values (the parameter vector for this execution) and their types;
* :func:`render_query` prints a query back as canonical SQL with ``?``
  placeholders — the *normalized cache key* under which structurally
  identical statements share one compiled plan;
* :func:`substitute_parameters` resolves parameters back into literals,
  which lets engines without parameterized code paths (the iterator and
  vectorized comparison engines) run prepared statements unchanged.

Only WHERE-clause literals are extracted.  Literals in the select list,
GROUP BY or ORDER BY stay inline on purpose: they shape the *plan* and
the *generated code* (output types and widths, constant folding at
higher optimization levels), so hoisting them would change what the
cache key must capture.  Queries that already carry explicit ``?``
markers are never rewritten — the author has chosen the parameter
boundary and mixing in auto-extracted indexes would scramble it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.errors import BindError
from repro.sql import ast
from repro.storage.types import (
    DATE,
    DOUBLE,
    INT,
    DataType,
    char,
    ordinal_to_date,
)


@dataclass(frozen=True)
class ParameterizedQuery:
    """The result of normalizing one parsed query."""

    query: ast.Query
    #: Canonical SQL with ``?`` placeholders — the plan-cache key.
    key: str
    #: Values extracted by literal parameterization (empty for queries
    #: with explicit ``?`` markers, whose values arrive at execute time).
    values: tuple[Any, ...]
    #: Per-parameter types; ``None`` where the binder must infer.
    dtypes: tuple[DataType | None, ...]
    #: Total number of parameters the query expects at execute time.
    num_params: int

    @property
    def type_signature(self) -> tuple[str | None, ...]:
        """Per-parameter type-family codes, for the plan-cache key.

        Two statements share a compiled plan only when their extracted
        constants have the same type families — ``WHERE c = 'x1'`` and
        ``WHERE c = 3`` must not collide, or a warm cache would skip the
        bind-time comparability check the cold path enforces.  Families
        (``char`` rather than ``CHAR(2)``) keep strings of different
        lengths on one entry, since comparability is family-granular.
        """
        return tuple(d.code if d is not None else None for d in self.dtypes)


def parameterize(query: ast.Query) -> ParameterizedQuery:
    """Normalize a parsed query for the plan cache.

    Explicit-``?`` queries pass through untouched; literal-only queries
    have their WHERE constants extracted.  Either way the returned key
    is canonical SQL, so spelling differences (case, whitespace) also
    collapse into one cache entry.
    """
    explicit = count_parameters(query)
    if explicit:
        return ParameterizedQuery(
            query=query,
            key=render_query(query),
            values=(),
            dtypes=(None,) * explicit,
            num_params=explicit,
        )
    rewritten, values = extract_parameters(query)
    return ParameterizedQuery(
        query=rewritten,
        key=render_query(rewritten),
        values=values,
        dtypes=tuple(dtype_for_value(v, h) for v, h in values_with_hints(rewritten, values)),
        num_params=len(values),
    )


# -- parameter counting ----------------------------------------------------------


def count_parameters(query: ast.Query) -> int:
    """Number of :class:`~repro.sql.ast.Parameter` nodes in a query."""
    found: set[int] = set()

    def walk(expr: ast.Expr) -> None:
        if isinstance(expr, ast.Parameter):
            found.add(expr.index)
        elif isinstance(expr, ast.Arithmetic):
            walk(expr.left)
            walk(expr.right)
        elif isinstance(expr, ast.Aggregate) and expr.argument is not None:
            walk(expr.argument)

    for item in query.select_items:
        walk(item.expr)
    for conjunct in query.where:
        walk(conjunct.left)
        walk(conjunct.right)
    for order in query.order_by:
        walk(order.expr)
    return len(found)


def count_statement_parameters(statement: "ast.Statement") -> int:
    """Parameter count for any statement kind (SELECT or DML)."""
    if isinstance(statement, ast.Query):
        return count_parameters(statement)
    found: set[int] = set()

    def walk(expr: ast.Expr) -> None:
        if isinstance(expr, ast.Parameter):
            found.add(expr.index)
        elif isinstance(expr, ast.Arithmetic):
            walk(expr.left)
            walk(expr.right)

    for expr in _statement_exprs(statement):
        walk(expr)
    return len(found)


def _statement_exprs(statement: "ast.Statement") -> Iterator[ast.Expr]:
    """Every scalar expression slot of a DML statement, in parse order."""
    if isinstance(statement, ast.Insert):
        for row in statement.rows:
            yield from row
        return
    if isinstance(statement, ast.Update):
        for assignment in statement.assignments:
            yield assignment.value
    for conjunct in statement.where:
        yield conjunct.left
        yield conjunct.right


def parameter_hints(query: ast.Query) -> dict[int, str]:
    """Parameter index → type hint, for every parameter in the query."""
    hints: dict[int, str] = {}

    def walk(expr: ast.Expr) -> None:
        if isinstance(expr, ast.Parameter):
            hints[expr.index] = expr.type_hint
        elif isinstance(expr, ast.Arithmetic):
            walk(expr.left)
            walk(expr.right)
        elif isinstance(expr, ast.Aggregate) and expr.argument is not None:
            walk(expr.argument)

    for item in query.select_items:
        walk(item.expr)
    for conjunct in query.where:
        walk(conjunct.left)
        walk(conjunct.right)
    for order in query.order_by:
        walk(order.expr)
    return hints


def values_with_hints(
    query: ast.Query, values: Sequence[Any]
) -> list[tuple[Any, str]]:
    """Pair extracted values with the type hints of their parameters."""
    hints = parameter_hints(query)
    return [(value, hints.get(i, "auto")) for i, value in enumerate(values)]


# -- literal extraction ----------------------------------------------------------


def extract_parameters(
    query: ast.Query,
) -> tuple[ast.Query, tuple[Any, ...]]:
    """Rewrite WHERE-clause literals into parameters.

    Returns the rewritten query plus the extracted constant values, in
    parameter-index order.  The select list, grouping, ordering and
    LIMIT are left untouched (their constants stay inline — see the
    module docstring).  A query already using explicit ``?`` markers is
    returned unchanged with no extracted values.
    """
    if count_parameters(query):
        return query, ()
    values: list[Any] = []

    def rewrite(expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.Literal):
            parameter = ast.Parameter(len(values), expr.type_hint)
            values.append(expr.value)
            return parameter
        if isinstance(expr, ast.Arithmetic):
            return ast.Arithmetic(
                expr.op, rewrite(expr.left), rewrite(expr.right)
            )
        return expr

    where = [
        ast.Comparison(c.op, rewrite(c.left), rewrite(c.right))
        for c in query.where
    ]
    rewritten = dataclasses.replace(query, where=where)
    return rewritten, tuple(values)


def substitute_parameters(
    query: ast.Query, params: Sequence[Any]
) -> ast.Query:
    """Resolve every parameter back into a literal.

    This is the compatibility path for engines that interpret plans
    rather than generate parameterized code: the substituted query runs
    through their ordinary pipeline and returns rows identical to the
    inlined-literal original.
    """
    expected = count_parameters(query)
    if expected != len(params):
        raise BindError(
            f"query expects {expected} parameter(s), got {len(params)}"
        )

    def rewrite(expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.Parameter):
            value = params[expr.index]
            return ast.Literal(value, _literal_hint(value, expr.type_hint))
        if isinstance(expr, ast.Arithmetic):
            return ast.Arithmetic(
                expr.op, rewrite(expr.left), rewrite(expr.right)
            )
        if isinstance(expr, ast.Aggregate) and expr.argument is not None:
            return ast.Aggregate(expr.func, rewrite(expr.argument))
        return expr

    return dataclasses.replace(
        query,
        select_items=[
            ast.SelectItem(rewrite(item.expr), item.alias)
            for item in query.select_items
        ],
        where=[
            ast.Comparison(c.op, rewrite(c.left), rewrite(c.right))
            for c in query.where
        ],
        order_by=[
            ast.OrderItem(rewrite(o.expr), o.ascending)
            for o in query.order_by
        ],
    )


def _literal_hint(value: Any, param_hint: str) -> str:
    if param_hint != "auto":
        return param_hint
    if isinstance(value, str):
        return "string"
    if isinstance(value, float):
        return "double"
    return "int"


def dtype_for_value(value: Any, hint: str = "auto") -> DataType:
    """The type an extracted constant binds with (mirrors the binder)."""
    if hint == "date":
        return DATE
    if hint == "string" or isinstance(value, str):
        return char(max(len(str(value)), 1))
    if isinstance(value, bool):
        raise BindError("boolean parameters are not supported")
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return DOUBLE
    raise BindError(f"cannot type parameter value {value!r}")


# -- canonical rendering ----------------------------------------------------------


def render_query(query: ast.Query) -> str:
    """Canonical SQL for a parsed query, parameters printed as ``?``.

    Two statements that parse to the same shape — regardless of keyword
    case, whitespace or (after :func:`extract_parameters`) constant
    values — render identically, which is what makes this string the
    plan-cache key.
    """
    parts = ["SELECT "]
    parts.append(", ".join(_render_select(i) for i in query.select_items))
    parts.append(" FROM ")
    parts.append(
        ", ".join(
            t.name + (f" {t.alias}" if t.alias else "") for t in query.tables
        )
    )
    if query.where:
        parts.append(" WHERE ")
        parts.append(
            " AND ".join(
                f"{_render(c.left)} {c.op} {_render(c.right)}"
                for c in query.where
            )
        )
    if query.group_by:
        parts.append(" GROUP BY ")
        parts.append(", ".join(_render(c) for c in query.group_by))
    if query.order_by:
        parts.append(" ORDER BY ")
        parts.append(
            ", ".join(
                _render(o.expr) + ("" if o.ascending else " DESC")
                for o in query.order_by
            )
        )
    if query.limit is not None:
        parts.append(f" LIMIT {query.limit}")
    return "".join(parts)


def _render_select(item: ast.SelectItem) -> str:
    rendered = _render(item.expr)
    if item.alias:
        return f"{rendered} AS {item.alias}"
    return rendered


def _render(expr: ast.Expr) -> str:
    if isinstance(expr, ast.Parameter):
        return "?"
    if isinstance(expr, ast.Literal):
        return _render_literal(expr)
    if isinstance(expr, ast.ColumnRef):
        return expr.display()
    if isinstance(expr, ast.Arithmetic):
        return f"({_render(expr.left)} {expr.op} {_render(expr.right)})"
    if isinstance(expr, ast.Aggregate):
        if expr.argument is None:
            return "count(*)"
        return f"{expr.func}({_render(expr.argument)})"
    raise BindError(f"cannot render expression {expr!r}")


def _render_literal(literal: ast.Literal) -> str:
    if literal.type_hint == "date":
        return f"DATE '{ordinal_to_date(literal.value).isoformat()}'"
    if isinstance(literal.value, str):
        quoted = literal.value.replace("'", "''")
        return f"'{quoted}'"
    return repr(literal.value)


# -- DML parameterization ----------------------------------------------------------
#
# DML statements parameterize *all* their literals, not just WHERE-clause
# ones: VALUES and SET constants are pure data (they never shape the
# plan), so ``INSERT INTO t VALUES (1, 'a')`` and ``... VALUES (2, 'b')``
# share one bound statement, exactly as two point SELECTs share one
# compiled plan.


def parameterize_statement(
    statement: "ast.Statement",
) -> ParameterizedQuery:
    """Normalize any statement kind for the plan cache.

    SELECTs take the query path (:func:`parameterize`); DML statements
    with explicit ``?`` markers pass through, literal-only DML has every
    constant extracted.
    """
    if isinstance(statement, ast.Query):
        return parameterize(statement)
    explicit = count_statement_parameters(statement)
    if explicit:
        return ParameterizedQuery(
            query=statement,
            key=render_statement(statement),
            values=(),
            dtypes=(None,) * explicit,
            num_params=explicit,
        )
    rewritten, pairs = _extract_statement_parameters(statement)
    return ParameterizedQuery(
        query=rewritten,
        key=render_statement(rewritten),
        values=tuple(v for v, _ in pairs),
        dtypes=tuple(dtype_for_value(v, h) for v, h in pairs),
        num_params=len(pairs),
    )


def _extract_statement_parameters(
    statement: "ast.Statement",
) -> tuple["ast.Statement", list[tuple[Any, str]]]:
    pairs: list[tuple[Any, str]] = []

    def rewrite(expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.Literal):
            parameter = ast.Parameter(len(pairs), expr.type_hint)
            pairs.append((expr.value, expr.type_hint))
            return parameter
        if isinstance(expr, ast.Arithmetic):
            return ast.Arithmetic(
                expr.op, rewrite(expr.left), rewrite(expr.right)
            )
        return expr

    def rewrite_where(
        where: list[ast.Comparison],
    ) -> list[ast.Comparison]:
        return [
            ast.Comparison(c.op, rewrite(c.left), rewrite(c.right))
            for c in where
        ]

    if isinstance(statement, ast.Insert):
        rows = [[rewrite(e) for e in row] for row in statement.rows]
        return ast.Insert(statement.table, statement.columns, rows), pairs
    if isinstance(statement, ast.Update):
        assignments = [
            ast.Assignment(a.column, rewrite(a.value))
            for a in statement.assignments
        ]
        return (
            ast.Update(
                statement.table, assignments,
                rewrite_where(statement.where),
            ),
            pairs,
        )
    assert isinstance(statement, ast.Delete)
    return (
        ast.Delete(statement.table, rewrite_where(statement.where)),
        pairs,
    )


def render_statement(statement: "ast.Statement") -> str:
    """Canonical SQL for any statement kind (the plan-cache key)."""
    if isinstance(statement, ast.Query):
        return render_query(statement)
    if isinstance(statement, ast.Insert):
        parts = [f"INSERT INTO {statement.table}"]
        if statement.columns is not None:
            parts.append(f" ({', '.join(statement.columns)})")
        parts.append(" VALUES ")
        parts.append(
            ", ".join(
                "(" + ", ".join(_render(e) for e in row) + ")"
                for row in statement.rows
            )
        )
        return "".join(parts)
    if isinstance(statement, ast.Update):
        rendered = f"UPDATE {statement.table} SET " + ", ".join(
            f"{a.column} = {_render(a.value)}"
            for a in statement.assignments
        )
        return rendered + _render_where(statement.where)
    assert isinstance(statement, ast.Delete)
    return f"DELETE FROM {statement.table}" + _render_where(
        statement.where
    )


def _render_where(where: list[ast.Comparison]) -> str:
    if not where:
        return ""
    return " WHERE " + " AND ".join(
        f"{_render(c.left)} {c.op} {_render(c.right)}" for c in where
    )
