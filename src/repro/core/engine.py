"""HIQUE — the Holistic Integrated Query Engine (reproduction).

The façade tying the pipeline of Figure 2 together: SQL text → parser →
binder → optimizer → code generator → compiler → executor.  It measures
each preparation stage separately (Table III reports parse, optimize,
generate and compile times plus generated file sizes) and keeps a
prepared-query cache, since "it is common for systems to store
pre-compiled and pre-optimized versions of frequently or recently
issued queries".
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.core.compiler import CompiledQuery, QueryCompiler
from repro.core.emitter import OPT_O2
from repro.core.executor import run_compiled
from repro.core.generator import CodeGenerator, GeneratedQuery
from repro.errors import ExecutionError, MapDirectoryOverflow, ReproError
from repro.memsim.probe import NULL_PROBE, NullProbe
from repro.obs import Observability, default_observability
from repro.parallel.executor import ParallelExecutor
from repro.parallel.stats import (
    ExecutionStats,
    ParallelConfig,
    default_executor,
)
from repro.plan.descriptors import AGG_HYBRID, PhysicalPlan
from repro.plan.optimizer import Optimizer, PlannerConfig
from repro.sql import ast
from repro.sql.binder import Binder
from repro.sql.bound import BoundQuery, param_dtypes_of
from repro.sql.parser import parse
from repro.storage.catalog import Catalog
from repro.storage.types import DataType


@dataclass
class PreparationTimings:
    """Per-stage preparation cost in seconds (Table III)."""

    parse_seconds: float = 0.0
    optimize_seconds: float = 0.0
    generate_seconds: float = 0.0
    compile_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return (
            self.parse_seconds
            + self.optimize_seconds
            + self.generate_seconds
            + self.compile_seconds
        )


@dataclass
class PreparedQuery:
    """A query after the full preparation pipeline."""

    sql: str
    bound: BoundQuery
    plan: PhysicalPlan
    generated: GeneratedQuery
    compiled: CompiledQuery
    timings: PreparationTimings

    @property
    def output_names(self) -> list[str]:
        return self.plan.output_names

    @property
    def num_params(self) -> int:
        """How many execute-time parameters the compiled code expects."""
        return self.bound.num_params


class HiqueEngine:
    """The holistic query engine over a catalogue of tables."""

    def __init__(
        self,
        catalog: Catalog,
        planner_config: PlannerConfig | None = None,
        opt_level: str = OPT_O2,
        workdir: str | None = None,
        parallel: ParallelConfig | None = None,
        obs: Observability | None = None,
    ):
        self.catalog = catalog
        self.obs = obs if obs is not None else default_observability()
        self.planner_config = (
            planner_config if planner_config is not None else PlannerConfig()
        )
        self.opt_level = opt_level
        self.binder = Binder(catalog)
        self.generator = CodeGenerator()
        self.compiler = QueryCompiler(workdir)
        self._cache: dict[tuple[str, str, bool], PreparedQuery] = {}
        #: Morsel-driven intra-query parallelism; None keeps every
        #: execution on the serial composed entry point.  Setting
        #: REPRO_DEFAULT_PARALLEL makes engines constructed without an
        #: explicit config default to the parallel path (CI uses this
        #: to exercise it across the whole test suite), with
        #: REPRO_DEFAULT_WORKERS sizing the pool, REPRO_EXECUTOR
        #: picking the task backend ("thread" or "process") and
        #: REPRO_PIPELINE flipping on dependency-driven cross-phase
        #: scheduling (ParallelConfig reads it as its default) — the CI
        #: matrix runs one leg with REPRO_EXECUTOR=process and one with
        #: REPRO_PIPELINE=1 REPRO_EXECUTOR=process so the whole suite
        #: exercises the process backend and the pipelined scheduler.
        if parallel is None and os.environ.get(
            "REPRO_DEFAULT_PARALLEL", ""
        ) not in ("", "0"):
            try:
                parallel = ParallelConfig(
                    workers=int(
                        os.environ.get("REPRO_DEFAULT_WORKERS", "4")
                    ),
                    executor=default_executor(),
                )
            except ValueError as exc:
                # A bad env knob should surface as the library's error
                # type, not a bare ValueError from config validation.
                raise ReproError(str(exc)) from None
        self.parallel = (
            ParallelExecutor(parallel, obs=self.obs)
            if parallel is not None
            else None
        )
        #: How the most recent execution ran (set per execute call).
        self.last_exec_stats: ExecutionStats | None = None

    # -- preparation ----------------------------------------------------------------
    def prepare(
        self,
        sql: str,
        name: str = "query",
        traced: bool = False,
        opt_level: str | None = None,
        use_cache: bool = True,
        planner_config: PlannerConfig | None = None,
        query: ast.Query | None = None,
        param_dtypes: Mapping[int, DataType] | None = None,
    ) -> PreparedQuery:
        """Run the full pipeline, returning the compiled query.

        ``query`` supplies an already-parsed (typically parameterized)
        AST, skipping the parse step — the query service uses this after
        normalizing a statement.  ``param_dtypes`` types the query's
        parameters by index; untyped parameters are inferred from
        context by the binder.
        """
        level = opt_level if opt_level is not None else self.opt_level
        key = (sql, level, traced)
        if use_cache and planner_config is None and key in self._cache:
            return self._cache[key]

        timings = PreparationTimings()
        tracer = self.obs.tracer
        with tracer.span("prepare", "engine", opt_level=level):
            started = time.perf_counter()
            with tracer.span("parse", "prepare"):
                parsed = query if query is not None else parse(sql)
                bound = self.binder.bind(parsed, param_dtypes=param_dtypes)
            timings.parse_seconds = time.perf_counter() - started

            config = (
                planner_config
                if planner_config is not None
                else self.planner_config
            )
            started = time.perf_counter()
            with tracer.span("optimize", "prepare"):
                plan = Optimizer(self.catalog, config).plan(bound)
            timings.optimize_seconds = time.perf_counter() - started

            started = time.perf_counter()
            with tracer.span("generate", "prepare"):
                generated = self.generator.generate(
                    plan, name=name, opt_level=level, traced=traced
                )
            timings.generate_seconds = time.perf_counter() - started

            with tracer.span("compile", "prepare"):
                compiled = self.compiler.compile(generated)
            timings.compile_seconds = compiled.compile_seconds

        prepared = PreparedQuery(
            sql=sql,
            bound=bound,
            plan=plan,
            generated=generated,
            compiled=compiled,
            timings=timings,
        )
        if use_cache and planner_config is None:
            self._cache[key] = prepared
        return prepared

    # -- execution ---------------------------------------------------------------------
    def execute(
        self,
        sql: str,
        name: str = "query",
        probe: NullProbe = NULL_PROBE,
        opt_level: str | None = None,
        planner_config: PlannerConfig | None = None,
        params: Sequence[Any] = (),
    ) -> list[tuple]:
        """Prepare (with caching) and run a query."""
        prepared = self.prepare(
            sql,
            name=name,
            traced=probe.enabled,
            opt_level=opt_level,
            planner_config=planner_config,
        )
        return self.execute_prepared(prepared, probe=probe, params=params)

    def execute_prepared(
        self,
        prepared: PreparedQuery,
        probe: NullProbe = NULL_PROBE,
        params: Sequence[Any] = (),
    ) -> list[tuple]:
        """Run a prepared query, re-planning on map-directory overflow."""
        params = tuple(params)
        if len(params) != prepared.num_params:
            raise ExecutionError(
                f"query expects {prepared.num_params} parameter(s), "
                f"got {len(params)}"
            )
        try:
            with self.obs.tracer.span(
                "execute",
                "engine",
                engine=(
                    "hique"
                    if prepared.compiled.opt_level == OPT_O2
                    else "hique-o0"
                ),
            ) as span:
                if self.parallel is not None:
                    rows, stats = self.parallel.run(
                        prepared, params=params, probe=probe
                    )
                    self.last_exec_stats = stats
                    if span is not None:
                        span.set(
                            rows=len(rows),
                            parallel=stats.parallel,
                            backend=stats.backend,
                        )
                    return rows
                rows = run_compiled(
                    prepared.compiled,
                    prepared.plan,
                    probe=probe,
                    params=params,
                )
                if span is not None:
                    span.set(rows=len(rows), parallel=False)
                return rows
        except MapDirectoryOverflow:
            # Statistics were stale: fall back to hybrid hash-sort
            # aggregation, which needs no capacity estimates.
            fallback_config = dataclasses.replace(
                self.planner_config, force_agg=AGG_HYBRID
            )
            fallback = self.prepare(
                prepared.sql,
                name=prepared.generated.name + "_fallback",
                traced=prepared.compiled.traced,
                opt_level=prepared.compiled.opt_level,
                use_cache=False,
                planner_config=fallback_config,
                param_dtypes=param_dtypes_of(prepared.bound),
            )
            started = time.perf_counter()
            rows = run_compiled(
                fallback.compiled, fallback.plan, probe=probe, params=params
            )
            if self.parallel is not None:
                self.last_exec_stats = self.parallel.note_serial(
                    len(rows),
                    time.perf_counter() - started,
                    "map-directory overflow: re-planned with hybrid "
                    "aggregation",
                )
            return rows

    # -- introspection ------------------------------------------------------------------
    def generate_source(
        self, sql: str, opt_level: str | None = None, traced: bool = False
    ) -> str:
        """The generated Python source for a query (for inspection)."""
        return self.prepare(
            sql, traced=traced, opt_level=opt_level, use_cache=False
        ).generated.source

    def explain(self, sql: str) -> str:
        """The physical plan description for a query."""
        bound = self.binder.bind(parse(sql))
        plan = Optimizer(self.catalog, self.planner_config).plan(bound)
        return plan.explain()

    def clear_cache(self) -> None:
        self._cache.clear()

    # -- lifecycle ---------------------------------------------------------------------
    def close(self) -> None:
        """Drop cached plans and delete the compiler's work directory."""
        self.clear_cache()
        if self.parallel is not None:
            self.parallel.close()
        self.compiler.close()

    def __enter__(self) -> "HiqueEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
