"""The paper's contribution: holistic per-query code generation."""

from repro.core.compiler import CompiledQuery, QueryCompiler
from repro.core.emitter import Emitter, GenContext, OPT_O0, OPT_O2
from repro.core.engine import (
    HiqueEngine,
    PreparationTimings,
    PreparedQuery,
)
from repro.core.executor import QueryContext, build_context, run_compiled
from repro.core.generator import CodeGenerator, GeneratedQuery

__all__ = [
    "CodeGenerator",
    "CompiledQuery",
    "Emitter",
    "GenContext",
    "GeneratedQuery",
    "HiqueEngine",
    "OPT_O0",
    "OPT_O2",
    "PreparationTimings",
    "PreparedQuery",
    "QueryCompiler",
    "QueryContext",
    "build_context",
    "run_compiled",
]
