"""The query executor: builds contexts and runs compiled queries.

The execution context carries what generated code cannot embed:

* the bindings' tables (resolved through the catalogue at load time);
* the probe (a real :class:`~repro.memsim.Probe` for traced runs, the
  shared no-op otherwise);
* for ``O0`` code, the generic per-operator closures (predicates,
  projectors, aggregation helpers) the un-inlined templates call —
  this is precisely the interpretive overhead ``O2`` generation removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.compiler import CompiledQuery
from repro.core.emitter import OPT_O2
from repro.core.templates.aggregate import collect_aggregates
from repro.errors import ExecutionError
from repro.memsim.probe import NULL_PROBE, NullProbe
from repro.plan.descriptors import (
    Aggregate,
    PhysicalPlan,
    Project,
    ScanStage,
)
from repro.plan.expressions import make_conjunction, make_evaluator
from repro.plan.layout import ColumnLayout, ColumnSlot
from repro.sql.bound import (
    BoundAggregate,
    BoundArithmetic,
    BoundColumn,
    BoundExpr,
    BoundParameter,
)
from repro.storage.table import Table


@dataclass
class AggHelpers:
    """Closure bundle the O0 aggregation template calls into."""

    key_fn: Callable[[tuple], tuple]
    init: Callable[[], list]
    update: Callable[[list, tuple], None]
    finalize: Callable[[tuple, list], tuple]


@dataclass
class QueryContext:
    """Everything a compiled query needs at run time."""

    tables: dict[str, Table] = field(default_factory=dict)
    probe: NullProbe = NULL_PROBE
    #: Execute-time parameter vector; generated parameterized code reads
    #: ``ctx.params[i]`` where it would otherwise inline a constant.
    params: tuple = ()
    predicates: dict[int, Callable | None] = field(default_factory=dict)
    projectors: dict[int, Callable | None] = field(default_factory=dict)
    agg_helpers: dict[int, AggHelpers] = field(default_factory=dict)


def build_context(
    plan: PhysicalPlan,
    probe: NullProbe = NULL_PROBE,
    opt_level: str = OPT_O2,
    params: tuple = (),
) -> QueryContext:
    """Resolve tables and (for O0) prepare the generic closures."""
    ctx = QueryContext(probe=probe, params=tuple(params))
    for operator in plan.operators:
        if isinstance(operator, ScanStage):
            ctx.tables[operator.binding] = operator.table
    if opt_level == OPT_O2:
        return ctx

    for operator in plan.operators:
        if isinstance(operator, ScanStage):
            layout = _table_layout(operator.binding, operator.table)
            ctx.predicates[operator.op_id] = (
                make_conjunction(operator.filters, layout, ctx.params)
                if operator.filters
                else None
            )
            positions = [
                operator.table.schema.index_of(slot.column)
                for slot in operator.output_layout.slots
            ]
            ctx.projectors[operator.op_id] = _tuple_projector(positions)
        elif isinstance(operator, Project):
            input_layout = plan.op(operator.input_op).output_layout
            evaluators = [
                make_evaluator(output.expr, input_layout, ctx.params)
                for output in operator.outputs
            ]
            ctx.projectors[operator.op_id] = _expr_projector(evaluators)
        elif isinstance(operator, Aggregate):
            input_layout = plan.op(operator.input_op).output_layout
            ctx.agg_helpers[operator.op_id] = build_agg_helpers(
                operator, input_layout, ctx.params
            )
    return ctx


def run_compiled(
    compiled: CompiledQuery,
    plan: PhysicalPlan,
    probe: NullProbe = NULL_PROBE,
    params: tuple = (),
) -> list[tuple]:
    """Execute a compiled query against its plan's tables."""
    ctx = build_context(
        plan, probe=probe, opt_level=compiled.opt_level, params=params
    )
    if compiled.traced and not probe.enabled:
        raise ExecutionError("traced query executed without a probe")
    return compiled.entry(ctx)


# -- O0 helper construction ------------------------------------------------------------


def _table_layout(binding: str, table: Table) -> ColumnLayout:
    return ColumnLayout(
        ColumnSlot(binding, column.name, column.dtype)
        for column in table.schema
    )


def _tuple_projector(positions: list[int]) -> Callable[[tuple], tuple]:
    if len(positions) == 1:
        only = positions[0]
        return lambda row: (row[only],)

    def project(row: tuple) -> tuple:
        return tuple(row[p] for p in positions)

    return project


def _expr_projector(evaluators: list[Callable]) -> Callable[[tuple], tuple]:
    def project(row: tuple) -> tuple:
        return tuple(evaluate(row) for evaluate in evaluators)

    return project


class _GenericAggState:
    """Mutable accumulator mirroring the generated accumulators."""

    __slots__ = ("func", "count", "total", "minimum", "maximum")

    def __init__(self, func: str):
        self.func = func
        self.count = 0
        self.total: Any = 0
        self.minimum: Any = None
        self.maximum: Any = None

    def result(self) -> Any:
        if self.func == "count":
            return self.count
        if self.func == "sum":
            return self.total
        if self.func == "avg":
            return self.total / self.count if self.count else None
        if self.func == "min":
            return self.minimum
        return self.maximum


def build_agg_helpers(
    operator: Aggregate,
    input_layout: ColumnLayout,
    params: tuple = (),
) -> AggHelpers:
    """Closure bundle implementing the operator's aggregation semantics."""
    aggregates = collect_aggregates(operator)
    arg_evaluators = [
        make_evaluator(node.argument, input_layout, params)
        if node.argument is not None
        else None
        for node in aggregates
    ]
    state_index = {node: k for k, node in enumerate(aggregates)}
    group_positions = operator.group_positions
    position_of = {pos: i for i, pos in enumerate(group_positions)}

    def key_fn(row: tuple) -> tuple:
        return tuple(row[p] for p in group_positions)

    def init() -> list[_GenericAggState]:
        return [_GenericAggState(node.func) for node in aggregates]

    def update(states: list[_GenericAggState], row: tuple) -> None:
        for k, node in enumerate(aggregates):
            state = states[k]
            evaluate = arg_evaluators[k]
            state.count += 1
            if evaluate is None:
                continue
            value = evaluate(row)
            if node.func in ("sum", "avg"):
                state.total += value
            elif node.func == "min":
                if state.minimum is None or value < state.minimum:
                    state.minimum = value
            elif node.func == "max":
                if state.maximum is None or value > state.maximum:
                    state.maximum = value

    def eval_output(
        expr: BoundExpr, key: tuple, states: list[_GenericAggState]
    ) -> Any:
        if isinstance(expr, BoundAggregate):
            return states[state_index[expr]].result()
        if isinstance(expr, BoundArithmetic):
            left = eval_output(expr.left, key, states)
            right = eval_output(expr.right, key, states)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            return left / right
        if isinstance(expr, BoundColumn):
            return key[position_of[input_layout.position(expr)]]
        if isinstance(expr, BoundParameter):
            return params[expr.index]
        return expr.value  # BoundLiteral

    def finalize(key: tuple, states: list[_GenericAggState]) -> tuple:
        return tuple(
            eval_output(output.expr, key, states)
            for output in operator.outputs
        )

    return AggHelpers(key_fn=key_fn, init=init, update=update, finalize=finalize)
