"""Runtime support library for generated query code.

The HIQUE code generator emits self-contained source at its highest
optimization level (``O2``): loops, inline predicates, direct field
unpacking.  At ``O0`` — the analogue of compiling the paper's templates
with ``gcc -O0`` / of the "generic hard-coded" style — the generated
code instead *calls* the generic helpers in this module per block or per
tuple, keeping the same algorithms but paying call overhead and generic
dispatch.  The Volcano engine reuses several of these helpers too, which
guarantees all backends implement the same staging semantics.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Callable, Iterable, Sequence

Row = tuple
Rows = list

# -- sorting --------------------------------------------------------------------


def sort_key(positions: Sequence[int]) -> Callable[[Row], Any]:
    """Key extractor over one or more slot positions."""
    if len(positions) == 1:
        return itemgetter(positions[0])
    return itemgetter(*positions)


def sort_rows(rows: Rows, positions: Sequence[int]) -> Rows:
    """Sort rows in place on the given positions; returns the list.

    ``list.sort`` plays the role of the paper's "optimized version of
    quicksort over L2-cache-fitting input partitions".
    """
    rows.sort(key=sort_key(positions))
    return rows


def sort_rows_mixed(
    rows: Rows, keys: Sequence[tuple[int, bool]]
) -> Rows:
    """ORDER BY with per-key direction via stable passes."""
    for position, ascending in reversed(keys):
        rows.sort(key=itemgetter(position), reverse=not ascending)
    return rows


# -- partitioning --------------------------------------------------------------------


def partition_rows(rows: Iterable[Row], key: int, num_partitions: int) -> list[Rows]:
    """Coarse partitioning: hash-and-modulo into ``num_partitions`` lists."""
    partitions: list[Rows] = [[] for _ in range(num_partitions)]
    mask = num_partitions - 1
    pow2 = num_partitions & mask == 0
    if pow2:
        for row in rows:
            partitions[hash(row[key]) & mask].append(row)
    else:
        for row in rows:
            partitions[hash(row[key]) % num_partitions].append(row)
    return partitions


def fine_partition_rows(rows: Iterable[Row], key: int) -> dict[Any, Rows]:
    """Fine partitioning: a value directory maps each key value to its
    own partition, so corresponding partitions match in full."""
    partitions: dict[Any, Rows] = {}
    for row in rows:
        bucket = partitions.get(row[key])
        if bucket is None:
            partitions[row[key]] = [row]
        else:
            bucket.append(row)
    return partitions


def partition_sort_rows(
    rows: Iterable[Row],
    partition_key: int,
    sort_positions: Sequence[int],
    num_partitions: int,
) -> list[Rows]:
    """Hybrid hash-sort staging: coarse partition, then sort partitions."""
    partitions = partition_rows(rows, partition_key, num_partitions)
    key = sort_key(sort_positions)
    for partition in partitions:
        partition.sort(key=key)
    return partitions


# -- scanning (generic O0 path) ---------------------------------------------------------


def scan_filter_project(
    table,
    predicate: Callable[[Row], bool] | None,
    projector: Callable[[Row], Row] | None,
    page_lo: int = 0,
    page_hi: int | None = None,
) -> Rows:
    """Generic staging scan: decode, filter, project row by row.

    ``page_lo``/``page_hi`` bound the scan to one morsel's page range;
    the defaults scan the whole table (the serial path).
    """
    out: Rows = []
    append = out.append
    for page in table.pages(page_lo, page_hi):
        for row in page.rows():
            if predicate is not None and not predicate(row):
                continue
            append(projector(row) if projector is not None else row)
    return out


# -- join bodies (generic O0 path) ----------------------------------------------------------


def merge_join(
    left: Rows, right: Rows, left_key: int, right_key: int
) -> Rows:
    """Merge join over inputs sorted on their keys (Listing 2, merge)."""
    out: Rows = []
    append = out.append
    i = 0
    j = 0
    n_left = len(left)
    n_right = len(right)
    while i < n_left and j < n_right:
        left_row = left[i]
        key = left_row[left_key]
        right_value = right[j][right_key]
        if key < right_value:
            i += 1
            continue
        if key > right_value:
            j += 1
            continue
        group_start = j
        while j < n_right and right[j][right_key] == key:
            append(left_row + right[j])
            j += 1
        i += 1
        # Backtrack to the start of the matching inner group for every
        # further outer tuple sharing the key.
        while i < n_left and left[i][left_key] == key:
            left_row = left[i]
            for back in range(group_start, j):
                append(left_row + right[back])
            i += 1
    return out


def nested_loops_join(left: Rows, right: Rows) -> Rows:
    """Blocked cartesian product (the bare nested-loops template)."""
    out: Rows = []
    append = out.append
    for left_row in left:
        for right_row in right:
            append(left_row + right_row)
    return out


def hybrid_join(
    left_partitions: list[Rows],
    right_partitions: list[Rows],
    left_key: int,
    right_key: int,
    presorted: bool = True,
) -> Rows:
    """Hybrid hash-sort-merge join over corresponding partitions."""
    out: Rows = []
    for left_part, right_part in zip(left_partitions, right_partitions):
        if not left_part or not right_part:
            continue
        if not presorted:
            left_part.sort(key=itemgetter(left_key))
            right_part.sort(key=itemgetter(right_key))
        out.extend(merge_join(left_part, right_part, left_key, right_key))
    return out


def fine_hash_join(
    left_partitions: dict[Any, Rows], right_partitions: dict[Any, Rows]
) -> Rows:
    """Fine partition join: corresponding partitions match entirely."""
    out: Rows = []
    append = out.append
    for key, left_rows in left_partitions.items():
        right_rows = right_partitions.get(key)
        if right_rows is None:
            continue
        for left_row in left_rows:
            for right_row in right_rows:
                append(left_row + right_row)
    return out


def multiway_merge_join(
    inputs: list[Rows], key_positions: Sequence[int]
) -> Rows:
    """N-ary merge join over inputs sorted on their keys (join team)."""
    out: Rows = []
    n = len(inputs)
    cursors = [0] * n
    lengths = [len(rows) for rows in inputs]
    while all(cursors[k] < lengths[k] for k in range(n)):
        keys = [
            inputs[k][cursors[k]][key_positions[k]] for k in range(n)
        ]
        maximum = max(keys)
        advanced = False
        for k in range(n):
            if keys[k] < maximum:
                cursors[k] += 1
                advanced = True
        if advanced:
            continue
        ends = []
        for k in range(n):
            end = cursors[k]
            rows = inputs[k]
            position = key_positions[k]
            while end < lengths[k] and rows[end][position] == maximum:
                end += 1
            ends.append(end)
        _emit_group(inputs, cursors, ends, 0, (), out)
        for k in range(n):
            cursors[k] = ends[k]
    return out


def _emit_group(
    inputs: list[Rows],
    starts: list[int],
    ends: list[int],
    depth: int,
    prefix: Row,
    out: Rows,
) -> None:
    if depth == len(inputs):
        out.append(prefix)
        return
    rows = inputs[depth]
    for index in range(starts[depth], ends[depth]):
        _emit_group(inputs, starts, ends, depth + 1, prefix + rows[index], out)


# -- aggregation bodies (generic O0 path) --------------------------------------------------------


def sorted_group_scan(
    rows: Rows,
    group_positions: Sequence[int],
    init: Callable[[], list],
    update: Callable[[list, Row], None],
    finalize: Callable[[tuple, list], Row],
) -> Rows:
    """Sort aggregation: single scan over group-sorted rows."""
    out: Rows = []
    current_key: tuple | None = None
    state: list | None = None
    for row in rows:
        key = tuple(row[p] for p in group_positions)
        if key != current_key:
            if state is not None:
                out.append(finalize(current_key, state))
            current_key = key
            state = init()
        update(state, row)
    if state is not None:
        out.append(finalize(current_key, state))
    return out


def hash_group_aggregate(
    rows: Rows,
    key_fn: Callable[[Row], tuple],
    init: Callable[[], list],
    update: Callable[[list, Row], None],
    finalize: Callable[[tuple, list], Row],
) -> Rows:
    """Generic hash aggregation (the O0 stand-in for map aggregation)."""
    groups: dict[tuple, list] = {}
    order: list[tuple] = []
    for row in rows:
        key = key_fn(row)
        state = groups.get(key)
        if state is None:
            state = init()
            groups[key] = state
            order.append(key)
        update(state, row)
    return [finalize(key, groups[key]) for key in order]


def generic_partial(rows: Rows, helpers) -> dict[tuple, list[list]]:
    """Thread-local partial aggregation for the O0 morsel path.

    Accumulates one morsel's rows with the operator's generic helpers,
    then converts each group's states to the mergeable 4-slot
    ``[sum, count, minimum, maximum]`` representation the parallel
    executor's merge step consumes (see
    :func:`repro.parallel.executor.merge_aggregate_partials`).
    """
    groups: dict[tuple, list] = {}
    for row in rows:
        key = helpers.key_fn(row)
        state = groups.get(key)
        if state is None:
            state = groups[key] = helpers.init()
        helpers.update(state, row)
    return {
        key: [
            [st.total, st.count, st.minimum, st.maximum] for st in states
        ]
        for key, states in groups.items()
    }


def limit_rows(rows: Rows, count: int) -> Rows:
    return rows[:count]
